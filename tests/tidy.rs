//! Tier-1 gate: the whole workspace must pass the `cachegraph-tidy`
//! static-analysis rules (safety comments, panic policy, cast soundness,
//! kernel purity, dependency policy). Run the binary for the same report
//! on the command line: `cargo run -p cachegraph-tidy`.

use std::path::Path;

#[test]
fn workspace_is_tidy_clean() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = cachegraph_tidy::find_workspace_root(manifest_dir)
        .expect("workspace root above CARGO_MANIFEST_DIR");
    let diags = cachegraph_tidy::run_workspace(&root).expect("lint pass must not hit I/O errors");
    assert!(
        diags.is_empty(),
        "cachegraph-tidy found {} violation(s):\n{}",
        diags.len(),
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}
