//! Integration tests focused on representation edge cases and the
//! library's behaviour on structured (non-random) graphs.

use cachegraph::fw::{solve_apsp, transitive_closure_of, INF};
use cachegraph::graph::{generators, io, EdgeListBuilder, Graph};
use cachegraph::pq::SequenceHeap;
use cachegraph::sssp::{bfs, connected_components, dijkstra_binary_heap, dijkstra_lazy_sequence};

/// Grid graphs have known shortest-path structure: Manhattan distances.
#[test]
fn grid_distances_are_manhattan() {
    let (rows, cols) = (7, 9);
    let g = generators::grid_graph(rows, cols).build_array();
    let sp = dijkstra_binary_heap(&g, 0);
    let hops = bfs(&g, 0);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            assert_eq!(sp.dist[v], (r + c) as u32, "({r},{c})");
            assert_eq!(hops.hops[v], (r + c) as u32, "bfs ({r},{c})");
        }
    }
}

/// Path graph: distances are positions; closure is the upper triangle
/// (plus the symmetric lower, since the path is undirected).
#[test]
fn path_graph_structure() {
    let n = 50;
    let b = generators::path_graph(n, 3);
    let costs = b.build_matrix().costs().to_vec();
    let d = solve_apsp(&costs, n);
    for i in 0..n {
        for j in 0..n {
            assert_eq!(d[i * n + j], 3 * (i.abs_diff(j)) as u32);
        }
    }
    let c = transitive_closure_of(&b.build_array());
    assert!(c.get(0, n - 1) && c.get(n - 1, 0));
}

/// A weighted graph where the hop-shortest and weight-shortest paths
/// differ: BFS and Dijkstra must disagree in the expected way.
#[test]
fn hops_versus_weights() {
    let mut b = EdgeListBuilder::new(4);
    b.add(0, 3, 10); // direct but heavy
    b.add(0, 1, 1).add(1, 2, 1).add(2, 3, 1); // long but light
    let g = b.build_array();
    assert_eq!(bfs(&g, 0).hops[3], 1);
    assert_eq!(dijkstra_binary_heap(&g, 0).dist[3], 3);
}

/// DIMACS round-trip through the facade: write, read, same answers.
#[test]
fn dimacs_roundtrip_preserves_distances() {
    let b = generators::random_directed(120, 0.08, 50, 33);
    let mut buf = Vec::new();
    io::write_dimacs(&mut buf, &b).expect("write");
    let back = io::read_dimacs(buf.as_slice()).expect("read");
    assert_eq!(
        dijkstra_binary_heap(&b.build_array(), 0).dist,
        dijkstra_binary_heap(&back.build_array(), 0).dist,
    );
}

/// The sequence heap sustains the full lazy-Dijkstra duplicate load.
#[test]
fn sequence_heap_under_lazy_dijkstra_load() {
    let g = generators::random_directed(300, 0.1, 40, 8).build_array();
    let seq = dijkstra_lazy_sequence(&g, 5);
    let eager = dijkstra_binary_heap(&g, 5);
    assert_eq!(seq.dist, eager.dist);

    // Standalone duplicate stress: many inserts of one item.
    let mut h = SequenceHeap::new();
    for k in (0..1000u32).rev() {
        h.insert(7, k);
    }
    assert_eq!(h.len(), 1000);
    let mut prev = 0;
    while let Some((item, k)) = h.extract_min() {
        assert_eq!(item, 7);
        assert!(k >= prev);
        prev = k;
    }
}

/// Self-loops and parallel arcs must not break anything.
#[test]
fn self_loops_and_parallel_arcs() {
    let mut b = EdgeListBuilder::new(3);
    b.add(0, 0, 5); // self-loop
    b.add(0, 1, 9).add(0, 1, 2).add(0, 1, 7); // parallel arcs
    b.add(1, 2, 1);
    let g = b.build_array();
    assert_eq!(g.num_edges(), 5);
    let sp = dijkstra_binary_heap(&g, 0);
    assert_eq!(sp.dist, vec![0, 2, 3], "min parallel arc must win");
    // Matrix representation collapses parallels to the min.
    let m = b.build_matrix();
    assert_eq!(dijkstra_binary_heap(&m, 0).dist, vec![0, 2, 3]);
    let c = transitive_closure_of(&g);
    assert!(c.get(0, 2));
}

/// Isolated vertices exist peacefully everywhere.
#[test]
fn isolated_vertices() {
    let mut b = EdgeListBuilder::new(5);
    b.add_undirected(1, 3, 2);
    let g = b.build_array();
    let (labels, count) = connected_components(&g);
    assert_eq!(count, 4); // {1,3} plus three singletons
    assert_eq!(labels[1], labels[3]);
    let sp = dijkstra_binary_heap(&g, 0);
    assert_eq!(sp.dist[0], 0);
    assert!(sp.dist[1..].iter().take(4).any(|&d| d == INF));
}
