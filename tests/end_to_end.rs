//! Cross-crate integration tests: the algorithms must agree with each
//! other across crates, representations, layouts, and the instrumented
//! (cache-simulated) code paths.

use cachegraph::fw::instrumented::{sim_iterative, sim_recursive_morton, sim_tiled_bdl};
use cachegraph::fw::{
    fw_iterative_slice, fw_recursive, fw_tiled, parallel::fw_tiled_parallel, FwMatrix,
};
use cachegraph::graph::{generators, INF};
use cachegraph::layout::{BlockLayout, ZMorton};
use cachegraph::matching::{
    find_matching, find_matching_fast, find_matching_partitioned, hopcroft_karp, maxflow,
    verify, Matching, PartitionScheme,
};
use cachegraph::pq::{FibonacciHeap, PairingHeap};
use cachegraph::sim::profiles;
use cachegraph::sssp::instrumented::{sim_dijkstra_adj_array, sim_prim_adj_list};
use cachegraph::sssp::{
    apsp_dijkstra, bellman_ford, dijkstra, dijkstra_binary_heap, kruskal, prim_binary_heap,
};

/// Floyd-Warshall (all variants and layouts) and Dijkstra-APSP must
/// compute the same all-pairs distances on the same graph.
#[test]
fn apsp_all_roads_lead_to_the_same_matrix() {
    let n = 96;
    let b = generators::random_directed(n, 0.15, 50, 1);
    let costs = b.build_matrix().costs().to_vec();

    let mut baseline = costs.clone();
    fw_iterative_slice(&mut baseline, n);

    let mut tiled = FwMatrix::from_costs(BlockLayout::new(n, 16), &costs);
    fw_tiled(&mut tiled, 16);
    assert_eq!(tiled.to_row_major(), baseline);

    let mut rec = FwMatrix::from_costs(ZMorton::new(n, 16), &costs);
    fw_recursive(&mut rec, 16);
    assert_eq!(rec.to_row_major(), baseline);

    let mut par = FwMatrix::from_costs(BlockLayout::new(n, 16), &costs);
    fw_tiled_parallel(&mut par, 16, 4);
    assert_eq!(par.to_row_major(), baseline);

    let dj = apsp_dijkstra(&b.build_array());
    assert_eq!(dj, baseline, "Dijkstra-APSP must equal Floyd-Warshall");
}

/// The instrumented (simulated) runs compute the same answers as the
/// plain ones — the miss counts describe the real computation.
#[test]
fn simulated_runs_are_faithful() {
    let n = 48;
    let b = generators::random_directed(n, 0.25, 50, 2);
    let costs = b.build_matrix().costs().to_vec();
    let mut expect = costs.clone();
    fw_iterative_slice(&mut expect, n);

    let cfg = profiles::simplescalar;
    assert_eq!(sim_iterative(&costs, n, cfg()).dist, expect);
    assert_eq!(sim_recursive_morton(&costs, n, 8, cfg()).dist, expect);
    assert_eq!(sim_tiled_bdl(&costs, n, 8, cfg()).dist, expect);

    let sp = dijkstra_binary_heap(&b.build_array(), 0);
    let sim = sim_dijkstra_adj_array(&b.build_array(), 0, cfg());
    assert_eq!(sim.keys, sp.dist);
}

/// Dijkstra agrees with Bellman-Ford over every representation and queue.
#[test]
fn sssp_consensus() {
    let n = 200;
    let b = generators::random_directed(n, 0.05, 80, 3);
    let arr = b.build_array();
    let list = b.build_list();
    let mat = b.build_matrix();
    let expect = bellman_ford(&arr, 0).dist;
    assert_eq!(dijkstra_binary_heap(&arr, 0).dist, expect);
    assert_eq!(dijkstra_binary_heap(&list, 0).dist, expect);
    assert_eq!(dijkstra_binary_heap(&mat, 0).dist, expect);
    assert_eq!(dijkstra::<_, FibonacciHeap>(&arr, 0).dist, expect);
    assert_eq!(dijkstra::<_, PairingHeap>(&arr, 0).dist, expect);
}

/// Prim (all representations) and Kruskal agree; the simulated Prim too.
#[test]
fn mst_consensus() {
    let n = 300;
    let mut b = generators::random_undirected(n, 0.04, 100, 4);
    generators::connect(&mut b, 100, 4);
    let arr = b.build_array();
    let (kw, _) = kruskal(n, b.edges());
    assert_eq!(prim_binary_heap(&arr, 0).total_weight, kw);
    assert_eq!(prim_binary_heap(&b.build_list(), 0).total_weight, kw);
    assert_eq!(prim_binary_heap(&b.build_matrix(), 0).total_weight, kw);
    let sim = sim_prim_adj_list(&b.build_list(), 0, profiles::simplescalar());
    assert_eq!(sim.total, kw);
}

/// Matching: baseline, fast variant, partitioned (both schemes),
/// Hopcroft-Karp, and the max-flow reduction all find the same size, and
/// the result carries a König maximality certificate.
#[test]
fn matching_consensus() {
    let n = 160;
    let b = generators::random_bipartite(n, 0.08, 5);
    let g = b.build_array();
    let base = find_matching(&g, n / 2, Matching::empty(n));
    verify::assert_maximum(&g, n / 2, &base);
    assert_eq!(find_matching_fast(&g, n / 2, Matching::empty(n)).size, base.size);
    assert_eq!(hopcroft_karp(&g, n / 2).size, base.size);
    assert_eq!(maxflow::matching_by_flow(n, n / 2, b.edges()), base.size as u64);
    for scheme in [PartitionScheme::Contiguous(4), PartitionScheme::TwoWay] {
        let (m, _) = find_matching_partitioned(&g, n / 2, b.edges(), scheme);
        assert_eq!(m.size, base.size);
    }
}

/// Unreachable structure is preserved end to end: isolated islands stay
/// at INF in FW, Dijkstra, and Bellman-Ford alike.
#[test]
fn disconnected_graphs_stay_disconnected() {
    let n = 40;
    // Two islands: 0..20 and 20..40, no edges between them.
    let mut b = cachegraph::graph::EdgeListBuilder::new(n);
    for v in 0..19u32 {
        b.add_undirected(v, v + 1, 1);
    }
    for v in 20..39u32 {
        b.add_undirected(v, v + 1, 1);
    }
    let arr = b.build_array();
    let sp = dijkstra_binary_heap(&arr, 0);
    assert_eq!(sp.dist[25], INF);
    assert_eq!(bellman_ford(&arr, 0).dist[25], INF);
    let costs = b.build_matrix().costs().to_vec();
    let mut m = FwMatrix::from_costs(ZMorton::new(n, 8), &costs);
    fw_recursive(&mut m, 8);
    assert_eq!(m.dist(0, 25), INF);
    assert_eq!(m.dist(0, 19), 19);
}

/// Determinism: the whole pipeline is reproducible from the seed.
#[test]
fn seeded_runs_are_deterministic() {
    let mk = || {
        let b = generators::random_directed(128, 0.1, 60, 42);
        let g = b.build_array();
        (b.edges().to_vec(), dijkstra_binary_heap(&g, 0).dist)
    };
    let (e1, d1) = mk();
    let (e2, d2) = mk();
    assert_eq!(e1, e2);
    assert_eq!(d1, d2);
}

/// Record-once / replay-everywhere: capture an instrumented FW run's
/// address trace, then replay it against a different machine profile and
/// get exactly the stats of a live run under that profile.
#[test]
fn trace_replay_matches_live_runs_across_machines() {
    use cachegraph::sim::{replay, AddressSpace, MemoryHierarchy};

    let n = 32;
    let b = generators::random_directed(n, 0.3, 50, 12);
    let costs = b.build_matrix().costs().to_vec();

    // Live instrumented run on SimpleScalar, with a recorder attached.
    // (Re-implements the thin instrumented driver here because the
    // public sim_* helpers own their hierarchy.)
    let layout = cachegraph::layout::RowMajor::new(n);
    let mut rec_hier = MemoryHierarchy::new(profiles::simplescalar());
    rec_hier.attach_recorder();
    let mut space = AddressSpace::new();
    let mut buf = space.adopt({
        let mut d = costs.clone();
        for v in 0..n {
            d[v * n + v] = 0;
        }
        d
    });
    // The iterative triple loop through the traced buffer.
    for k in 0..n {
        for i in 0..n {
            let bik = buf.read(&mut rec_hier, i * n + k);
            if bik == INF {
                continue;
            }
            for j in 0..n {
                let via = bik.saturating_add(buf.read(&mut rec_hier, k * n + j));
                let cur = buf.read(&mut rec_hier, i * n + j);
                if via < cur {
                    buf.write(&mut rec_hier, i * n + j, via);
                }
            }
        }
    }
    let _ = layout;
    let trace = rec_hier.take_trace().expect("recorder attached");

    // Replays must match live runs exactly, on every machine profile.
    for cfg in [profiles::simplescalar(), profiles::alpha_21264(), profiles::mips_r12000()] {
        let mut live = MemoryHierarchy::new(cfg.clone());
        cachegraph::sim::tracefile::replay(&trace, &mut live).expect("replay");
        // A second replay through the public alias for coverage.
        let mut again = MemoryHierarchy::new(cfg);
        replay(&trace, &mut again).expect("replay alias");
        assert_eq!(live.stats(), again.stats());
        assert!(live.stats().levels[0].accesses > 0);
    }
}

/// A graph too big for the simulated L1 shows the paper's L2 story:
/// blocked FW beats the baseline; adjacency array beats the list.
#[test]
fn cache_story_holds_end_to_end() {
    let n = 128;
    let b = generators::random_directed(n, 0.3, 50, 6);
    let costs = b.build_matrix().costs().to_vec();
    let cfg = profiles::simplescalar;
    let base = sim_iterative(&costs, n, cfg());
    let rec = sim_recursive_morton(&costs, n, 32, cfg());
    assert!(
        rec.stats.levels[0].misses < base.stats.levels[0].misses,
        "recursive FW must reduce L1 misses"
    );

    let gb = generators::random_directed(1500, 0.05, 50, 7);
    let arr = sim_dijkstra_adj_array(&gb.build_array(), 0, cfg());
    let mut shuffled = gb.clone();
    shuffled.shuffle(7);
    let list = cachegraph::sssp::instrumented::sim_dijkstra_adj_list(
        &shuffled.build_list(),
        0,
        cfg(),
    );
    assert_eq!(arr.keys, list.keys);
    assert!(
        arr.stats.levels[1].misses < list.stats.levels[1].misses,
        "adjacency array must reduce L2 misses vs the shuffled list"
    );
}
