//! Fault-injection hardening for the hand-rolled JSON parser and the
//! journal reader: seeded mutations (truncation, bit flips, overwrites,
//! insertions, deep nesting, invalid UTF-8) over real report text must
//! always come back as `Ok` or a structured `Err` — never a panic,
//! never unbounded recursion. Every failing case reproduces from the
//! loop indices alone (seed = iteration number).

use cachegraph_obs::journal::read_journal_bytes;
use cachegraph_obs::{parse_json, Json, Registry, Report};
use cachegraph_rng::corrupt::Corruptor;

/// A realistic report document: registry metrics, a cache-sim-shaped
/// section, nested experiment tables.
fn sample_report_text() -> String {
    let reg = Registry::new();
    reg.counter("fw.kernel_calls").add(4096);
    reg.gauge("heap.size").set(-3);
    reg.histogram("tile.bytes").record(1 << 14);
    {
        let root = reg.span("fw.tiled");
        let _tile = root.child("tile[0]");
    }
    let mut report = Report::new("harden-sample");
    report.set_metrics(&reg.snapshot());
    report.push_cache_sim(
        Json::obj().field("label", "fw.tiled").field("machine", "ss").field(
            "levels",
            Json::Arr(vec![Json::obj()
                .field("level", 1u64)
                .field("accesses", 10_000u64)
                .field("misses", 123u64)
                .field("miss_rate", 0.0123)]),
        ),
    );
    report.push_experiment(
        Json::obj().field("id", "table1").field(
            "data",
            Json::obj().field("tables", Json::Arr(vec![Json::obj().field("title", "t \u{3c0}")])),
        ),
    );
    report.render()
}

#[test]
fn seeded_mutations_never_panic_the_parser() {
    let pristine = sample_report_text().into_bytes();
    // The pristine document parses; every mutant must parse or error.
    assert!(parse_json(std::str::from_utf8(&pristine).expect("utf8")).is_ok());
    for seed in 0..600u64 {
        let mut bytes = pristine.clone();
        let mutations = Corruptor::new(seed).mutate_n(&mut bytes, 1 + (seed % 4) as usize);
        match std::str::from_utf8(&bytes) {
            // Invalid UTF-8 is rejected before the parser ever runs —
            // that *is* the hardened path for bit-flipped multibyte text.
            Err(_) => continue,
            Ok(text) => {
                // Ok or Err both fine; a panic or stack overflow here
                // aborts the test with the seed and mutation list below.
                let result = parse_json(text);
                if let Err(e) = &result {
                    assert!(
                        e.at <= bytes.len(),
                        "error offset {} beyond input (seed {seed}, {mutations:?})",
                        e.at
                    );
                }
            }
        }
    }
}

#[test]
fn every_truncation_of_a_report_is_handled() {
    let pristine = sample_report_text();
    for cut in 0..pristine.len() {
        if !pristine.is_char_boundary(cut) {
            continue;
        }
        let result = parse_json(&pristine[..cut]);
        assert!(result.is_err(), "prefix of {cut} bytes must not parse as a full report");
    }
}

#[test]
fn report_loader_degrades_structurally_on_mutants() {
    // Report::load_str layers schema checks over the parser; mutants must
    // come back as a ReportError, never a panic.
    let pristine = sample_report_text().into_bytes();
    let mut parsed_ok = 0u32;
    for seed in 1000..1400u64 {
        let mut bytes = pristine.clone();
        Corruptor::new(seed).mutate_n(&mut bytes, 1 + (seed % 3) as usize);
        if let Ok(text) = std::str::from_utf8(&bytes) {
            if Report::load_str(text).is_ok() {
                parsed_ok += 1;
            }
        }
    }
    // Sanity: some single-byte mutants (e.g. inside a string) still load.
    assert!(parsed_ok > 0, "mutation sweep looks mis-wired: nothing ever loads");
}

#[test]
fn journal_reader_survives_seeded_mutations() {
    let mut pristine = Vec::new();
    for i in 0..6u64 {
        let mut line = Json::obj()
            .field("type", "experiment")
            .field("id", format!("exp{i}"))
            .field("n", i)
            .render();
        line.push('\n');
        pristine.extend_from_slice(line.as_bytes());
    }
    assert_eq!(read_journal_bytes(&pristine).expect("pristine").records.len(), 6);
    for seed in 0..400u64 {
        let mut bytes = pristine.clone();
        Corruptor::new(seed).mutate_n(&mut bytes, 1 + (seed % 4) as usize);
        // Ok (possibly with a torn tail) or a structured error; no panic.
        if let Ok(contents) = read_journal_bytes(&bytes) {
            assert!(contents.records.len() <= 7, "seed {seed}: impossible record count");
        }
    }
}
