//! Fault-injection hardening for the trace-record codec: seeded
//! mutations and truncations over real JSONL trace-log lines and over
//! the v5 report's `traces` section must always come back as `Ok` or a
//! structured error — never a panic. The clean round trip is asserted
//! lossless first, so the sweep is corrupting real wire bytes, not a
//! hand-built approximation.

use std::io::Write;
use std::sync::{Arc, Mutex};

use cachegraph_obs::{parse_json, Json, Report, TraceConfig, TraceParseError, TraceRecord, Tracer};
use cachegraph_rng::corrupt::Corruptor;

/// A `Write` sink the test can read back after the tracer is done.
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("sink lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Drive a real tracer through a handful of requests (hits, misses, a
/// panic, a shed) and return the JSONL its sink received plus the
/// records the flight recorder kept.
fn sample_traces() -> (String, Vec<TraceRecord>) {
    let tracer = Tracer::new(TraceConfig {
        sample_period_log2: 0, // sample everything into the sink
        ..TraceConfig::default()
    });
    let buf = Arc::new(Mutex::new(Vec::new()));
    tracer.attach_jsonl_sink(Box::new(SharedSink(Arc::clone(&buf))));
    for (op, outcome, hit) in [
        ("path", "OK", true),
        ("path", "OK", false),
        ("reach", "INTERNAL", false),
        ("match", "BUSY", false),
    ] {
        let mut tb = tracer.begin(op);
        tb.mark("admission");
        tb.mark("queue");
        tb.tag("cache", if hit { "hit" } else { "miss" });
        tb.tag("cache_shard", 3u64);
        tb.mark("cache");
        if !hit {
            tb.tag("cancel_polls", 17u64);
            tb.mark("compute");
        }
        if outcome == "INTERNAL" {
            tb.tag("panic", true);
        }
        tb.mark("serialize");
        tb.mark("write");
        if let Some(record) = tb.finish(outcome) {
            tracer.record(record);
        }
    }
    let jsonl = String::from_utf8(buf.lock().expect("sink lock").clone()).expect("utf8 jsonl");
    (jsonl, tracer.flush())
}

#[test]
fn clean_trace_jsonl_round_trips_losslessly() {
    let (jsonl, kept) = sample_traces();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 4, "every record was sampled into the sink");
    for (line, original) in lines.iter().zip(&kept) {
        let parsed = TraceRecord::from_json(&parse_json(line).expect("line parses"))
            .expect("record decodes");
        assert_eq!(&parsed, original, "JSONL round trip is lossless");
    }
}

#[test]
fn seeded_mutations_never_panic_the_trace_decoder() {
    let (jsonl, _) = sample_traces();
    let pristine = jsonl.into_bytes();
    for seed in 0..600u64 {
        let mut bytes = pristine.clone();
        let mutations = Corruptor::new(seed).mutate_n(&mut bytes, 1 + (seed % 4) as usize);
        // Invalid UTF-8 is rejected before any parser runs — that *is*
        // the hardened path for bit-flipped multibyte text.
        let Ok(text) = std::str::from_utf8(&bytes) else { continue };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(json) = parse_json(line) {
                // Ok or a structured TraceParseError; a panic aborts the
                // test with the seed and mutation list.
                if let Err(e) = TraceRecord::from_json(&json) {
                    assert!(
                        matches!(e, TraceParseError::MissingField(_) | TraceParseError::BadField(_)),
                        "seed {seed}: unstructured error ({mutations:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn every_truncation_of_a_trace_line_is_rejected() {
    let (jsonl, _) = sample_traces();
    let line = jsonl.lines().next().expect("at least one record");
    for cut in 0..line.len() {
        if !line.is_char_boundary(cut) {
            continue;
        }
        assert!(
            parse_json(&line[..cut]).is_err(),
            "a {cut}-byte prefix must not parse as a full record"
        );
    }
}

#[test]
fn report_trace_section_mutants_degrade_structurally() {
    let (_, kept) = sample_traces();
    let mut report = Report::new("trace-harden");
    for record in &kept {
        report.push_trace(record.to_json());
    }
    let pristine = report.render().into_bytes();
    let mut loaded_ok = 0u32;
    for seed in 0..500u64 {
        let mut bytes = pristine.clone();
        Corruptor::new(seed).mutate_n(&mut bytes, 1 + (seed % 3) as usize);
        let Ok(text) = std::str::from_utf8(&bytes) else { continue };
        let Ok(mutant) = Report::load_str(text) else { continue };
        loaded_ok += 1;
        for section in &mutant.traces {
            // Decoding a mutated section is allowed to fail, never to
            // panic; a decoded record keeps its accessors total.
            if let Ok(record) = TraceRecord::from_json(section) {
                let _ = record.id_hex();
                let _ = record.segment_ns("queue");
                let _ = record.tag("panic");
            }
        }
    }
    // Sanity: some single-byte mutants (e.g. inside a string) still load.
    assert!(loaded_ok > 0, "mutation sweep looks mis-wired: nothing ever loads");
}

#[test]
fn v4_documents_load_with_empty_traces() {
    // A pre-tracing (v4) report has no `traces` section; it must load
    // under the current schema with an empty trace list, and a v5
    // document with traces must round-trip them.
    let v4 = Json::obj()
        .field("schema_version", 4u64)
        .field("tool", "cachegraph")
        .field("report", "old-serve-run")
        .field("experiments", Json::Arr(vec![Json::obj().field("name", "serve.state")]));
    let loaded = Report::load_str(&v4.render()).expect("v4 loads forward");
    assert!(loaded.traces.is_empty(), "missing section reads as empty, not an error");

    let (_, kept) = sample_traces();
    let mut v5 = Report::new("new-serve-run");
    for record in &kept {
        v5.push_trace(record.to_json());
    }
    let reloaded = Report::load_str(&v5.render()).expect("v5 round-trips");
    assert_eq!(reloaded.traces.len(), kept.len());
}
