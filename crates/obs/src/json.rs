//! A hand-rolled JSON value, writer, and parser — no serde.
//!
//! The report schema (see [`crate::report`]) must survive a write →
//! re-parse round trip bit-for-bit at the *value* level: counters are
//! `u64`, rates are `f64`, and the comparison helper re-reads files this
//! crate wrote. The writer emits integers without an exponent or
//! fraction and floats via Rust's shortest-round-trip `Display`, so
//! `parse(render(v)) == v` for every value the crate produces
//! (non-finite floats serialize as `null`; the registry never emits
//! them).

use std::fmt;

/// A JSON document node.
///
/// Numbers keep three variants so `u64` counters survive exactly;
/// [`PartialEq`] compares numerics by value, so `UInt(5)`, `Int(5)` and
/// `Float(5.0)` are all equal — field-for-field equality after a round
/// trip does not depend on which variant the parser picked.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (the parser's choice for unsigned literals).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Anything with a fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered (the writer preserves field order).
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        use Json::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Arr(a), Arr(b)) => a == b,
            (Obj(a), Obj(b)) => a == b,
            // Numeric cross-variant comparison by value.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl Json {
    /// Build an empty object (use [`field`](Self::field) to populate).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object; no-op on other variants.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 { Json::UInt(v as u64) } else { Json::Int(v) }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => {
                // Integral floats still need a marker so a re-parse stays
                // numeric-equal (it will come back as UInt/Int — fine,
                // PartialEq compares by value) and stays valid JSON.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Float(_) => f.write_str("null"), // non-finite: no JSON spelling
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse error: what went wrong and the byte offset it went wrong at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. Reports nest a handful
/// of levels; anything deeper is hostile or corrupt input, and a hard cap
/// keeps recursion bounded (a malicious `[[[[…` must return an error, not
/// exhaust the stack).
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    /// Enter one container level; errors beyond [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(self.err("invalid UTF-8 in string")),
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Int(-42),
            Json::Float(0.125),
            Json::Float(-1.5e300),
            Json::Str("hello \"world\"\n\t\\".into()),
            Json::Str("unicode: ✓ π".into()),
        ] {
            let text = v.render();
            let back = parse(&text).expect("parse");
            assert_eq!(back, v, "round trip of {text}");
        }
    }

    #[test]
    fn integral_float_stays_numeric_equal() {
        let v = Json::Float(3.0);
        let text = v.render();
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text).expect("parse"), v);
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::obj()
            .field("name", "run")
            .field("count", 123u64)
            .field("rate", 0.0625)
            .field("tags", Json::Arr(vec![Json::from("a"), Json::from("b")]))
            .field("inner", Json::obj().field("ok", true).field("none", Json::Null));
        let text = doc.render();
        assert_eq!(parse(&text).expect("parse"), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::obj().field("n", 7u64).field("s", "x");
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::UInt(3).as_f64(), Some(3.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").expect("parse");
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
    }

    #[test]
    fn cross_variant_numeric_equality() {
        assert_eq!(Json::UInt(5), Json::Float(5.0));
        assert_eq!(Json::Int(-2), Json::Float(-2.0));
        assert_ne!(Json::UInt(5), Json::Float(5.5));
        assert_ne!(Json::UInt(5), Json::Str("5".into()));
    }

    #[test]
    fn nesting_is_bounded() {
        // One level under the cap parses; past the cap errors instead of
        // recursing without bound.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        for deep in [
            "[".repeat(MAX_DEPTH + 1),
            "[".repeat(1_000_000),
            "{\"a\":".repeat(200_000),
            format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1)),
        ] {
            let err = parse(&deep).expect_err("over-deep input must fail");
            assert!(
                err.message.contains("MAX_DEPTH") || err.message.contains("unexpected"),
                "{err}"
            );
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }
}
