//! The metrics registry: named counters, gauges, and power-of-two
//! histograms, cheap enough for hot paths.
//!
//! A [`Registry`] is a cheap `Arc` handle: clone it freely, send clones
//! into `std::thread::scope` workers, and read one consolidated
//! [`Snapshot`] at the end. Handles returned by
//! [`counter`](Registry::counter) / [`gauge`](Registry::gauge) /
//! [`histogram`](Registry::histogram) are resolved once (one map lookup)
//! and then update a shared atomic with a single relaxed RMW — hot loops
//! should hoist the handle out of the loop and pay only the atomic add
//! per event.
//!
//! A *disabled* registry ([`Registry::disabled`]) hands out handles whose
//! operations are a branch on a `None` — instrumented drivers run at
//! baseline speed when observability is off (see the `obs_overhead`
//! bench in `cachegraph-bench`).

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::json::Json;
use crate::span::{Span, SpanRecord};

/// Number of histogram buckets: bucket `i` counts values whose
/// power-of-two magnitude class is `i` (0, 1, 2–3, 4–7, …, ≥2^63).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Lock helper that survives poisoning (a panicking instrumented thread
/// must not take the whole registry down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

/// Shared histogram storage.
pub(crate) struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        Self {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The metrics registry. See the module docs.
#[derive(Clone)]
pub struct Registry {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
                sink: Mutex::new(None),
            })),
        }
    }

    /// A no-op registry: every handle it returns is inert, every
    /// operation a branch on `None`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Is this a live registry?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.counters).entry(name.to_string()).or_insert_with(Default::default),
            )
        }))
    }

    /// Resolve (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(lock(&inner.gauges).entry(name.to_string()).or_insert_with(Default::default))
        }))
    }

    /// Resolve (creating on first use) the power-of-two histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock(&inner.histograms)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCells::new())),
            )
        }))
    }

    /// Open a root span (see [`crate::span`] for the naming convention).
    pub fn span(&self, name: &str) -> Span {
        Span::new_root(self.clone(), name)
    }

    /// Current value of every counter (used for span deltas).
    pub(crate) fn counter_values(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(inner) => lock(&inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Attach a JSONL event sink: every span end (and explicit
    /// [`emit`](Self::emit)) appends one JSON object per line. Replaces
    /// any previous sink.
    pub fn attach_jsonl_sink(&self, sink: Box<dyn Write + Send>) {
        if let Some(inner) = &self.inner {
            *lock(&inner.sink) = Some(sink);
        }
    }

    /// Write one event line to the sink, if one is attached. Errors are
    /// deliberately swallowed: observability must never fail the run.
    pub fn emit(&self, event: &Json) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = lock(&inner.sink).as_mut() {
                let _ = writeln!(sink, "{event}");
            }
        }
    }

    pub(crate) fn record_span(&self, record: SpanRecord) {
        if let Some(inner) = &self.inner {
            self.emit(&record.to_json().field("type", "span"));
            lock(&inner.spans).push(record);
        }
    }

    /// Consistent snapshot of all metrics and finished spans.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        Snapshot {
            counters: self.counter_values(),
            gauges: lock(&inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: lock(&inner.histograms)
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            spans: lock(&inner.spans).clone(),
        }
    }
}

/// A counter handle: monotonically increasing `u64`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a settable `i64` level.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level (0 for a disabled handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A power-of-two histogram handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl std::fmt::Debug for HistogramCells {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCells")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

/// Bucket index of `v`: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Largest value bucket `i` can hold: 0, 1, 3, 7, …, `u64::MAX`.
/// Inverse companion of [`bucket_of`]: for every `v`,
/// `v <= bucket_upper_bound(bucket_of(v))`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// Snapshot of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts, index per [`bucket_of`].
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping on overflow).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (clamped to `[0, 1]`), as the *upper
    /// bound* of the bucket holding the rank-`ceil(q·count)`
    /// observation. `None` when the histogram is empty.
    ///
    /// Power-of-two buckets quantize: bucket `i ≥ 1` covers
    /// `[2^(i-1), 2^i - 1]`, and this returns `2^i - 1`. The true
    /// quantile `v` satisfies `v ≤ percentile(q) ≤ 2·v - 1`, i.e. the
    /// reported value overshoots by strictly less than 2x and never
    /// undershoots. Buckets 0 and 1 (the values 0 and 1) are exact,
    /// and the top bucket reports `u64::MAX`. Reports quoting these
    /// percentiles (e.g. the serve load generator's p50/p99) inherit
    /// the same ≤2x bucket-quantization error.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested observation, 1-based, at least 1 so
        // q = 0 means "the smallest recorded value's bucket".
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        // count says there are observations, but the buckets do not sum
        // to it (a torn snapshot under relaxed loads): report the top.
        Some(u64::MAX)
    }

    /// Compact JSON: only buckets up to the last non-zero one.
    pub fn to_json(&self) -> Json {
        let last = self.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        Json::obj()
            .field("count", self.count)
            .field("sum", self.sum)
            .field(
                "buckets",
                Json::Arr(self.buckets[..last].iter().map(|&b| Json::UInt(b)).collect()),
            )
    }
}

/// Everything a registry knows, frozen at one moment.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Finished spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// The snapshot as a JSON object (the `metrics` section of a report).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::UInt(v))).collect(),
        );
        let gauges =
            Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect());
        let histograms = Json::Obj(
            self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect(),
        );
        let spans = Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect());
        Json::obj()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
            .field("spans", spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a snapshot holding exactly the given observed values.
    fn hist_of(values: &[u64]) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &v in values {
            buckets[bucket_of(v)] += 1;
        }
        HistogramSnapshot {
            buckets,
            count: values.len() as u64,
            sum: values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
        }
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(hist_of(&[]).percentile(0.5), None);
        assert_eq!(hist_of(&[]).percentile(0.99), None);
    }

    #[test]
    fn percentile_is_exact_for_zero_and_one() {
        // Buckets 0 and 1 hold a single value each: no quantization.
        let h = hist_of(&[0, 0, 1, 1]);
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(0.5), Some(0));
        assert_eq!(h.percentile(0.75), Some(1));
        assert_eq!(h.percentile(1.0), Some(1));
    }

    #[test]
    fn percentile_at_power_of_two_bucket_boundaries() {
        // 2^k lands in bucket k+1, whose upper bound is 2^(k+1) - 1:
        // the reported quantile overshoots by < 2x, never undershoots.
        for k in [1u32, 2, 5, 16, 31, 62] {
            let v = 1u64 << k;
            let h = hist_of(&[v]);
            let p = h.percentile(0.5).expect("non-empty");
            assert!(p >= v, "2^{k}: reported {p} below true {v}");
            assert!(p < v.saturating_mul(2), "2^{k}: reported {p} not within 2x of {v}");
            // The boundary value 2^k - 1 sits one bucket lower and is
            // reported exactly (it IS its bucket's upper bound).
            assert_eq!(hist_of(&[v - 1]).percentile(0.5), Some(v - 1));
        }
    }

    #[test]
    fn percentile_top_bucket_reports_u64_max() {
        let h = hist_of(&[u64::MAX]);
        assert_eq!(h.percentile(0.5), Some(u64::MAX));
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
        // 2^63 shares the top bucket: same (saturated) upper bound.
        assert_eq!(hist_of(&[1u64 << 63]).percentile(0.5), Some(u64::MAX));
    }

    #[test]
    fn percentile_ranks_split_a_mixed_distribution() {
        // 90 fast (bucket of 3 = values 2..=3) + 10 slow (bucket of
        // 1000 = values 512..=1023): p50 is fast, p99 slow.
        let mut values = vec![3u64; 90];
        values.extend(std::iter::repeat_n(1000u64, 10));
        let h = hist_of(&values);
        assert_eq!(h.percentile(0.5), Some(3));
        assert_eq!(h.percentile(0.90), Some(3));
        assert_eq!(h.percentile(0.91), Some(1023));
        assert_eq!(h.percentile(0.99), Some(1023));
    }

    #[test]
    fn percentile_agrees_with_recorded_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0u64, 1, 2, 4, 8, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let lat = &snap.histograms["lat"];
        assert_eq!(lat.percentile(0.0), Some(0));
        assert_eq!(lat.percentile(1.0), Some(u64::MAX));
        let p50 = lat.percentile(0.5).expect("non-empty");
        // The median observation (rank 4 of 7) is the value 4: its
        // bucket's upper bound is 7.
        assert!((4..8).contains(&p50), "median observation 4 quantized to {p50}");
    }

    #[test]
    fn bucket_upper_bound_inverts_bucket_of() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            let bound = bucket_upper_bound(b);
            assert!(v <= bound, "value {v} above its bucket bound");
            // < 2x tightness; the saturated top bucket is exempt.
            if b < HISTOGRAM_BUCKETS - 1 {
                assert!(bound < v.saturating_mul(2).max(1), "bound {bound} not tight for {v}");
            }
        }
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = Registry::new();
        let c = reg.counter("x.events");
        c.add(3);
        c.incr();
        // A second resolve of the same name shares the cell.
        reg.counter("x.events").add(6);
        assert_eq!(c.get(), 10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("x.events"), Some(&10));
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("g");
        g.set(5);
        assert_eq!(g.get(), 0);
        reg.histogram("h").record(9);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn gauges_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(reg.snapshot().gauges.get("depth"), Some(&7));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        let reg = Registry::new();
        let h = reg.histogram("sizes");
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histograms.get("sizes").expect("histogram");
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 1034);
        assert_eq!(hs.buckets[0], 1); // 0
        assert_eq!(hs.buckets[1], 1); // 1
        assert_eq!(hs.buckets[2], 2); // 2, 3
        assert_eq!(hs.buckets[3], 1); // 4
        assert_eq!(hs.buckets[11], 1); // 1024
    }

    #[test]
    fn bucket_of_boundaries_cover_every_power_of_two() {
        // Bucket 0 is reserved for the value 0.
        assert_eq!(bucket_of(0), 0);
        // Every exact power of two opens its own bucket: 2^k -> k+1,
        // and 2^k - 1 stays one bucket below.
        for k in 0..64u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v), k as usize + 1, "2^{k}");
            if v > 1 {
                assert_eq!(bucket_of(v - 1), k as usize, "2^{k} - 1");
            }
        }
        // The extremes land in the last bucket, which must exist.
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_of(1 << 63), HISTOGRAM_BUCKETS - 1);

        let reg = Registry::new();
        let h = reg.histogram("edge");
        for v in [0, 1, u64::MAX, 1 << 63] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histograms.get("edge").expect("histogram");
        assert_eq!(hs.buckets[0], 1);
        assert_eq!(hs.buckets[1], 1);
        assert_eq!(hs.buckets[64], 2);
        assert_eq!(hs.count, 4);
        // The sum wraps by design (documented on HistogramSnapshot).
        assert_eq!(hs.sum, 1u64.wrapping_add(u64::MAX).wrapping_add(1 << 63));
        // Truncated JSON keeps all 65 buckets when the top one is hot.
        let buckets = hs.to_json().get("buckets").and_then(Json::as_arr).expect("arr").len();
        assert_eq!(buckets, HISTOGRAM_BUCKETS);
    }

    #[test]
    fn counters_shared_across_scoped_threads() {
        let reg = Registry::new();
        let c = reg.counter("parallel.work");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn snapshot_to_json_shape() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.gauge("b").set(-1);
        reg.histogram("c").record(5);
        let json = reg.snapshot().to_json();
        assert_eq!(json.get("counters").and_then(|c| c.get("a")).and_then(Json::as_u64), Some(2));
        assert_eq!(
            json.get("gauges").and_then(|g| g.get("b")).and_then(Json::as_f64),
            Some(-1.0)
        );
        let h = json.get("histograms").and_then(|h| h.get("c")).expect("histogram");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn jsonl_sink_receives_events() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let reg = Registry::new();
        let shared = Shared::default();
        reg.attach_jsonl_sink(Box::new(shared.clone()));
        reg.emit(&Json::obj().field("type", "event").field("name", "warmup"));
        drop(reg.span("root"));
        let text = String::from_utf8(shared.0.lock().expect("sink lock").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"warmup\""));
        assert!(lines[1].contains("\"span\""));
        // Every line parses as a standalone JSON document.
        for line in lines {
            crate::json::parse(line).expect("valid JSONL line");
        }
    }
}
