//! Comparing two run reports.
//!
//! [`compare_reports`] walks two report documents and pairs up every
//! numeric measurement that appears in both: algorithm counters from
//! the `metrics` section, per-level cache statistics (accesses, misses,
//! writebacks, TLB misses) from each `cache_sims` section matched by
//! `label`, and — since schema v3 — per-span self stats from each
//! `profiles` section (matched by `label`, then by span path), so a
//! cache regression localized to one tile or phase is flagged even when
//! the aggregate moves less than the threshold. Each pair becomes a
//! [`Delta`]; deltas whose relative change exceeds the threshold are
//! *flagged*. This is the engine behind `cachegraph-cli compare a.json
//! b.json`.

use crate::json::Json;
use crate::report::Report;

/// Default flagging threshold: a 10% relative change.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One paired measurement across the two reports.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Where the value lives, e.g. `counters/sssp.relaxations` or
    /// `cache_sims[fw.tiled]/L1.misses`.
    pub metric: String,
    /// Value in report A.
    pub a: f64,
    /// Value in report B.
    pub b: f64,
    /// Relative change `(b - a) / a` (infinite when `a == 0, b != 0`).
    pub ratio: f64,
    /// True when `|ratio|` exceeds the threshold.
    pub flagged: bool,
    /// `Some('A')` / `Some('B')` when the measurement exists in only
    /// one report — the named side lacks it. Always flagged; `a`, `b`
    /// and `ratio` carry no information in that case.
    pub missing_in: Option<char>,
}

impl Delta {
    fn new(metric: String, a: f64, b: f64, threshold: f64) -> Self {
        let ratio = if a == 0.0 {
            if b == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (b - a) / a
        };
        Self { metric, a, b, ratio, flagged: ratio.abs() > threshold, missing_in: None }
    }

    /// A profile or span present in only one report; `side` names the
    /// report that lacks it. Always flagged, so `compare` surfaces
    /// spans that appear or disappear instead of silently skipping
    /// them.
    fn missing(metric: String, side: char) -> Self {
        let (a, b) = if side == 'B' { (1.0, 0.0) } else { (0.0, 1.0) };
        Self { metric, a, b, ratio: 0.0, flagged: true, missing_in: Some(side) }
    }

    /// One human-readable line, e.g.
    /// `  FLAG cache_sims[fw.tiled]/L1.misses: 1000 -> 1300 (+30.0%)`.
    pub fn render_line(&self) -> String {
        if let Some(side) = self.missing_in {
            return format!("FLAG {} MISSING in {side}", self.metric);
        }
        let marker = if self.flagged { "FLAG" } else { "  ok" };
        let pct = if self.ratio.is_finite() {
            format!("{:+.1}%", self.ratio * 100.0)
        } else {
            "new".to_string()
        };
        format!("{marker} {}: {} -> {} ({pct})", self.metric, self.a, self.b)
    }
}

/// Compare two report documents; returns every paired measurement, with
/// flagged deltas first (then by metric path).
pub fn compare_reports(a: &Report, b: &Report, threshold: f64) -> Vec<Delta> {
    let mut deltas = Vec::new();
    compare_counters(a, b, threshold, &mut deltas);
    compare_cache_sims(a, b, threshold, &mut deltas);
    compare_profiles(a, b, threshold, &mut deltas);
    deltas.sort_by(|x, y| y.flagged.cmp(&x.flagged).then_with(|| x.metric.cmp(&y.metric)));
    deltas
}

fn counters_of(report: &Report) -> Vec<(String, f64)> {
    let Some(Json::Obj(fields)) = report.metrics.as_ref().and_then(|m| m.get("counters")) else {
        return Vec::new();
    };
    fields.iter().filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v))).collect()
}

fn compare_counters(a: &Report, b: &Report, threshold: f64, out: &mut Vec<Delta>) {
    let b_counters = counters_of(b);
    for (name, av) in counters_of(a) {
        if let Some((_, bv)) = b_counters.iter().find(|(n, _)| *n == name) {
            out.push(Delta::new(format!("counters/{name}"), av, *bv, threshold));
        }
    }
}

fn sim_label(sim: &Json) -> Option<&str> {
    sim.get("label").and_then(Json::as_str)
}

fn compare_cache_sims(a: &Report, b: &Report, threshold: f64, out: &mut Vec<Delta>) {
    for sim_a in &a.cache_sims {
        let Some(label) = sim_label(sim_a) else { continue };
        let Some(sim_b) = b.cache_sims.iter().find(|s| sim_label(s) == Some(label)) else {
            continue;
        };
        compare_one_sim(label, sim_a, sim_b, threshold, out);
    }
}

fn level_name(level: &Json) -> String {
    level
        .get("level")
        .and_then(Json::as_u64)
        .map_or_else(|| "L?".to_string(), |l| format!("L{l}"))
}

fn compare_one_sim(label: &str, a: &Json, b: &Json, threshold: f64, out: &mut Vec<Delta>) {
    let empty = Vec::new();
    let levels_a = a.get("levels").and_then(Json::as_arr).unwrap_or(&empty);
    let levels_b = b.get("levels").and_then(Json::as_arr).unwrap_or(&empty);
    for level_a in levels_a {
        let name = level_name(level_a);
        let Some(level_b) = levels_b.iter().find(|l| level_name(l) == name) else { continue };
        for field in ["accesses", "misses", "writebacks"] {
            push_field_delta(
                format!("cache_sims[{label}]/{name}.{field}"),
                level_a.get(field),
                level_b.get(field),
                threshold,
                out,
            );
        }
    }
    for (section, fields) in
        [("tlb", &["accesses", "misses"][..]), ("l1_classes", &["compulsory", "capacity", "conflict"][..])]
    {
        let (sec_a, sec_b) = (a.get(section), b.get(section));
        for field in fields {
            push_field_delta(
                format!("cache_sims[{label}]/{section}.{field}"),
                sec_a.and_then(|s| s.get(field)),
                sec_b.and_then(|s| s.get(field)),
                threshold,
                out,
            );
        }
    }
    push_field_delta(
        format!("cache_sims[{label}]/memory_lines_fetched"),
        a.get("memory_lines_fetched"),
        b.get("memory_lines_fetched"),
        threshold,
        out,
    );
}

fn span_path(span: &Json) -> Option<&str> {
    span.get("path").and_then(Json::as_str)
}

/// Pair up span-scoped profile stats (schema v3+). Spans match by
/// `/`-separated path within profiles matched by label; each span's
/// *self* stats are compared per level, so a regression confined to one
/// tile or phase surfaces even when the run aggregate stays flat.
/// Profiles or spans present in only one report are never silently
/// skipped — each produces an always-flagged `MISSING` delta naming the
/// side that lacks it.
fn compare_profiles(a: &Report, b: &Report, threshold: f64, out: &mut Vec<Delta>) {
    let empty = Vec::new();
    for prof_b in &b.profiles {
        let Some(label) = sim_label(prof_b) else { continue };
        if !a.profiles.iter().any(|p| sim_label(p) == Some(label)) {
            out.push(Delta::missing(format!("profiles[{label}]"), 'A'));
        }
    }
    for prof_a in &a.profiles {
        let Some(label) = sim_label(prof_a) else { continue };
        let Some(prof_b) = b.profiles.iter().find(|p| sim_label(p) == Some(label)) else {
            out.push(Delta::missing(format!("profiles[{label}]"), 'B'));
            continue;
        };
        let spans_a = prof_a.get("spans").and_then(Json::as_arr).unwrap_or(&empty);
        let spans_b = prof_b.get("spans").and_then(Json::as_arr).unwrap_or(&empty);
        for span_b in spans_b {
            let Some(path) = span_path(span_b) else { continue };
            if !spans_a.iter().any(|s| span_path(s) == Some(path)) {
                out.push(Delta::missing(format!("profiles[{label}]/{path}"), 'A'));
            }
        }
        for span_a in spans_a {
            let Some(path) = span_path(span_a) else { continue };
            let Some(span_b) = spans_b.iter().find(|s| span_path(s) == Some(path)) else {
                out.push(Delta::missing(format!("profiles[{label}]/{path}"), 'B'));
                continue;
            };
            let (self_a, self_b) = (span_a.get("self"), span_b.get("self"));
            let levels_a =
                self_a.and_then(|s| s.get("levels")).and_then(Json::as_arr).unwrap_or(&empty);
            let levels_b =
                self_b.and_then(|s| s.get("levels")).and_then(Json::as_arr).unwrap_or(&empty);
            for level_a in levels_a {
                let name = level_name(level_a);
                let Some(level_b) = levels_b.iter().find(|l| level_name(l) == name) else {
                    continue;
                };
                for field in ["accesses", "misses"] {
                    push_field_delta(
                        format!("profiles[{label}]/{path}/{name}.{field}"),
                        level_a.get(field),
                        level_b.get(field),
                        threshold,
                        out,
                    );
                }
            }
        }
    }
}

fn push_field_delta(
    metric: String,
    a: Option<&Json>,
    b: Option<&Json>,
    threshold: f64,
    out: &mut Vec<Delta>,
) {
    if let (Some(av), Some(bv)) = (a.and_then(Json::as_f64), b.and_then(Json::as_f64)) {
        out.push(Delta::new(metric, av, bv, threshold));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabricated(l1_misses: u64, relaxations: u64) -> Report {
        let mut report = Report::new("fab");
        report.metrics = Some(
            Json::obj()
                .field("counters", Json::obj().field("sssp.relaxations", relaxations)),
        );
        report.push_cache_sim(
            Json::obj()
                .field("label", "fw.tiled")
                .field("machine", "simplescalar")
                .field(
                    "levels",
                    Json::Arr(vec![Json::obj()
                        .field("level", 1_u64)
                        .field("accesses", 10_000_u64)
                        .field("misses", l1_misses)
                        .field("writebacks", 0_u64)]),
                )
                .field("memory_lines_fetched", l1_misses),
        );
        report
    }

    #[test]
    fn flags_large_miss_delta_only() {
        let a = fabricated(1_000, 500);
        let b = fabricated(1_300, 510); // +30% misses, +2% relaxations
        let deltas = compare_reports(&a, &b, DEFAULT_THRESHOLD);
        let misses = deltas
            .iter()
            .find(|d| d.metric == "cache_sims[fw.tiled]/L1.misses")
            .expect("miss delta present");
        assert!(misses.flagged);
        assert!((misses.ratio - 0.30).abs() < 1e-9);
        let relax = deltas
            .iter()
            .find(|d| d.metric == "counters/sssp.relaxations")
            .expect("counter delta present");
        assert!(!relax.flagged);
        // Flagged deltas sort first.
        assert!(deltas[0].flagged);
        assert!(deltas.iter().rev().take_while(|d| !d.flagged).count() > 0);
    }

    fn push_tile_profile(report: &mut Report, tile_misses: u64) {
        let level = Json::obj()
            .field("level", 1_u64)
            .field("accesses", 1_000_u64)
            .field("misses", tile_misses);
        let span = Json::obj()
            .field("path", "fw.tiled/tile[3]")
            .field("self", Json::obj().field("levels", Json::Arr(vec![level])));
        report.push_profile(
            Json::obj().field("label", "fw.tiled").field("spans", Json::Arr(vec![span])),
        );
    }

    #[test]
    fn flags_span_level_regression_inside_profile() {
        // The aggregate stats are identical; only one tile's self misses
        // doubled. The profile walk must still flag it.
        let mut a = fabricated(1_000, 500);
        push_tile_profile(&mut a, 100);
        let mut b = fabricated(1_000, 500);
        push_tile_profile(&mut b, 200);
        let deltas = compare_reports(&a, &b, DEFAULT_THRESHOLD);
        let tile = deltas
            .iter()
            .find(|d| d.metric == "profiles[fw.tiled]/fw.tiled/tile[3]/L1.misses")
            .expect("span-level delta present");
        assert!(tile.flagged);
        assert!((tile.ratio - 1.0).abs() < 1e-9);
        let aggregate = deltas
            .iter()
            .find(|d| d.metric == "cache_sims[fw.tiled]/L1.misses")
            .expect("aggregate delta present");
        assert!(!aggregate.flagged);
    }

    #[test]
    fn span_present_in_only_one_report_is_flagged_missing() {
        let mut a = fabricated(1_000, 500);
        push_tile_profile(&mut a, 100);
        let b = fabricated(1_000, 500); // no profile section at all
        let deltas = compare_reports(&a, &b, DEFAULT_THRESHOLD);
        let missing = deltas
            .iter()
            .find(|d| d.metric == "profiles[fw.tiled]")
            .expect("missing-profile delta present");
        assert!(missing.flagged);
        assert_eq!(missing.missing_in, Some('B'));
        assert_eq!(missing.render_line(), "FLAG profiles[fw.tiled] MISSING in B");

        // And the other direction: the whole profile only in B.
        let deltas = compare_reports(&b, &a, DEFAULT_THRESHOLD);
        let missing = deltas
            .iter()
            .find(|d| d.metric == "profiles[fw.tiled]")
            .expect("missing-profile delta present");
        assert_eq!(missing.missing_in, Some('A'));
    }

    #[test]
    fn extra_span_inside_matched_profile_is_flagged_missing() {
        let mut a = fabricated(1_000, 500);
        push_tile_profile(&mut a, 100);
        // B's profile has the shared tile[3] span plus one A lacks.
        let mut b = fabricated(1_000, 500);
        let span = |path: &str, misses: u64| {
            Json::obj().field("path", path).field(
                "self",
                Json::obj().field(
                    "levels",
                    Json::Arr(vec![Json::obj()
                        .field("level", 1_u64)
                        .field("accesses", 1_000_u64)
                        .field("misses", misses)]),
                ),
            )
        };
        b.push_profile(Json::obj().field("label", "fw.tiled").field(
            "spans",
            Json::Arr(vec![span("fw.tiled/tile[3]", 110), span("fw.tiled/tile[7]", 1)]),
        ));

        let deltas = compare_reports(&a, &b, DEFAULT_THRESHOLD);
        let missing = deltas
            .iter()
            .find(|d| d.metric == "profiles[fw.tiled]/fw.tiled/tile[7]")
            .expect("missing-span delta present");
        assert!(missing.flagged);
        assert_eq!(missing.missing_in, Some('A'));
        assert!(missing.render_line().contains("MISSING in A"));
        // The shared span still pairs up normally.
        assert!(deltas
            .iter()
            .any(|d| d.metric == "profiles[fw.tiled]/fw.tiled/tile[3]/L1.misses"));
    }

    #[test]
    fn identical_reports_flag_nothing() {
        let a = fabricated(1_000, 500);
        let deltas = compare_reports(&a, &a.clone(), DEFAULT_THRESHOLD);
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|d| !d.flagged && d.ratio == 0.0));
    }

    #[test]
    fn zero_to_nonzero_is_flagged_as_new() {
        let a = fabricated(0, 500);
        let b = fabricated(7, 500);
        let deltas = compare_reports(&a, &b, DEFAULT_THRESHOLD);
        let misses = deltas
            .iter()
            .find(|d| d.metric == "cache_sims[fw.tiled]/L1.misses")
            .expect("miss delta present");
        assert!(misses.flagged);
        assert!(misses.ratio.is_infinite());
        assert!(misses.render_line().contains("(new)"));
    }

    #[test]
    fn render_line_formats_percentages() {
        let d = Delta::new("counters/x".to_string(), 100.0, 130.0, 0.10);
        assert_eq!(d.render_line(), "FLAG counters/x: 100 -> 130 (+30.0%)");
    }
}
