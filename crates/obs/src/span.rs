//! RAII span timers.
//!
//! A [`Span`] measures one region of work on the monotonic clock and, on
//! drop, records a [`SpanRecord`] into its registry (and the JSONL sink,
//! if one is attached). Spans nest by name: a child of `fw.tiled` named
//! `tile[3]` has path `fw.tiled/tile[3]`, so a run's span list is a
//! flattened tree keyed by `/`-separated paths.
//!
//! Naming convention (documented in EXPERIMENTS.md): root spans are
//! `<algorithm>.<variant>` (`fw.tiled`, `dijkstra.array`), children are
//! phase names with optional `[index]` suffixes (`tile[3]`, `relax`,
//! `kernel`). Keep cardinality bounded — index a span only when the
//! index count is small (tiles, rounds), never per-edge.
//!
//! Each span also snapshots every counter at open and records the
//! **delta** accumulated while it was live, so a `tile[3]` span carries
//! exactly the kernel calls / copies attributed to that tile. Deltas are
//! attribution, not isolation: concurrent threads bumping the same
//! counter all land in whichever spans are open.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::Json;
use crate::registry::Registry;

/// A finished span, as stored in the registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// `/`-separated path from the root span, e.g. `fw.tiled/tile[3]/kernel`.
    pub path: String,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// Open time in nanoseconds since the registry's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
    /// Counter deltas accumulated while the span was open (zero deltas
    /// are omitted).
    pub counters: BTreeMap<String, u64>,
}

impl SpanRecord {
    /// The record as a JSON object.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::UInt(v))).collect(),
        );
        Json::obj()
            .field("path", self.path.as_str())
            .field("depth", self.depth as u64)
            .field("start_ns", self.start_ns)
            .field("dur_ns", self.dur_ns)
            .field("counters", counters)
    }

    /// Parse a record back from its [`to_json`](Self::to_json) form.
    pub fn from_json(json: &Json) -> Option<Self> {
        let counters = match json.get("counters") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                .collect::<Option<BTreeMap<_, _>>>()?,
            _ => BTreeMap::new(),
        };
        Some(Self {
            path: json.get("path")?.as_str()?.to_string(),
            depth: u32::try_from(json.get("depth")?.as_u64()?).ok()?,
            start_ns: json.get("start_ns")?.as_u64()?,
            dur_ns: json.get("dur_ns")?.as_u64()?,
            counters,
        })
    }
}

/// A live span; ends (and records itself) on drop.
pub struct Span {
    registry: Registry,
    path: String,
    depth: u32,
    opened: Option<Instant>,
    counters_at_open: BTreeMap<String, u64>,
}

impl Span {
    pub(crate) fn new_root(registry: Registry, name: &str) -> Self {
        if !registry.is_enabled() {
            return Self::inert(registry);
        }
        Self::open(registry, name.to_string(), 0)
    }

    /// Inert span: no allocation, no clock read, no counter snapshot.
    fn inert(registry: Registry) -> Self {
        Self { registry, path: String::new(), depth: 0, opened: None, counters_at_open: BTreeMap::new() }
    }

    fn open(registry: Registry, path: String, depth: u32) -> Self {
        let counters_at_open = registry.counter_values();
        Self { registry, path, depth, opened: Some(Instant::now()), counters_at_open }
    }

    /// Open a child span named `name` under this one.
    pub fn child(&self, name: &str) -> Span {
        if !self.registry.is_enabled() {
            return Self::inert(self.registry.clone());
        }
        Span::open(self.registry.clone(), format!("{}/{name}", self.path), self.depth + 1)
    }

    /// The span's full `/`-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(opened) = self.opened else { return };
        let Some(inner) = &self.registry.inner else { return };
        let dur_ns = saturating_ns(opened.elapsed().as_nanos());
        let start_ns = saturating_ns(opened.duration_since(inner.epoch).as_nanos());
        let mut counters = self.registry.counter_values();
        counters.retain(|name, value| {
            let before = self.counters_at_open.get(name).copied().unwrap_or(0);
            *value -= before.min(*value);
            *value != 0
        });
        self.registry.record_span(SpanRecord {
            path: std::mem::take(&mut self.path),
            depth: self.depth,
            start_ns,
            dur_ns,
            counters,
        });
    }
}

fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_counter_deltas() {
        let reg = Registry::new();
        let relaxations = reg.counter("sssp.relaxations");
        {
            let root = reg.span("dijkstra.array");
            relaxations.add(5);
            {
                let child = root.child("relax");
                assert_eq!(child.path(), "dijkstra.array/relax");
                relaxations.add(7);
            }
            relaxations.add(1);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Children finish first.
        let child = &snap.spans[0];
        assert_eq!(child.path, "dijkstra.array/relax");
        assert_eq!(child.depth, 1);
        assert_eq!(child.counters.get("sssp.relaxations"), Some(&7));
        let root = &snap.spans[1];
        assert_eq!(root.path, "dijkstra.array");
        assert_eq!(root.depth, 0);
        assert_eq!(root.counters.get("sssp.relaxations"), Some(&13));
        assert!(root.start_ns <= child.start_ns);
        assert!(root.dur_ns >= child.dur_ns);
    }

    #[test]
    fn zero_delta_counters_are_omitted() {
        let reg = Registry::new();
        reg.counter("warm").add(3);
        {
            let _span = reg.span("idle");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert!(snap.spans[0].counters.is_empty());
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let reg = Registry::disabled();
        {
            let root = reg.span("fw.tiled");
            let _child = root.child("tile[0]");
        }
        assert!(reg.snapshot().spans.is_empty());
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = SpanRecord {
            path: "fw.tiled/tile[3]/kernel".to_string(),
            depth: 2,
            start_ns: 1_234,
            dur_ns: 987_654_321,
            counters: BTreeMap::from([("fw.kernel_calls".to_string(), 42_u64)]),
        };
        let json = record.to_json();
        let text = json.render();
        let reparsed = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(SpanRecord::from_json(&reparsed), Some(record));
    }
}
