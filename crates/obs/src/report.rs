//! End-of-run reports with a stable, versioned schema.
//!
//! A [`Report`] is the machine-readable artifact of one run: the tool
//! name, a report name, a [`Snapshot`] of the metrics registry
//! (counters, gauges, histograms, finished spans), any number of
//! cache-simulation sections (built by `cachegraph-cache-sim`'s report
//! module), and any number of experiment sections (built by
//! `cachegraph-bench`). The full schema is documented in
//! EXPERIMENTS.md; [`SCHEMA_VERSION`] is bumped on any breaking change
//! so downstream diff tooling can refuse mixed versions.

use std::io::Write;
use std::path::Path;

use crate::json::{self, Json, JsonError};
use crate::registry::Snapshot;

/// Version of the report document layout. Bump on breaking changes.
///
/// * v1 — initial schema: `metrics` / `cache_sims` / `experiments`
///   (experiment sections were bare `{id, tables, dur_ns}` objects).
/// * v2 — supervised runs: every experiment section carries an
///   `outcome` field (`completed` / `failed` / `timed_out` / `skipped`)
///   with outcome-specific fields (`reason`, `limit_secs`, `restored`)
///   and its payload under `data`; the same objects double as journal
///   checkpoint records (see `cachegraph-bench`'s supervisor).
/// * v3 — cache attribution: a top-level `profiles` array of
///   span-scoped cache profiles (one object per profiled simulation,
///   built by `cachegraph-cache-sim`'s report module: per-span self and
///   subtree-total hierarchy stats plus a delta-encoded miss-rate
///   timeline).
/// * v4 — sampled attribution: every profile object carries a
///   `sample_period` (accesses per recorded attribution event, 1 =
///   every access) and an `exact` flag; counters in sampled profiles
///   are scaled-up estimates. v3 documents load fine (the fields
///   default to exact), so [`MIN_SCHEMA_VERSION`] stays at 3.
/// * v5 — request traces: a top-level `traces` array of wide-event
///   request traces (one object per flight-recorder entry, built by
///   [`crate::trace`]: trace id, op, outcome, per-segment durations
///   whose sum is the wall latency, and free-form tags). v3/v4
///   documents load fine (the section defaults to empty), so
///   [`MIN_SCHEMA_VERSION`] stays at 3.
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest schema version this build still reads. v3 profiles lack the
/// sampling fields, which default to `sample_period = 1` / `exact` on
/// load; everything else is layout-identical.
pub const MIN_SCHEMA_VERSION: u64 = 3;

/// Name stamped into every report's `tool` field.
pub const TOOL_NAME: &str = "cachegraph";

/// A run report under construction (or re-loaded from disk).
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Report name, e.g. `repro-quick` or `fw_layouts`.
    pub name: String,
    /// Registry snapshot serialized into the `metrics` section.
    pub metrics: Option<Json>,
    /// Cache-simulation sections (one JSON object per simulated run).
    pub cache_sims: Vec<Json>,
    /// Experiment sections (one JSON object per bench table).
    pub experiments: Vec<Json>,
    /// Span-scoped cache profile sections (one JSON object per profiled
    /// simulation; schema v3).
    pub profiles: Vec<Json>,
    /// Request-trace sections (one JSON object per flight-recorder
    /// trace; schema v5).
    pub traces: Vec<Json>,
}

impl Report {
    /// Start an empty report named `name`.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), ..Self::default() }
    }

    /// Attach the registry snapshot as the `metrics` section.
    pub fn set_metrics(&mut self, snapshot: &Snapshot) {
        self.metrics = Some(snapshot.to_json());
    }

    /// Append one cache-simulation section.
    pub fn push_cache_sim(&mut self, sim: Json) {
        self.cache_sims.push(sim);
    }

    /// Append one experiment section.
    pub fn push_experiment(&mut self, experiment: Json) {
        self.experiments.push(experiment);
    }

    /// Append one span-scoped cache profile section.
    pub fn push_profile(&mut self, profile: Json) {
        self.profiles.push(profile);
    }

    /// Append one request-trace section.
    pub fn push_trace(&mut self, trace: Json) {
        self.traces.push(trace);
    }

    /// The complete, schema-versioned document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field("tool", TOOL_NAME)
            .field("report", self.name.as_str())
            .field("metrics", self.metrics.clone().unwrap_or_else(|| Json::Obj(Vec::new())))
            .field("cache_sims", Json::Arr(self.cache_sims.clone()))
            .field("experiments", Json::Arr(self.experiments.clone()))
            .field("profiles", Json::Arr(self.profiles.clone()))
            .field("traces", Json::Arr(self.traces.clone()))
    }

    /// Render the document as pretty-stable single-line JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Write the document to `path` (with a trailing newline).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "{}", self.render())
    }

    /// Parse a report document back from JSON text, checking the
    /// schema version.
    pub fn load_str(text: &str) -> Result<Self, ReportError> {
        let json = json::parse(text).map_err(ReportError::Json)?;
        Self::from_json(&json)
    }

    /// Read and parse a report document from `path`.
    pub fn load(path: &Path) -> Result<Self, ReportError> {
        let text = std::fs::read_to_string(path).map_err(ReportError::Io)?;
        Self::load_str(&text)
    }

    /// Reconstruct a report from its [`to_json`](Self::to_json) form.
    pub fn from_json(json: &Json) -> Result<Self, ReportError> {
        let version = json.get("schema_version").and_then(Json::as_u64);
        match version {
            Some(v) if (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&v) => {}
            _ => return Err(ReportError::SchemaVersion { found: version, want: SCHEMA_VERSION }),
        }
        let name = json
            .get("report")
            .and_then(Json::as_str)
            .ok_or(ReportError::MissingField("report"))?
            .to_string();
        let metrics = json.get("metrics").cloned();
        let cache_sims = match json.get("cache_sims") {
            Some(Json::Arr(items)) => items.clone(),
            _ => Vec::new(),
        };
        let experiments = match json.get("experiments") {
            Some(Json::Arr(items)) => items.clone(),
            _ => Vec::new(),
        };
        let profiles = match json.get("profiles") {
            Some(Json::Arr(items)) => items.clone(),
            _ => Vec::new(),
        };
        let traces = match json.get("traces") {
            Some(Json::Arr(items)) => items.clone(),
            _ => Vec::new(),
        };
        Ok(Self { name, metrics, cache_sims, experiments, profiles, traces })
    }
}

/// Why a report document could not be loaded.
#[derive(Debug)]
pub enum ReportError {
    /// Underlying file read failed.
    Io(std::io::Error),
    /// The text was not valid JSON.
    Json(JsonError),
    /// The document's `schema_version` is missing or unsupported.
    SchemaVersion {
        /// Version found in the document, if any.
        found: Option<u64>,
        /// Version this build understands.
        want: u64,
    },
    /// A required field was absent.
    MissingField(&'static str),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read report: {e}"),
            Self::Json(e) => write!(f, "invalid report JSON: {e}"),
            Self::SchemaVersion { found: Some(v), want } => {
                write!(f, "unsupported report schema_version {v} (this build reads {want})")
            }
            Self::SchemaVersion { found: None, want } => {
                write!(f, "report is missing schema_version (this build reads {want})")
            }
            Self::MissingField(name) => write!(f, "report is missing field `{name}`"),
        }
    }
}

impl std::error::Error for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn report_round_trips_through_text() {
        let reg = Registry::new();
        reg.counter("fw.kernel_calls").add(64);
        {
            let _span = reg.span("fw.tiled");
        }
        let mut report = Report::new("unit-test");
        report.set_metrics(&reg.snapshot());
        report.push_cache_sim(Json::obj().field("label", "fw.tiled").field("machine", "ss"));
        report.push_experiment(Json::obj().field("id", "fw_layouts"));
        report.push_profile(
            Json::obj().field("label", "fw.tiled").field("spans", Json::Arr(Vec::new())),
        );

        let text = report.render();
        let loaded = Report::load_str(&text).expect("report loads");
        assert_eq!(loaded.name, "unit-test");
        assert_eq!(loaded.to_json(), report.to_json());
    }

    #[test]
    fn missing_profiles_section_parses_as_empty() {
        let text = format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "tool": "cachegraph", "report": "x"}}"#
        );
        let loaded = Report::load_str(&text).expect("report loads");
        assert!(loaded.profiles.is_empty());
        // Re-rendering always emits the section.
        assert!(loaded.render().contains("\"profiles\":[]"));
    }

    #[test]
    fn missing_traces_section_parses_as_empty() {
        // A v4 document (no `traces` section) loads with empty traces.
        let text = r#"{"schema_version": 4, "tool": "cachegraph", "report": "pr8"}"#;
        let loaded = Report::load_str(text).expect("v4 report loads");
        assert!(loaded.traces.is_empty());
        assert!(loaded.render().contains("\"traces\":[]"));
    }

    #[test]
    fn traces_section_round_trips() {
        let mut report = Report::new("traced");
        report.push_trace(Json::obj().field("trace_id", "00000000000000ff").field("wall_ns", 9u64));
        let loaded = Report::load_str(&report.render()).expect("loads");
        assert_eq!(loaded.traces.len(), 1);
        assert_eq!(loaded.to_json(), report.to_json());
    }

    #[test]
    fn previous_schema_version_still_loads() {
        let text = format!(
            r#"{{"schema_version": {MIN_SCHEMA_VERSION}, "tool": "cachegraph", "report": "old"}}"#
        );
        let loaded = Report::load_str(&text).expect("v3 report loads");
        assert_eq!(loaded.name, "old");
        // Re-rendering upgrades the document to the current version.
        assert!(loaded.render().contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = r#"{"schema_version": 999, "tool": "cachegraph", "report": "x"}"#;
        match Report::load_str(text) {
            Err(ReportError::SchemaVersion { found: Some(999), want }) => {
                assert_eq!(want, SCHEMA_VERSION);
            }
            other => unreachable!("expected schema version error, got {other:?}"),
        }
    }

    #[test]
    fn missing_version_is_rejected() {
        assert!(matches!(
            Report::load_str(r#"{"report": "x"}"#),
            Err(ReportError::SchemaVersion { found: None, .. })
        ));
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("cachegraph-obs-report-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("report.json");
        let mut report = Report::new("file-test");
        report.set_metrics(&Registry::new().snapshot());
        report.save(&path).expect("save");
        let loaded = Report::load(&path).expect("load");
        assert_eq!(loaded.name, "file-test");
        std::fs::remove_file(&path).ok();
    }
}
