//! Delta-encoded miss-rate timeline records.
//!
//! The cache simulator's interval sampler (see `cachegraph-cache-sim`'s
//! `profile` module) emits one [`TimelineRecord`] every N L1 accesses
//! through the registry's JSONL sink, so a long simulation can be
//! watched live: phase transitions show up as knees in the miss-rate
//! curve. Records are **delta-encoded** — `accesses` and `l1_misses`
//! count events since the previous record, not cumulative totals — so
//! each line is self-contained for plotting a rate and a torn tail
//! loses only its own interval.

use crate::json::Json;

/// One interval sample of the L1 miss-rate timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineRecord {
    /// Label of the profiled run the sample belongs to, e.g. `fw.tiled.bdl`.
    pub label: String,
    /// Sample index within the run, starting at 0.
    pub seq: u64,
    /// L1 demand accesses in this interval (delta, not cumulative).
    pub accesses: u64,
    /// L1 demand misses in this interval (delta, not cumulative).
    pub l1_misses: u64,
}

impl TimelineRecord {
    /// Miss rate over this interval in `[0, 1]`; 0 when the interval is
    /// empty.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }

    /// The record as a JSONL event object (tagged `"type":"timeline"`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("type", "timeline")
            .field("label", self.label.as_str())
            .field("seq", self.seq)
            .field("accesses", self.accesses)
            .field("l1_misses", self.l1_misses)
    }

    /// Parse a record back from its [`to_json`](Self::to_json) form.
    /// Returns `None` for non-timeline events (other JSONL lines share
    /// the same stream).
    pub fn from_json(json: &Json) -> Option<Self> {
        if json.get("type").and_then(Json::as_str) != Some("timeline") {
            return None;
        }
        Some(Self {
            label: json.get("label")?.as_str()?.to_string(),
            seq: json.get("seq")?.as_u64()?,
            accesses: json.get("accesses")?.as_u64()?,
            l1_misses: json.get("l1_misses")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let record = TimelineRecord {
            label: "fw.tiled.bdl".to_string(),
            seq: 7,
            accesses: 4096,
            l1_misses: 513,
        };
        let text = record.to_json().render();
        let reparsed = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(TimelineRecord::from_json(&reparsed), Some(record));
    }

    #[test]
    fn non_timeline_events_are_skipped() {
        let span_event = Json::obj().field("type", "span").field("path", "fw.tiled");
        assert_eq!(TimelineRecord::from_json(&span_event), None);
        let untagged = Json::obj().field("label", "x").field("seq", 0_u64);
        assert_eq!(TimelineRecord::from_json(&untagged), None);
    }

    #[test]
    fn miss_rate_handles_empty_interval() {
        let mut r = TimelineRecord { label: "x".into(), seq: 0, accesses: 0, l1_misses: 0 };
        assert_eq!(r.miss_rate(), 0.0);
        r.accesses = 8;
        r.l1_misses = 2;
        assert!((r.miss_rate() - 0.25).abs() < 1e-12);
    }
}
