//! Append-only JSONL run journals with torn-tail recovery.
//!
//! The supervised experiment runner streams one JSON object per line as
//! each experiment finishes, so a killed run leaves a prefix of complete
//! records plus, at worst, one torn final line from a write the process
//! died inside. [`JournalWriter`] appends and flushes line-atomically
//! (one `write_all` of `record + '\n'` per record); [`read_journal`]
//! parses everything back, treating an unparseable *final* line as a
//! recoverable artifact of a mid-write kill — it is reported, not fatal
//! — while an unparseable line in the middle of the file means external
//! corruption and is an error the caller must decide about.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::json::{self, Json, JsonError};

/// Appends records to a journal file, one JSON document per line.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Start a fresh journal at `path` (truncates any existing file).
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self { file: File::create(path)? })
    }

    /// Open `path` for appending, creating it if absent (the resume
    /// path: completed records already in the file are kept).
    pub fn append(path: &Path) -> std::io::Result<Self> {
        Ok(Self { file: OpenOptions::new().create(true).append(true).open(path)? })
    }

    /// Append one record and flush so a later kill cannot lose it. The
    /// line is written with a single `write_all`, so a record is either
    /// fully buffered by the OS or identifiable as the torn tail.
    pub fn write(&mut self, record: &Json) -> std::io::Result<()> {
        let mut line = record.render();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }

    /// Write a deliberately torn record prefix *without* the newline and
    /// stop — test/fault-injection hook simulating a process killed
    /// mid-write. The prefix is clipped to half the record so it can
    /// never parse as a complete document.
    pub fn write_torn(&mut self, record: &Json) -> std::io::Result<()> {
        let line = record.render();
        let cut = line.len() / 2;
        self.file.write_all(&line.as_bytes()[..cut])?;
        self.file.flush()
    }
}

/// A journal read back from disk.
#[derive(Clone, Debug, Default)]
pub struct JournalContents {
    /// Every complete record, in file order.
    pub records: Vec<Json>,
    /// The unparseable final line, if the file ends mid-record (the
    /// signature of a killed writer). Recovered, not fatal.
    pub torn_tail: Option<String>,
}

/// Why a journal could not be read.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying file read failed.
    Io(std::io::Error),
    /// A line *before* the last failed to parse — external corruption,
    /// not a mid-write kill.
    CorruptLine {
        /// 1-based line number.
        line: usize,
        /// What the parser objected to (or `None` for invalid UTF-8).
        error: Option<JsonError>,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read journal: {e}"),
            Self::CorruptLine { line, error: Some(e) } => {
                write!(f, "journal line {line} is corrupt: {e}")
            }
            Self::CorruptLine { line, error: None } => {
                write!(f, "journal line {line} is corrupt: invalid UTF-8")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Read a journal back, recovering from a torn final line. Returns every
/// complete record plus the torn tail, if any; empty files (and files of
/// only blank lines) yield an empty record list.
pub fn read_journal(path: &Path) -> Result<JournalContents, JournalError> {
    let bytes = std::fs::read(path).map_err(JournalError::Io)?;
    read_journal_bytes(&bytes)
}

/// [`read_journal`] over in-memory bytes (tests and fault injection).
pub fn read_journal_bytes(bytes: &[u8]) -> Result<JournalContents, JournalError> {
    let mut contents = JournalContents::default();
    let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let last_nonempty = lines.iter().rposition(|l| !l.is_empty());
    for (idx, raw) in lines.iter().enumerate() {
        if raw.is_empty() {
            continue;
        }
        let parsed = std::str::from_utf8(raw).ok().map(json::parse);
        match parsed {
            Some(Ok(record)) => contents.records.push(record),
            Some(Err(_)) if Some(idx) == last_nonempty => {
                contents.torn_tail = Some(String::from_utf8_lossy(raw).into_owned());
            }
            None if Some(idx) == last_nonempty => {
                contents.torn_tail = Some(String::from_utf8_lossy(raw).into_owned());
            }
            Some(Err(e)) => {
                return Err(JournalError::CorruptLine { line: idx + 1, error: Some(e) })
            }
            None => return Err(JournalError::CorruptLine { line: idx + 1, error: None }),
        }
    }
    Ok(contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cachegraph-obs-journal-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn record(id: &str, n: u64) -> Json {
        Json::obj().field("id", id).field("n", n)
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let mut w = JournalWriter::create(&path).expect("create");
        w.write(&record("a", 1)).expect("write");
        w.write(&record("b", 2)).expect("write");
        let back = read_journal(&path).expect("read");
        assert_eq!(back.records.len(), 2);
        assert!(back.torn_tail.is_none());
        assert_eq!(back.records[1].get("id").and_then(Json::as_str), Some("b"));
    }

    #[test]
    fn append_preserves_existing_records() {
        let path = tmp("append.jsonl");
        JournalWriter::create(&path).expect("create").write(&record("a", 1)).expect("write");
        JournalWriter::append(&path).expect("append").write(&record("b", 2)).expect("write");
        assert_eq!(read_journal(&path).expect("read").records.len(), 2);
    }

    #[test]
    fn torn_final_line_is_recovered_not_fatal() {
        let path = tmp("torn.jsonl");
        let mut w = JournalWriter::create(&path).expect("create");
        w.write(&record("a", 1)).expect("write");
        w.write_torn(&record("b", 2)).expect("torn write");
        let back = read_journal(&path).expect("read survives torn tail");
        assert_eq!(back.records.len(), 1, "only the complete record survives");
        let tail = back.torn_tail.expect("torn tail reported");
        assert!(tail.starts_with('{') && json::parse(&tail).is_err());
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let bytes = b"{\"id\":\"a\"}\nnot json at all\n{\"id\":\"b\"}\n";
        match read_journal_bytes(bytes) {
            Err(JournalError::CorruptLine { line: 2, .. }) => {}
            other => unreachable!("expected corrupt-line error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_tail_is_recovered_midfile_is_error() {
        let mut tail = b"{\"id\":\"a\"}\n".to_vec();
        tail.extend_from_slice(&[0xFF, 0xFE, 0x80]);
        let back = read_journal_bytes(&tail).expect("invalid UTF-8 tail recovers");
        assert_eq!(back.records.len(), 1);
        assert!(back.torn_tail.is_some());

        let mut mid = b"{\"id\":\"a\"}\n".to_vec();
        mid.extend_from_slice(&[0xFF, 0xFE, 0x80]);
        mid.extend_from_slice(b"\n{\"id\":\"b\"}\n");
        assert!(matches!(
            read_journal_bytes(&mid),
            Err(JournalError::CorruptLine { line: 2, error: None })
        ));
    }

    #[test]
    fn empty_and_blank_files_read_as_empty() {
        assert!(read_journal_bytes(b"").expect("empty").records.is_empty());
        let blank = read_journal_bytes(b"\n\n").expect("blank");
        assert!(blank.records.is_empty() && blank.torn_tail.is_none());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_journal(&tmp("does-not-exist.jsonl")),
            Err(JournalError::Io(_))
        ));
    }
}
