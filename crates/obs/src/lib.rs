//! # cachegraph-obs
//!
//! Dependency-free observability for the cachegraph workspace: a
//! metrics [`Registry`] (counters / gauges / power-of-two histograms),
//! RAII [`Span`] timers forming a `/`-separated hierarchy with per-span
//! counter deltas, a hand-rolled [`json`] reader/writer (no serde), a
//! JSONL event sink, and schema-versioned end-of-run [`Report`]
//! documents plus a [`compare`] engine for diffing two runs.
//!
//! Everything here is plain `std`. Instrumentation points accept a
//! [`Registry`] handle; passing [`Registry::disabled`] makes every
//! operation a branch on `None`, so instrumented drivers cost nothing
//! measurable when observability is off (see the `obs_overhead` bench
//! in `cachegraph-bench`).
//!
//! ```
//! use cachegraph_obs::{Registry, Report};
//!
//! let reg = Registry::new();
//! let relaxations = reg.counter("sssp.relaxations");
//! {
//!     let root = reg.span("dijkstra.array");
//!     let _relax = root.child("relax");
//!     relaxations.add(3);
//! }
//! let mut report = Report::new("example");
//! report.set_metrics(&reg.snapshot());
//! assert!(report.render().contains("\"sssp.relaxations\":3"));
//! ```

pub mod compare;
pub mod journal;
pub mod json;
pub mod registry;
pub mod report;
pub mod span;
pub mod timeline;
pub mod trace;

pub use compare::{compare_reports, Delta, DEFAULT_THRESHOLD};
pub use journal::{read_journal, JournalContents, JournalError, JournalWriter};
pub use json::{parse as parse_json, Json, JsonError};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use report::{Report, ReportError, MIN_SCHEMA_VERSION, SCHEMA_VERSION, TOOL_NAME};
pub use span::{Span, SpanRecord};
pub use timeline::TimelineRecord;
pub use trace::{TraceBuilder, TraceConfig, TraceParseError, TraceRecord, Tracer, SEGMENTS};
