//! Request-scoped wide-event tracing: one [`TraceRecord`] per request,
//! accumulated across threads, landing in a flight recorder and a
//! sampled JSONL sink.
//!
//! # The partition invariant
//!
//! A [`TraceBuilder`] is a *baton*: it starts a monotonic clock when
//! the request is first seen and every [`mark`](TraceBuilder::mark)
//! closes the interval since the previous mark, attributing it to one
//! named segment. Segments therefore partition the request's lifetime
//! exactly — `sum(segment durations) == wall latency` is arithmetic
//! (telescoping sums of `Instant` differences), not a measurement that
//! happens to work out. The builder is plain owned data (`Send`), so it
//! rides inside the server's queued job from the admission thread to
//! whichever worker claims it; the clock never restarts at the handoff,
//! which is what makes queue wait a first-class measured segment.
//!
//! # Sinks
//!
//! A finished record goes to the [`Tracer`], which keeps it in two
//! places:
//!
//! * the **flight recorder** — two fixed-size rings, one of the most
//!   recent traces and one of the most recent *non-OK* traces. Errors
//!   are kept separately so a burst of healthy traffic cannot evict the
//!   one trace a post-mortem needs. [`Tracer::flush`] drains both
//!   (deduplicated) into the final report; [`Tracer::drain_recent`]
//!   feeds the in-band `TRACE` op without touching the error ring.
//! * the **JSONL sink** — power-of-two sampled (like the cache
//!   profiler's ring buffer), except that non-OK outcomes are *always*
//!   written: every `DEADLINE_EXCEEDED`, `BUSY`, and `INTERNAL` is
//!   captured even at 1/1024 sampling.
//!
//! Trace ids are derived from a seed and a sequence number through a
//! SplitMix64 finalizer, so a seeded server run produces the same ids
//! request-for-request — failures reproduce by id.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// Canonical segment names in waterfall order. A trace need not contain
/// every segment (a cache hit has no `compute`; a shed request only has
/// `admission`), but renderers should present the ones it has in this
/// order.
pub const SEGMENTS: [&str; 6] = ["admission", "queue", "cache", "compute", "serialize", "write"];

/// SplitMix64 finalizer: the workspace-standard bit mixer, used here to
/// turn `seed + sequence` into a well-scrambled, reproducible trace id.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Everything tunable about a [`Tracer`].
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Master switch. Disabled tracers hand out inert builders whose
    /// every method is a branch on `None` — no clock reads, no
    /// allocation (the pattern [`crate::Registry::disabled`] set).
    pub enabled: bool,
    /// Capacity of each flight-recorder ring (recent and errors).
    pub flight_len: usize,
    /// log2 of the JSONL sampling period: OK traces with
    /// `seq % 2^k == 0` are written. 0 = every trace.
    pub sample_period_log2: u32,
    /// Seed mixed into every trace id (reuse the workload seed so a
    /// rerun reproduces ids).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { enabled: true, flight_len: 64, sample_period_log2: 4, seed: 0x5EED }
    }
}

/// A completed, immutable trace: the wide event for one request.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Reproducible id (`mix64(seed + seq)`), rendered as 16 hex digits.
    pub trace_id: u64,
    /// Sequence number within the tracer's lifetime (drives sampling).
    pub seq: u64,
    /// Operation name (`path` / `reach` / `match` / ...).
    pub op: String,
    /// Final status taxonomy string (`OK`, `BUSY`, `INTERNAL`, ...).
    pub outcome: String,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Total wall latency: exactly the sum of the segment durations.
    pub wall_ns: u64,
    /// `(segment name, duration ns)`, in first-mark order; names repeat
    /// never (marks with the same name merge).
    pub segments: Vec<(String, u64)>,
    /// Free-form `(key, value)` annotations (cache hit/miss, shard,
    /// cancel polls, fault kinds, ...).
    pub tags: Vec<(String, Json)>,
}

impl TraceRecord {
    /// The trace id as the 16-hex-digit string renderers print.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Duration of the named segment, 0 when absent.
    pub fn segment_ns(&self, name: &str) -> u64 {
        self.segments.iter().find(|(n, _)| n == name).map_or(0, |&(_, d)| d)
    }

    /// Value of the named tag, if present.
    pub fn tag(&self, key: &str) -> Option<&Json> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The record as a JSON object (one flight-recorder entry / one
    /// JSONL line).
    pub fn to_json(&self) -> Json {
        let segments = self
            .segments
            .iter()
            .map(|(name, dur)| Json::obj().field("name", name.as_str()).field("dur_ns", *dur))
            .collect();
        let mut tags = Json::obj();
        for (k, v) in &self.tags {
            tags = tags.field(k, v.clone());
        }
        Json::obj()
            .field("trace_id", self.id_hex())
            .field("seq", self.seq)
            .field("op", self.op.as_str())
            .field("outcome", self.outcome.as_str())
            .field("start_ns", self.start_ns)
            .field("wall_ns", self.wall_ns)
            .field("segments", Json::Arr(segments))
            .field("tags", tags)
    }

    /// Parse a record back from its [`to_json`](Self::to_json) form.
    /// Every malformed shape is a structured [`TraceParseError`] — the
    /// corruption sweeps assert this never panics.
    pub fn from_json(json: &Json) -> Result<Self, TraceParseError> {
        let field = |name: &'static str| json.get(name).ok_or(TraceParseError::MissingField(name));
        let id_text = field("trace_id")?.as_str().ok_or(TraceParseError::BadField("trace_id"))?;
        let trace_id =
            u64::from_str_radix(id_text, 16).map_err(|_| TraceParseError::BadField("trace_id"))?;
        let num = |name: &'static str| {
            field(name).and_then(|v| v.as_u64().ok_or(TraceParseError::BadField(name)))
        };
        let text = |name: &'static str| {
            field(name).and_then(|v| {
                v.as_str().map(str::to_string).ok_or(TraceParseError::BadField(name))
            })
        };
        let mut segments = Vec::new();
        for seg in field("segments")?.as_arr().ok_or(TraceParseError::BadField("segments"))? {
            let name = seg
                .get("name")
                .and_then(Json::as_str)
                .ok_or(TraceParseError::BadField("segments"))?;
            let dur = seg
                .get("dur_ns")
                .and_then(Json::as_u64)
                .ok_or(TraceParseError::BadField("segments"))?;
            segments.push((name.to_string(), dur));
        }
        let tags = match json.get("tags") {
            None => Vec::new(),
            Some(Json::Obj(fields)) => fields.clone(),
            Some(_) => return Err(TraceParseError::BadField("tags")),
        };
        Ok(Self {
            trace_id,
            seq: num("seq")?,
            op: text("op")?,
            outcome: text("outcome")?,
            start_ns: num("start_ns")?,
            wall_ns: num("wall_ns")?,
            segments,
            tags,
        })
    }
}

/// Why a trace record could not be parsed back from JSON.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// A required field was absent.
    MissingField(&'static str),
    /// A field was present but had the wrong type or range.
    BadField(&'static str),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingField(name) => write!(f, "trace record is missing field `{name}`"),
            Self::BadField(name) => write!(f, "trace record field `{name}` is malformed"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Live state of one in-flight trace (absent on disabled tracers).
#[derive(Debug)]
struct BuilderInner {
    trace_id: u64,
    seq: u64,
    op: String,
    start_ns: u64,
    cursor: Instant,
    segments: Vec<(String, u64)>,
    tags: Vec<(String, Json)>,
}

/// The per-request baton: owned, `Send`, carried with the request
/// across threads. See the module docs for the partition invariant.
#[derive(Debug)]
pub struct TraceBuilder {
    inner: Option<BuilderInner>,
}

impl TraceBuilder {
    /// An inert builder (what disabled tracers hand out).
    pub fn inert() -> Self {
        Self { inner: None }
    }

    /// True when this builder actually records (tracer was enabled).
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Rename the operation (useful when the op is only known after the
    /// request frame parses).
    pub fn set_op(&mut self, op: &str) {
        if let Some(inner) = &mut self.inner {
            inner.op = op.to_string();
        }
    }

    /// Close the interval since the previous mark (or the start) and
    /// attribute it to `segment`. Marks with a name already present
    /// merge into that segment, so a segment interrupted and resumed
    /// (compute around a fault, say) still reads as one duration.
    pub fn mark(&mut self, segment: &str) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let now = Instant::now();
        let dur = now.duration_since(inner.cursor).as_nanos() as u64;
        inner.cursor = now;
        match inner.segments.iter_mut().find(|(n, _)| n == segment) {
            Some((_, total)) => *total += dur,
            None => inner.segments.push((segment.to_string(), dur)),
        }
    }

    /// Attach a `(key, value)` annotation; later writes win on render
    /// but both are kept (tags are an append-only log).
    pub fn tag(&mut self, key: &str, value: impl Into<Json>) {
        if let Some(inner) = &mut self.inner {
            inner.tags.push((key.to_string(), value.into()));
        }
    }

    /// Seal the trace with its final outcome. `wall_ns` is defined as
    /// the sum of the segment durations — call this immediately after
    /// the final [`mark`](Self::mark). Returns `None` on inert
    /// builders.
    pub fn finish(self, outcome: &str) -> Option<TraceRecord> {
        let inner = self.inner?;
        let wall_ns = inner.segments.iter().map(|&(_, d)| d).sum();
        Some(TraceRecord {
            trace_id: inner.trace_id,
            seq: inner.seq,
            op: inner.op,
            outcome: outcome.to_string(),
            start_ns: inner.start_ns,
            wall_ns,
            segments: inner.segments,
            tags: inner.tags,
        })
    }
}

/// The two flight-recorder rings (under one lock; see [`Tracer`]).
#[derive(Debug, Default)]
struct FlightRings {
    recent: VecDeque<TraceRecord>,
    errors: VecDeque<TraceRecord>,
}

/// The per-server trace collector: id allocation, the flight recorder,
/// and the sampled JSONL sink. Shared by reference (the server holds it
/// inside its `Arc`); all interior state is atomics or mutexes.
pub struct Tracer {
    cfg: TraceConfig,
    epoch: Instant,
    seq: AtomicU64,
    recorded: AtomicU64,
    sampled: AtomicU64,
    rings: Mutex<FlightRings>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("cfg", &self.cfg)
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer with the given configuration; the epoch (origin of
    /// every `start_ns`) is now.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            cfg,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            rings: Mutex::new(FlightRings::default()),
            sink: Mutex::new(None),
        }
    }

    /// An inert tracer: `begin` hands out inert builders and `record`
    /// is a no-op. The overhead baseline.
    pub fn disabled() -> Self {
        Self::new(TraceConfig { enabled: false, ..TraceConfig::default() })
    }

    /// True when builders from this tracer record.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Attach the JSONL sink sampled records are written to (one JSON
    /// object per line).
    pub fn attach_jsonl_sink(&self, sink: Box<dyn Write + Send>) {
        *lock_or_recover(&self.sink) = Some(sink);
    }

    /// Begin a trace whose clock starts now.
    pub fn begin(&self, op: &str) -> TraceBuilder {
        self.begin_at(Instant::now(), op)
    }

    /// Begin a trace whose clock starts at `at` (captured before the
    /// request frame was read, so the `admission` segment includes the
    /// read itself).
    pub fn begin_at(&self, at: Instant, op: &str) -> TraceBuilder {
        if !self.cfg.enabled {
            return TraceBuilder::inert();
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let start_ns = at.checked_duration_since(self.epoch).unwrap_or_default().as_nanos() as u64;
        TraceBuilder {
            inner: Some(BuilderInner {
                trace_id: mix64(self.cfg.seed.wrapping_add(seq)),
                seq,
                op: op.to_string(),
                start_ns,
                cursor: at,
                segments: Vec::new(),
                tags: Vec::new(),
            }),
        }
    }

    /// Whether a finished trace is written to the JSONL sink: every
    /// non-OK outcome, plus one OK trace per `2^sample_period_log2`.
    fn is_sampled(&self, seq: u64, outcome: &str) -> bool {
        outcome != "OK" || seq & ((1u64 << self.cfg.sample_period_log2.min(63)) - 1) == 0
    }

    /// File a finished record: always into the flight recorder, into
    /// the JSONL sink when sampled.
    pub fn record(&self, record: TraceRecord) {
        if !self.cfg.enabled {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if self.is_sampled(record.seq, &record.outcome) {
            self.sampled.fetch_add(1, Ordering::Relaxed);
            let mut sink = lock_or_recover(&self.sink);
            if let Some(w) = sink.as_mut() {
                // A full disk must not take the server down with it.
                let _ = writeln!(w, "{}", record.to_json().render());
                let _ = w.flush();
            }
        }
        let mut rings = lock_or_recover(&self.rings);
        let cap = self.cfg.flight_len.max(1);
        if record.outcome != "OK" {
            if rings.errors.len() >= cap {
                rings.errors.pop_front();
            }
            rings.errors.push_back(record.clone());
        }
        if rings.recent.len() >= cap {
            rings.recent.pop_front();
        }
        rings.recent.push_back(record);
    }

    /// Total traces recorded / written to the JSONL sink so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.recorded.load(Ordering::Relaxed), self.sampled.load(Ordering::Relaxed))
    }

    /// Drain the recent ring (the in-band `TRACE` op). The error ring
    /// is deliberately left intact so the final report's post-mortem
    /// section survives live introspection.
    pub fn drain_recent(&self) -> Vec<TraceRecord> {
        lock_or_recover(&self.rings).recent.drain(..).collect()
    }

    /// Drain everything — errors first, then remaining recent traces,
    /// deduplicated by sequence number and sorted by it. This is the
    /// flush into the final report on drain (and what a panic handler
    /// should call).
    pub fn flush(&self) -> Vec<TraceRecord> {
        let mut rings = lock_or_recover(&self.rings);
        let mut out: Vec<TraceRecord> = rings.errors.drain(..).collect();
        for r in rings.recent.drain(..) {
            if !out.iter().any(|e| e.seq == r.seq) {
                out.push(r);
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }
}

/// Survive a poisoned lock: a panicking recorder thread must not wedge
/// every later trace.
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn segments_partition_wall_exactly() {
        let tracer = Tracer::new(TraceConfig::default());
        let mut tb = tracer.begin("path");
        std::thread::sleep(std::time::Duration::from_millis(2));
        tb.mark("admission");
        std::thread::sleep(std::time::Duration::from_millis(1));
        tb.mark("queue");
        tb.mark("compute");
        let rec = tb.finish("OK").expect("live builder");
        let sum: u64 = rec.segments.iter().map(|&(_, d)| d).sum();
        assert_eq!(sum, rec.wall_ns, "partition invariant is exact");
        assert!(rec.segment_ns("admission") >= 2_000_000);
        assert!(rec.segment_ns("queue") >= 1_000_000);
    }

    #[test]
    fn repeated_marks_merge_into_one_segment() {
        let tracer = Tracer::new(TraceConfig::default());
        let mut tb = tracer.begin("path");
        tb.mark("compute");
        tb.mark("cache");
        tb.mark("compute");
        let rec = tb.finish("OK").expect("live");
        assert_eq!(rec.segments.iter().filter(|(n, _)| n == "compute").count(), 1);
        let sum: u64 = rec.segments.iter().map(|&(_, d)| d).sum();
        assert_eq!(sum, rec.wall_ns);
    }

    #[test]
    fn trace_ids_are_seeded_and_reproducible() {
        let a = Tracer::new(TraceConfig { seed: 7, ..TraceConfig::default() });
        let b = Tracer::new(TraceConfig { seed: 7, ..TraceConfig::default() });
        let other = Tracer::new(TraceConfig { seed: 8, ..TraceConfig::default() });
        let id = |t: &Tracer| t.begin("path").finish("OK").expect("live").trace_id;
        let first_a = id(&a);
        assert_eq!(first_a, id(&b), "same seed + seq -> same id");
        assert_ne!(first_a, id(&other), "different seed -> different id");
        let second = a.begin("path").finish("OK").expect("live");
        assert_eq!(second.seq, 1);
        assert_ne!(second.trace_id, first_a, "ids vary per sequence");
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        let mut tb = tracer.begin("path");
        assert!(!tb.is_live());
        tb.mark("queue");
        tb.tag("k", 1u64);
        assert!(tb.finish("OK").is_none());
        assert_eq!(tracer.counts(), (0, 0));
        assert!(tracer.flush().is_empty());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let tracer = Tracer::new(TraceConfig { seed: 42, ..TraceConfig::default() });
        let mut tb = tracer.begin("reach");
        tb.mark("admission");
        tb.mark("queue");
        tb.tag("cache", "miss");
        tb.tag("cancel_polls", 17u64);
        let rec = tb.finish("DEADLINE_EXCEEDED").expect("live");
        let json = rec.to_json();
        let back = TraceRecord::from_json(&json).expect("parses");
        assert_eq!(back, rec);
        // And through text, like a JSONL line.
        let reparsed = crate::json::parse(&json.render()).expect("valid json");
        assert_eq!(TraceRecord::from_json(&reparsed).expect("parses"), rec);
    }

    #[test]
    fn malformed_records_are_structured_errors() {
        let good = Tracer::new(TraceConfig::default())
            .begin("path")
            .finish("OK")
            .expect("live")
            .to_json();
        assert!(TraceRecord::from_json(&Json::obj()).is_err());
        let bad_id = Json::obj().field("trace_id", "zz-not-hex");
        assert_eq!(TraceRecord::from_json(&bad_id), Err(TraceParseError::BadField("trace_id")));
        // Dropping any one field keeps the error structured.
        if let Json::Obj(fields) = &good {
            for skip in 0..fields.len() {
                let partial = Json::Obj(
                    fields
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, kv)| kv.clone())
                        .collect(),
                );
                // `tags` is genuinely optional; everything else must err.
                if fields[skip].0 != "tags" {
                    assert!(TraceRecord::from_json(&partial).is_err(), "dropped {skip}");
                }
            }
        }
    }

    #[test]
    fn flight_recorder_keeps_errors_through_ok_floods() {
        let tracer = Tracer::new(TraceConfig { flight_len: 4, ..TraceConfig::default() });
        let rec = |outcome: &str| {
            let tb = tracer.begin("path");
            let r = tb.finish(outcome).expect("live");
            tracer.record(r);
        };
        rec("INTERNAL");
        for _ in 0..20 {
            rec("OK");
        }
        let all = tracer.flush();
        assert!(
            all.iter().any(|r| r.outcome == "INTERNAL"),
            "the error ring must survive an OK flood"
        );
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq), "flush sorts by seq");
        assert!(tracer.flush().is_empty(), "flush drains");
    }

    #[test]
    fn drain_recent_leaves_the_error_ring() {
        let tracer = Tracer::new(TraceConfig { flight_len: 8, ..TraceConfig::default() });
        tracer.record(tracer.begin("path").finish("INTERNAL").expect("live"));
        tracer.record(tracer.begin("path").finish("OK").expect("live"));
        let drained = tracer.drain_recent();
        assert_eq!(drained.len(), 2, "recent ring had both");
        let remaining = tracer.flush();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].outcome, "INTERNAL");
    }

    #[test]
    fn sampling_keeps_every_non_ok_and_one_in_2k_oks() {
        let tracer = Tracer::new(TraceConfig { sample_period_log2: 2, ..TraceConfig::default() });
        let lines = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        tracer.attach_jsonl_sink(Box::new(Sink(Arc::clone(&lines))));
        for i in 0..8u64 {
            let outcome = if i == 5 { "BUSY" } else { "OK" };
            tracer.record(tracer.begin("path").finish(outcome).expect("live"));
        }
        let text = String::from_utf8(lines.lock().expect("sink lock").clone()).expect("utf8");
        let parsed: Vec<TraceRecord> = text
            .lines()
            .map(|l| TraceRecord::from_json(&crate::json::parse(l).expect("line json")).expect("rec"))
            .collect();
        // seq 0 and 4 by period 4; seq 5 because it is BUSY.
        assert_eq!(parsed.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 4, 5]);
        assert_eq!(tracer.counts(), (8, 3));
    }

    #[test]
    fn builders_cross_threads() {
        let tracer = Tracer::new(TraceConfig::default());
        let mut tb = tracer.begin("path");
        tb.mark("admission");
        let handle = std::thread::spawn(move || {
            tb.mark("queue");
            tb.finish("OK").expect("live")
        });
        let rec = handle.join().expect("worker thread");
        assert_eq!(rec.segments.len(), 2);
        assert_eq!(rec.wall_ns, rec.segment_ns("admission") + rec.segment_ns("queue"));
    }
}
