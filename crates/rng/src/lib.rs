//! Minimal deterministic pseudo-random numbers for tests, generators and
//! benches.
//!
//! The workspace must build offline, so it cannot depend on the `rand`
//! crate; this crate provides the tiny slice of its API the repo actually
//! uses — seed from a `u64`, sample a uniform integer from a range, a
//! uniform `f64`, and a Bernoulli draw — over a xoshiro256++ generator
//! seeded with SplitMix64 (the construction recommended by the xoshiro
//! authors). Streams are fully determined by the seed, on every platform,
//! so generated workloads are reproducible across runs and machines.
//!
//! Not cryptographically secure; do not use for anything but workload
//! generation and tests.
//!
//! The [`corrupt`] module builds on the generator: seeded byte-buffer
//! mutation (truncate / bit-flip / overwrite / insert) shared by the
//! fault-injection test suites across the workspace.

pub mod corrupt;

use std::ops::{Range, RangeInclusive};

/// xoshiro256++ generator. `StdRng` is kept as the workspace-wide alias so
/// call sites read like the `rand` idiom they replaced.
pub type StdRng = Xoshiro256;

/// The xoshiro256++ state: 256 bits, never all zero.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed deterministically from a single `u64` by running SplitMix64
    /// four times, as the xoshiro reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform value from `range` (half-open `a..b` or inclusive `a..=b`
    /// over the common integer types, half-open over `f64`).
    ///
    /// Panics if the range is empty, like `rand::Rng::gen_range`.
    pub fn gen_range<T>(&mut self, range: impl SampleRange<T>) -> T {
        range.sample(self)
    }

    /// Uniform `u64` in `0..span` via multiply-shift rejection (unbiased).
    fn uniform_below(&mut self, span: u64) -> u64 {
        debug_assert!(span >= 1);
        // Reject draws from the final partial bucket so every residue is
        // equally likely.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// A range that can be sampled uniformly — the receiver-side half of
/// [`Xoshiro256::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from `self`.
    fn sample(self, rng: &mut Xoshiro256) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Xoshiro256) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.uniform_below(span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Xoshiro256) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.uniform_below(span + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Xoshiro256) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can land exactly on `end`; fold it back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&x));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "every residue should appear: {seen:?}");
    }

    #[test]
    fn f64_range_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((0.0..1.0).contains(&v));
            if rng.gen_bool(0.25) {
                trues += 1;
            }
        }
        assert!((1500..3500).contains(&trues), "p=0.25 of 10000 gave {trues}");
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        // Must not overflow or hang.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
