//! Seeded byte-level corruption for fault-injection tests.
//!
//! The robustness suites (obs JSON hardening, cache-sim trace
//! corruption, supervisor journal recovery) all need the same three
//! primitives — truncate a buffer, flip a bit, splice garbage — driven
//! from a deterministic stream so a failing mutation reproduces from its
//! seed alone. Centralizing them here keeps every suite on the one
//! workspace PRNG instead of five hand-rolled LCGs.
//!
//! Nothing here knows about trace or JSON framing; callers decide what a
//! byte means. The operations never panic: empty inputs pass through
//! unchanged.

use crate::Xoshiro256;

/// One mutation applied to a byte buffer (reported back to the caller so
/// a failing case can name what was done to the input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Buffer cut to `len` bytes.
    Truncate {
        /// Resulting length.
        len: usize,
    },
    /// Bit `bit` of byte `at` inverted.
    BitFlip {
        /// Byte offset.
        at: usize,
        /// Bit index, 0 = LSB.
        bit: u8,
    },
    /// Byte at `at` overwritten with `value`.
    Overwrite {
        /// Byte offset.
        at: usize,
        /// New value.
        value: u8,
    },
    /// `value` inserted before offset `at`.
    Insert {
        /// Byte offset.
        at: usize,
        /// Inserted value.
        value: u8,
    },
}

/// Truncate `bytes` to `len` (no-op when already shorter).
pub fn truncate_at(bytes: &mut Vec<u8>, len: usize) {
    bytes.truncate(len);
}

/// Flip bit `bit` (0–7) of the byte at `at`; no-op out of range.
pub fn bit_flip(bytes: &mut [u8], at: usize, bit: u8) {
    if let Some(b) = bytes.get_mut(at) {
        *b ^= 1 << (bit & 7);
    }
}

/// A seeded source of random mutations.
#[derive(Clone, Debug)]
pub struct Corruptor {
    rng: Xoshiro256,
}

impl Corruptor {
    /// Deterministic corruptor for `seed`.
    pub fn new(seed: u64) -> Self {
        Self { rng: Xoshiro256::seed_from_u64(seed) }
    }

    /// Apply one random mutation to `bytes` and report it. Empty buffers
    /// only ever grow by insertion.
    pub fn mutate(&mut self, bytes: &mut Vec<u8>) -> Mutation {
        let choice = if bytes.is_empty() { 3 } else { self.rng.gen_range(0u32..4) };
        match choice {
            0 => {
                let len = self.rng.gen_range(0..bytes.len());
                truncate_at(bytes, len);
                Mutation::Truncate { len }
            }
            1 => {
                let at = self.rng.gen_range(0..bytes.len());
                let bit = self.rng.gen_range(0u8..8);
                bit_flip(bytes, at, bit);
                Mutation::BitFlip { at, bit }
            }
            2 => {
                let at = self.rng.gen_range(0..bytes.len());
                let value = self.rng.gen_range(0u8..=255);
                bytes[at] = value;
                Mutation::Overwrite { at, value }
            }
            _ => {
                let at = self.rng.gen_range(0..=bytes.len());
                let value = self.rng.gen_range(0u8..=255);
                bytes.insert(at, value);
                Mutation::Insert { at, value }
            }
        }
    }

    /// Apply `count` random mutations, returning what was done.
    pub fn mutate_n(&mut self, bytes: &mut Vec<u8>, count: usize) -> Vec<Mutation> {
        (0..count).map(|_| self.mutate(bytes)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let base = b"the quick brown fox".to_vec();
        let (mut a, mut b) = (base.clone(), base.clone());
        let ma = Corruptor::new(9).mutate_n(&mut a, 8);
        let mb = Corruptor::new(9).mutate_n(&mut b, 8);
        assert_eq!(ma, mb);
        assert_eq!(a, b);
        let mut c = base.clone();
        Corruptor::new(10).mutate_n(&mut c, 8);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn primitives_are_bounds_safe() {
        let mut v = vec![0xFFu8; 4];
        bit_flip(&mut v, 99, 3); // out of range: no-op
        assert_eq!(v, vec![0xFF; 4]);
        bit_flip(&mut v, 1, 0);
        assert_eq!(v[1], 0xFE);
        truncate_at(&mut v, 100); // longer than buffer: no-op
        assert_eq!(v.len(), 4);
        truncate_at(&mut v, 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn empty_buffer_only_grows() {
        let mut v = Vec::new();
        let m = Corruptor::new(1).mutate(&mut v);
        assert!(matches!(m, Mutation::Insert { .. }));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn mutations_eventually_cover_every_kind() {
        let mut seen = [false; 4];
        let mut c = Corruptor::new(42);
        for _ in 0..200 {
            let mut v = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
            match c.mutate(&mut v) {
                Mutation::Truncate { .. } => seen[0] = true,
                Mutation::BitFlip { .. } => seen[1] = true,
                Mutation::Overwrite { .. } => seen[2] = true,
                Mutation::Insert { .. } => seen[3] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "all mutation kinds should appear: {seen:?}");
    }
}
