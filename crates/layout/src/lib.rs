//! Cache-conscious matrix data layouts (paper §3.1.2.2 and §3.1.3).
//!
//! The paper's Floyd-Warshall optimizations pair each computation order with
//! a data layout that matches its access pattern:
//!
//! * the iterative baseline uses the usual **row-major** layout;
//! * the tiled implementation uses the **Block Data Layout** (BDL), a
//!   two-level mapping that stores each `B x B` tile contiguously, tiles in
//!   row-major order;
//! * the recursive (cache-oblivious) implementation uses the **Z-Morton**
//!   layout, which stores quadrants recursively in NW, NE, SW, SE order
//!   down to a small tile that is stored row-major.
//!
//! All layouts implement the [`Layout`] trait, mapping logical `(i, j)`
//! coordinates to a flat storage index. [`Matrix`] couples a layout with
//! storage. The [`heuristic`] module implements the paper's block-size
//! selection rule (the 2:1 associativity rule of thumb plus `3·B²·d = C`,
//! Eq. 13).

pub mod heuristic;
mod layouts;
mod matrix;

pub use heuristic::{effective_cache_bytes, select_block_size, BlockSizeChoice};
pub use layouts::{BlockLayout, Layout, RowMajor, ZMorton};
pub use matrix::Matrix;
