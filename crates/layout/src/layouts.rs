//! The three layouts: row-major, Block Data Layout, Z-Morton.

// tidy: kernel

/// Maps logical matrix coordinates to flat storage indices.
///
/// A layout may *pad* the logical `n x n` matrix to a larger
/// `padded_n x padded_n` storage shape (the tiled implementation needs `n`
/// to be a multiple of the tile size; the recursive one needs it to be a
/// tile size times a power of two — §4.1 discusses exactly this padding).
pub trait Layout: Clone + Send + Sync {
    /// Logical matrix dimension.
    fn n(&self) -> usize;

    /// Padded (storage) dimension, `>= n()`.
    fn padded_n(&self) -> usize;

    /// Number of storage elements (`padded_n()²`).
    fn storage_len(&self) -> usize {
        self.padded_n() * self.padded_n()
    }

    /// Flat index of logical element `(i, j)`; `i, j < padded_n()`.
    fn index(&self, i: usize, j: usize) -> usize;
}

/// The usual row-major layout, no padding. This is the baseline layout in
/// every experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowMajor {
    n: usize,
}

impl RowMajor {
    /// Row-major layout for an `n x n` matrix.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl Layout for RowMajor {
    fn n(&self) -> usize {
        self.n
    }

    fn padded_n(&self) -> usize {
        self.n
    }

    #[inline(always)]
    fn index(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }
}

/// Block Data Layout (Fig. 6): the matrix is padded to a multiple of the
/// block size `b`; each `b x b` block is stored contiguously (row-major
/// inside the block), and blocks are laid out row-major.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockLayout {
    n: usize,
    b: usize,
    /// Blocks per side.
    nb: usize,
}

impl BlockLayout {
    /// BDL for an `n x n` matrix with `b x b` blocks. `n` is padded up to
    /// the next multiple of `b`.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(b >= 1, "block size must be at least 1");
        let nb = n.div_ceil(b).max(1);
        Self { n, b, nb }
    }

    /// Block size.
    pub fn block(&self) -> usize {
        self.b
    }

    /// Blocks per side.
    pub fn blocks_per_side(&self) -> usize {
        self.nb
    }

    /// Flat index of the first element of block `(bi, bj)`.
    #[inline(always)]
    pub fn block_start(&self, bi: usize, bj: usize) -> usize {
        (bi * self.nb + bj) * self.b * self.b
    }
}

impl Layout for BlockLayout {
    fn n(&self) -> usize {
        self.n
    }

    fn padded_n(&self) -> usize {
        self.nb * self.b
    }

    #[inline(always)]
    fn index(&self, i: usize, j: usize) -> usize {
        let (bi, ii) = (i / self.b, i % self.b);
        let (bj, jj) = (j / self.b, j % self.b);
        self.block_start(bi, bj) + ii * self.b + jj
    }
}

/// Spread the low 32 bits of `x` so bit `t` lands at position `2t`.
#[inline(always)]
fn spread_bits(x: u64) -> u64 {
    let mut x = x & 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Z-Morton order of block coordinates `(bi, bj)`: quadrants recurse in
/// NW, NE, SW, SE order, i.e. the row bit is the more significant bit of
/// each interleaved pair.
#[inline(always)]
pub(crate) fn morton_of(bi: usize, bj: usize) -> usize {
    ((spread_bits(bi as u64) << 1) | spread_bits(bj as u64)) as usize
}

/// Z-Morton layout (Fig. 5): the matrix is padded to `base * 2^k`; the grid
/// of `base x base` tiles is ordered by Morton (Z) order and each tile is
/// stored row-major. With `base == 1` this is the fully recursive ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZMorton {
    n: usize,
    base: usize,
    /// Tiles per side; always a power of two.
    nt: usize,
}

impl ZMorton {
    /// Morton layout for an `n x n` matrix with `base x base` row-major
    /// leaf tiles. `n` is padded to `base * next_power_of_two(ceil(n/base))`.
    pub fn new(n: usize, base: usize) -> Self {
        assert!(base >= 1, "base tile must be at least 1");
        let nt = n.div_ceil(base).max(1).next_power_of_two();
        Self { n, base, nt }
    }

    /// Leaf tile size.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Leaf tiles per side (a power of two).
    pub fn tiles_per_side(&self) -> usize {
        self.nt
    }
}

impl Layout for ZMorton {
    fn n(&self) -> usize {
        self.n
    }

    fn padded_n(&self) -> usize {
        self.nt * self.base
    }

    #[inline(always)]
    fn index(&self, i: usize, j: usize) -> usize {
        let (ti, ii) = (i / self.base, i % self.base);
        let (tj, jj) = (j / self.base, j % self.base);
        morton_of(ti, tj) * self.base * self.base + ii * self.base + jj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn is_bijection<L: Layout>(l: &L) {
        let p = l.padded_n();
        let mut seen = HashSet::new();
        for i in 0..p {
            for j in 0..p {
                let idx = l.index(i, j);
                assert!(idx < l.storage_len(), "index out of range at ({i},{j})");
                assert!(seen.insert(idx), "duplicate index at ({i},{j})");
            }
        }
        assert_eq!(seen.len(), l.storage_len());
    }

    #[test]
    fn row_major_bijection() {
        is_bijection(&RowMajor::new(7));
    }

    #[test]
    fn block_layout_bijection_exact_fit() {
        is_bijection(&BlockLayout::new(8, 4));
    }

    #[test]
    fn block_layout_bijection_with_padding() {
        let l = BlockLayout::new(10, 4);
        assert_eq!(l.padded_n(), 12);
        is_bijection(&l);
    }

    #[test]
    fn morton_bijection_pow2() {
        is_bijection(&ZMorton::new(8, 2));
    }

    #[test]
    fn morton_bijection_padded() {
        let l = ZMorton::new(10, 4);
        assert_eq!(l.padded_n(), 16); // 4 * next_pow2(3)
        is_bijection(&l);
    }

    #[test]
    fn row_major_is_identity_order() {
        let l = RowMajor::new(3);
        assert_eq!(l.index(0, 0), 0);
        assert_eq!(l.index(1, 0), 3);
        assert_eq!(l.index(2, 2), 8);
    }

    #[test]
    fn bdl_blocks_are_contiguous() {
        let l = BlockLayout::new(4, 2);
        // Block (0,0) occupies indices 0..4.
        let mut idx: Vec<usize> =
            [(0, 0), (0, 1), (1, 0), (1, 1)].iter().map(|&(i, j)| l.index(i, j)).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        // Within a block the order is row-major.
        assert_eq!(l.index(0, 0), 0);
        assert_eq!(l.index(0, 1), 1);
        assert_eq!(l.index(1, 0), 2);
    }

    #[test]
    fn morton_quadrant_order_is_nw_ne_sw_se() {
        // 2x2 tiles of size 1: NW=0, NE=1, SW=2, SE=3 (Fig. 5).
        let l = ZMorton::new(2, 1);
        assert_eq!(l.index(0, 0), 0);
        assert_eq!(l.index(0, 1), 1);
        assert_eq!(l.index(1, 0), 2);
        assert_eq!(l.index(1, 1), 3);
    }

    #[test]
    fn morton_recursive_order_4x4() {
        // Classic 4x4 Z-order with unit tiles.
        let l = ZMorton::new(4, 1);
        let expected = [
            [0, 1, 4, 5],
            [2, 3, 6, 7],
            [8, 9, 12, 13],
            [10, 11, 14, 15],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(l.index(i, j), want, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn morton_leaf_tiles_row_major() {
        let l = ZMorton::new(4, 2);
        // Tile (0,0) is indices 0..4 in row-major order.
        assert_eq!(l.index(0, 0), 0);
        assert_eq!(l.index(0, 1), 1);
        assert_eq!(l.index(1, 0), 2);
        assert_eq!(l.index(1, 1), 3);
        // Tile (0,1) = Morton 1 starts at 4.
        assert_eq!(l.index(0, 2), 4);
        // Tile (1,0) = Morton 2 starts at 8.
        assert_eq!(l.index(2, 0), 8);
    }

    #[test]
    fn spread_bits_examples() {
        assert_eq!(spread_bits(0b11), 0b101);
        assert_eq!(spread_bits(0b101), 0b10001);
        assert_eq!(morton_of(1, 1), 3);
        assert_eq!(morton_of(1, 0), 2);
        assert_eq!(morton_of(0, 1), 1);
        assert_eq!(morton_of(2, 3), 0b1101);
    }

    #[test]
    fn n_1_degenerate_cases() {
        is_bijection(&RowMajor::new(1));
        is_bijection(&BlockLayout::new(1, 4));
        is_bijection(&ZMorton::new(1, 4));
    }
}
