//! A matrix coupling storage with a [`Layout`].

use crate::layouts::Layout;

/// An `n x n` matrix stored according to layout `L`.
///
/// Logical indices run over `0..n()`; the padding region (if the layout
/// pads) is reachable through [`get_padded`](Matrix::get_padded) /
/// [`set_padded`](Matrix::set_padded) and is initialised to the fill value
/// given at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix<T, L: Layout> {
    layout: L,
    data: Vec<T>,
}

impl<T: Copy, L: Layout> Matrix<T, L> {
    /// A matrix with every element (padding included) set to `fill`.
    pub fn filled(layout: L, fill: T) -> Self {
        let len = layout.storage_len();
        Self { layout, data: vec![fill; len] }
    }

    /// Build from a row-major slice of the logical `n x n` data; padding is
    /// set to `pad_fill`.
    pub fn from_row_major(layout: L, row_major: &[T], pad_fill: T) -> Self {
        let n = layout.n();
        assert_eq!(row_major.len(), n * n, "row-major data must be n*n");
        let mut m = Self::filled(layout, pad_fill);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, row_major[i * n + j]);
            }
        }
        m
    }

    /// Logical dimension.
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// Padded (storage) dimension.
    pub fn padded_n(&self) -> usize {
        self.layout.padded_n()
    }

    /// The layout.
    pub fn layout(&self) -> &L {
        &self.layout
    }

    /// Read logical element `(i, j)`; `i, j < n()`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.layout.n() && j < self.layout.n());
        self.data[self.layout.index(i, j)]
    }

    /// Write logical element `(i, j)`; `i, j < n()`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.layout.n() && j < self.layout.n());
        let idx = self.layout.index(i, j);
        self.data[idx] = v;
    }

    /// Read element `(i, j)` of the padded matrix; `i, j < padded_n()`.
    #[inline(always)]
    pub fn get_padded(&self, i: usize, j: usize) -> T {
        self.data[self.layout.index(i, j)]
    }

    /// Write element `(i, j)` of the padded matrix; `i, j < padded_n()`.
    #[inline(always)]
    pub fn set_padded(&mut self, i: usize, j: usize, v: T) {
        let idx = self.layout.index(i, j);
        self.data[idx] = v;
    }

    /// Copy the logical contents out in row-major order.
    pub fn to_row_major(&self) -> Vec<T> {
        let n = self.layout.n();
        let mut out = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                out.push(self.get(i, j));
            }
        }
        out
    }

    /// Raw storage (layout order). Exposed for the compute kernels, which
    /// index it through the layout for speed.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage (layout order).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use crate::layouts::{BlockLayout, RowMajor, ZMorton};

    use super::*;

    #[test]
    fn roundtrip_row_major() {
        let data: Vec<u32> = (0..16).collect();
        let m = Matrix::from_row_major(RowMajor::new(4), &data, 0);
        assert_eq!(m.to_row_major(), data);
    }

    #[test]
    fn roundtrip_bdl_with_padding() {
        let data: Vec<u32> = (0..25).collect();
        let m = Matrix::from_row_major(BlockLayout::new(5, 4), &data, 99);
        assert_eq!(m.padded_n(), 8);
        assert_eq!(m.to_row_major(), data);
        // Padding cells keep the fill value.
        assert_eq!(m.get_padded(7, 7), 99);
        assert_eq!(m.get_padded(0, 5), 99);
    }

    #[test]
    fn roundtrip_morton() {
        let data: Vec<u32> = (0..36).collect();
        let m = Matrix::from_row_major(ZMorton::new(6, 2), &data, 0);
        assert_eq!(m.padded_n(), 8);
        assert_eq!(m.to_row_major(), data);
    }

    #[test]
    fn set_get() {
        let mut m = Matrix::filled(BlockLayout::new(6, 2), 0u32);
        m.set(5, 3, 77);
        assert_eq!(m.get(5, 3), 77);
        assert_eq!(m.get(3, 5), 0);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn from_row_major_wrong_len() {
        Matrix::from_row_major(RowMajor::new(3), &[1u32, 2, 3], 0);
    }
}
