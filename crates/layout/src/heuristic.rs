//! Block-size selection heuristic (paper §3.1, Eq. 13).
//!
//! The paper's recipe:
//!
//! 1. Apply the 2:1 rule of thumb (Hennessy & Patterson): a direct-mapped
//!    cache of size `N` has about the same miss rate as a 2-way cache of
//!    size `N/2`. Used in reverse, a cache of associativity `a < 4` behaves
//!    like a 4-way cache of size `C / 2^(log2(4) - log2(a))`. The working
//!    set of the tiled Floyd-Warshall is three tiles, so 4-way behaviour is
//!    what eliminates cross-interference; within a tile, contiguity (BDL)
//!    eliminates self-interference.
//! 2. Pick the largest `B` with `3 · B² · d ≤ C_eff` (Eq. 13), `d` the
//!    element size in bytes.
//!
//! The paper stresses that the heuristic gives a *starting estimate* and the
//! best block size is found experimentally (ATLAS-style search), possibly at
//! the L2 rather than L1 size — the harness's ablation sweep does exactly
//! that search.

/// Outcome of the heuristic: the estimate plus the search bounds the paper
/// recommends sweeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizeChoice {
    /// The Eq. 13 estimate for this cache level.
    pub estimate: usize,
    /// Lower end of the recommended experimental sweep (half the estimate).
    pub sweep_min: usize,
    /// Upper end of the recommended sweep (twice the estimate).
    pub sweep_max: usize,
}

/// Size of an equivalent 4-way set-associative cache per the 2:1 rule.
///
/// Caches that are already at least 4-way keep their full size; 2-way
/// counts as half, direct-mapped as a quarter.
pub fn effective_cache_bytes(cache_bytes: usize, associativity: usize) -> usize {
    assert!(associativity >= 1);
    match associativity {
        1 => cache_bytes / 4,
        2..=3 => cache_bytes / 2,
        _ => cache_bytes,
    }
}

/// Largest power-of-two `B` satisfying `3 · B² · d ≤ effective cache size`
/// (powers of two keep the recursive implementation's halving exact and the
/// BDL padding modest).
pub fn select_block_size(cache_bytes: usize, associativity: usize, elem_bytes: usize) -> BlockSizeChoice {
    assert!(elem_bytes >= 1);
    let c_eff = effective_cache_bytes(cache_bytes, associativity);
    let mut b = 1usize;
    while 3 * (b * 2) * (b * 2) * elem_bytes <= c_eff {
        b *= 2;
    }
    BlockSizeChoice { estimate: b, sweep_min: (b / 2).max(1), sweep_max: b * 2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_to_one_rule() {
        assert_eq!(effective_cache_bytes(16 * 1024, 4), 16 * 1024);
        assert_eq!(effective_cache_bytes(16 * 1024, 8), 16 * 1024);
        assert_eq!(effective_cache_bytes(16 * 1024, 2), 8 * 1024);
        assert_eq!(effective_cache_bytes(16 * 1024, 1), 4 * 1024);
    }

    #[test]
    fn simplescalar_l1_estimate() {
        // 16 KB 4-way, 4-byte elements: 3·B²·4 ≤ 16384 -> B² ≤ 1365 -> B=32.
        let c = select_block_size(16 * 1024, 4, 4);
        assert_eq!(c.estimate, 32);
        assert_eq!(c.sweep_min, 16);
        assert_eq!(c.sweep_max, 64);
    }

    #[test]
    fn pentium_iii_l1_estimate() {
        // 32 KB 4-way, 4-byte elements -> B = 32 (64 would need 48 KB).
        assert_eq!(select_block_size(32 * 1024, 4, 4).estimate, 32);
    }

    #[test]
    fn direct_mapped_l2_is_discounted() {
        // 8 MB direct-mapped behaves like 2 MB 4-way: B = 256 for u32
        // (3·512²·4 = 3 MB > 2 MB).
        assert_eq!(select_block_size(8 * 1024 * 1024, 1, 4).estimate, 256);
    }

    #[test]
    fn estimate_satisfies_equation() {
        for (c, a, d) in [(16384, 4, 4), (32768, 4, 8), (1 << 20, 8, 4), (64, 1, 4)] {
            let b = select_block_size(c, a, d).estimate;
            let c_eff = effective_cache_bytes(c, a);
            assert!(3 * b * b * d <= c_eff || b == 1);
            // Maximality: doubling violates the bound.
            assert!(3 * (2 * b) * (2 * b) * d > c_eff);
        }
    }

    #[test]
    fn tiny_cache_degenerates_to_one() {
        let c = select_block_size(16, 1, 8);
        assert_eq!(c.estimate, 1);
        assert_eq!(c.sweep_min, 1);
    }
}
