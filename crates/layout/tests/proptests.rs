//! Randomized property tests for the layout crate: every layout must be a
//! bijection onto the storage range, and matrices must round-trip through
//! any layout. Cases are drawn from a seeded PRNG so runs are
//! deterministic and reproducible offline.

use cachegraph_layout::{BlockLayout, Layout, Matrix, RowMajor, ZMorton};
use cachegraph_rng::StdRng;
use std::collections::HashSet;

fn assert_bijection<L: Layout>(l: &L) {
    let p = l.padded_n();
    let mut seen = HashSet::with_capacity(p * p);
    for i in 0..p {
        for j in 0..p {
            let idx = l.index(i, j);
            assert!(idx < l.storage_len());
            assert!(seen.insert(idx), "collision at ({i}, {j})");
        }
    }
}

#[test]
fn block_layout_bijective() {
    let mut rng = StdRng::seed_from_u64(0xb1b1);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..48);
        let b = rng.gen_range(1usize..12);
        assert_bijection(&BlockLayout::new(n, b));
    }
}

#[test]
fn morton_bijective() {
    let mut rng = StdRng::seed_from_u64(0x3035);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..48);
        let base = rng.gen_range(1usize..12);
        assert_bijection(&ZMorton::new(n, base));
    }
}

#[test]
fn row_major_bijective() {
    for n in 1usize..48 {
        assert_bijection(&RowMajor::new(n));
    }
}

#[test]
fn matrix_roundtrip_bdl() {
    let mut rng = StdRng::seed_from_u64(0xbd1);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..24);
        let b = rng.gen_range(1usize..9);
        let seed = rng.next_u64();
        let data: Vec<u32> =
            (0..n * n).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u32).collect();
        let m = Matrix::from_row_major(BlockLayout::new(n, b), &data, u32::MAX);
        assert_eq!(m.to_row_major(), data);
    }
}

#[test]
fn matrix_roundtrip_morton() {
    let mut rng = StdRng::seed_from_u64(0x2015);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..24);
        let base = rng.gen_range(1usize..9);
        let seed = rng.next_u64();
        let data: Vec<u32> =
            (0..n * n).map(|i| (seed.wrapping_mul(i as u64 + 7) >> 11) as u32).collect();
        let m = Matrix::from_row_major(ZMorton::new(n, base), &data, u32::MAX);
        assert_eq!(m.to_row_major(), data);
    }
}

#[test]
fn layouts_agree_on_logical_contents() {
    let mut rng = StdRng::seed_from_u64(0xa9e5);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..20);
        let seed = rng.next_u64();
        let data: Vec<u32> = (0..n * n).map(|i| (seed ^ (i as u64 * 0x9e37_79b9)) as u32).collect();
        let rm = Matrix::from_row_major(RowMajor::new(n), &data, 0);
        let bd = Matrix::from_row_major(BlockLayout::new(n, 3), &data, 0);
        let zm = Matrix::from_row_major(ZMorton::new(n, 2), &data, 0);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(rm.get(i, j), bd.get(i, j));
                assert_eq!(rm.get(i, j), zm.get(i, j));
            }
        }
    }
}
