//! Differential test: the AST-backed lint rules must agree with tidy's
//! token-level rules on every tidy fixture for the two rules both
//! implement (`kernel-bounds`, `obs-purity`). The token rules stay in
//! tidy as the fallback for files outside the subset grammar; this test
//! keeps the two implementations from drifting on the shared corpus.

use cachegraph_analyze::{parse_file, rules};
use cachegraph_tidy::rules::{kernel_bounds, obs_purity};
use cachegraph_tidy::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_files(prefix: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../tidy/fixtures");
    let mut out: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tidy fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".rs"))
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no fixtures matched {prefix}* under {}", dir.display());
    out
}

fn diag_lines(diags: &[cachegraph_tidy::Diagnostic], rule: &str) -> BTreeSet<usize> {
    diags
        .iter()
        .map(|d| {
            assert_eq!(d.rule, rule, "unexpected rule id in {d:?}");
            d.line
        })
        .collect()
}

fn check_agreement(
    prefix: &str,
    rule: &str,
    token_rule: fn(&SourceFile) -> Vec<cachegraph_tidy::Diagnostic>,
    ast_rule: fn(&SourceFile, &cachegraph_analyze::ast::File) -> Vec<cachegraph_tidy::Diagnostic>,
) {
    for path in fixture_files(prefix) {
        let raw = std::fs::read_to_string(&path).expect("fixture reads");
        let name = path.file_name().map(PathBuf::from).unwrap_or_default();
        let sf = SourceFile::new(name.clone(), raw);
        let file = parse_file(&sf.raw)
            .unwrap_or_else(|e| panic!("{}: fixture must stay in the subset grammar: {e}", name.display()));
        let token_lines = diag_lines(&token_rule(&sf), rule);
        let ast_lines = diag_lines(&ast_rule(&sf, &file), rule);
        assert_eq!(
            token_lines,
            ast_lines,
            "{}: token rule and AST rule disagree on `{rule}` \
             (token flags lines {token_lines:?}, AST flags lines {ast_lines:?})",
            name.display()
        );
    }
}

#[test]
fn kernel_bounds_ast_rule_agrees_with_token_rule_on_all_fixtures() {
    check_agreement("bounds_", kernel_bounds::RULE, kernel_bounds::check, rules::kernel_bounds);
}

#[test]
fn obs_purity_ast_rule_agrees_with_token_rule_on_all_fixtures() {
    check_agreement("obs_", obs_purity::RULE, obs_purity::check, rules::obs_purity);
}

#[test]
fn positive_fixtures_actually_flag_something() {
    // Agreement on empty sets is vacuous; make sure the corpus still has
    // teeth on both sides.
    for (prefix, rule, token_rule) in [
        ("bounds_pos", kernel_bounds::RULE, kernel_bounds::check as fn(&SourceFile) -> _),
        ("obs_pos", obs_purity::RULE, obs_purity::check),
    ] {
        for path in fixture_files(prefix) {
            let raw = std::fs::read_to_string(&path).expect("fixture reads");
            let sf = SourceFile::new(path.file_name().map(PathBuf::from).unwrap_or_default(), raw);
            assert!(
                !token_rule(&sf).is_empty(),
                "{}: positive fixture no longer triggers `{rule}`",
                path.display()
            );
        }
    }
}
