//! Three-way differential: for one concrete plan task, the cell sets
//! the analyzer statically *infers* from the kernel's AST, the cells the
//! plan *declares*, and the cells the running kernel actually *records*
//! must all line up. This closes the evidence triangle: inference and
//! plan agree on paper, and the recorder proves the paper matches the
//! machine.
//!
//! The data is chosen dense (a-tile large, b/c zero, no `INF`) so the
//! kernel's data-dependent guards never suppress an access: every write
//! the over-approximating inference predicts really happens, making the
//! comparison exact equality, not just `recorded ⊆ inferred`.

use cachegraph_analyze::summarize_kernel_source;
use cachegraph_fw::plan::Planner;
use cachegraph_fw::{fwi_access, RecordingAccess};
use cachegraph_layout::{BlockLayout, Layout};
use std::collections::{BTreeMap, BTreeSet};

const REAL_KERNEL: &str = include_str!("../../fw/src/kernel.rs");

#[test]
fn inferred_declared_and_recorded_footprints_coincide() {
    let (n, b) = (8usize, 4usize);
    let layout = BlockLayout::new(n, b);
    let planner = Planner::new(&layout, n, b);

    // A phase-3 task has three pairwise-distinct tiles (a != b != c), so
    // reads and writes are both exercised against non-aliasing views —
    // phase-2 tasks alias c = a, which would let an a/c mix-up hide.
    let mut tasks = Vec::new();
    planner.phase3(0, &mut tasks);
    let task = *tasks
        .iter()
        .find(|t| t.a != t.b && t.a != t.c && t.b != t.c)
        .expect("phase 3 at (n=8, b=4) yields a task with distinct tiles");

    // Static leg: instantiate the inferred footprint on this task.
    let summary = summarize_kernel_source(REAL_KERNEL).expect("real kernel summarizes");
    let mut syms = BTreeMap::new();
    for p in &summary.int_params {
        syms.insert(p.clone(), b as i64);
    }
    assert_eq!(summary.view_params.len(), 3, "kernel takes views (a, b, c)");
    for (name, view) in summary.view_params.iter().zip([task.a, task.b, task.c]) {
        syms.insert(format!("{name}.offset"), view.offset as i64);
        syms.insert(format!("{name}.stride"), view.stride as i64);
    }
    let (inferred_reads, inferred_writes) =
        summary.instantiate(&syms).expect("kernel summary instantiates");

    // Plan leg: the task's declared row ranges, flattened to cells.
    let declared_writes: BTreeSet<usize> = task.write_rows(b).flatten().collect();
    let declared_reads: BTreeSet<usize> = task.read_rows(b).flatten().collect();

    // Dynamic leg: run the real kernel over a recorder. The a-tile holds
    // large finite values and b/c hold zeros, so `bik` is never INF (no
    // skipped rows) and `via = 0 < cell` relaxes every a-cell on the
    // first k-iteration (no suppressed writes).
    let mut data = vec![0; layout.storage_len()];
    for i in 0..b {
        for j in 0..b {
            data[task.a.at(i, j)] = 100;
        }
    }
    let mut rec = RecordingAccess::new(&mut data);
    fwi_access(&mut rec, task.a, task.b, task.c, b);
    let (recorded_reads, recorded_writes) = (rec.reads, rec.writes);

    assert_eq!(inferred_writes, declared_writes, "inferred vs declared writes");
    assert_eq!(inferred_reads, declared_reads, "inferred vs declared reads");
    assert_eq!(recorded_writes, declared_writes, "recorded vs declared writes");
    assert_eq!(recorded_reads, declared_reads, "recorded vs declared reads");
    // And the run did real work: every a-cell was relaxed to 0.
    assert_eq!(recorded_writes.len(), b * b);
}
