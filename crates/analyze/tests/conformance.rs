//! Tier-1 conformance gate: the real kernel's inferred footprint stays
//! inside the plan's declared footprint, and the checker itself stays
//! sensitive — a fixture with a seeded off-by-one subscript must be
//! DETECTED. The bin (`cargo run -p cachegraph-analyze`) runs the same
//! checks; this test makes them part of `cargo test` so a regression
//! cannot slip past a contributor who never runs the bin.

use cachegraph_analyze::{check_kernel_conformance, summarize_kernel_source, sweep_kernel_conformance};

const REAL_KERNEL: &str = include_str!("../../fw/src/kernel.rs");
const CLEAN_FIXTURE: &str = include_str!("../fixtures/clean_kernel.rs");
const MUTATED_FIXTURE: &str = include_str!("../fixtures/mutated_kernel.rs");

#[test]
fn real_kernel_conforms_over_the_spot_sweep() {
    let summary = summarize_kernel_source(REAL_KERNEL).expect("real kernel summarizes");
    let sweep = sweep_kernel_conformance(&summary, 10, 4);
    assert!(sweep.errors.is_empty(), "violations: {:?}", sweep.errors);
    assert!(sweep.configs >= 40, "sweep covered only {} configs", sweep.configs);
    assert!(sweep.tasks > 0);
}

#[test]
fn clean_fixture_kernel_conforms() {
    let summary = summarize_kernel_source(CLEAN_FIXTURE).expect("clean fixture summarizes");
    let report = check_kernel_conformance(&summary, 8, 4);
    assert!(report.errors.is_empty(), "clean fixture flagged: {:?}", report.errors);
    assert!(report.tasks > 0);
}

#[test]
fn seeded_off_by_one_mutation_is_detected() {
    let summary = summarize_kernel_source(MUTATED_FIXTURE).expect("mutated fixture summarizes");
    let report = check_kernel_conformance(&summary, 8, 4);
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.detail.contains("outside the declared write footprint")),
        "off-by-one write subscript was NOT detected — the checker is \
         insensitive; errors: {:?}",
        report.errors
    );
}

#[test]
fn mutated_fixture_differs_from_clean_only_in_the_subscript() {
    // Guard the fixture pair itself: if someone edits one and not the
    // other, the mutation test could pass for the wrong reason.
    let clean: Vec<&str> =
        CLEAN_FIXTURE.lines().filter(|l| !l.trim_start().starts_with("//")).collect();
    let mutated: Vec<&str> =
        MUTATED_FIXTURE.lines().filter(|l| !l.trim_start().starts_with("//")).collect();
    assert_eq!(clean.len(), mutated.len(), "fixtures drifted apart structurally");
    let diffs: Vec<(&str, &str)> = clean
        .iter()
        .zip(mutated.iter())
        .filter(|(c, m)| c != m)
        .map(|(c, m)| (*c, *m))
        .collect();
    assert_eq!(diffs.len(), 1, "expected exactly one differing line, got {diffs:?}");
    assert!(diffs[0].0.contains("self.write(a_row + j, via)"));
    assert!(diffs[0].1.contains("self.write(a_row + j + 1, via)"));
}
