//! Golden-parse gate: every kernel-marked file in the workspace must
//! parse under the analyzer's subset grammar. If a kernel file grows a
//! construct the parser does not model, this test fails loudly naming
//! the construct and line — the signal to extend the grammar *before*
//! the static footprint proof silently stops covering that file.

use cachegraph_analyze::{parse_file, rules};
use cachegraph_tidy::{find_workspace_root, walk};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("analyze crate lives inside the workspace")
}

#[test]
fn every_kernel_marked_file_parses_under_the_subset_grammar() {
    let root = workspace_root();
    let sources = walk::collect_sources(&root).expect("workspace walks");
    let mut parsed = Vec::new();
    for sf in &sources {
        if !rules::is_kernel_marked(sf) {
            continue;
        }
        match parse_file(&sf.raw) {
            Ok(file) => {
                assert!(
                    !file.functions().is_empty(),
                    "{}: kernel-marked file parsed to zero functions",
                    sf.rel_path.display()
                );
                parsed.push(sf.rel_path.clone());
            }
            Err(e) => panic!(
                "{}: kernel-marked file no longer parses under the analyzer's \
                 subset grammar: {e}\nExtend crates/analyze/src/parse.rs (and the \
                 footprint walker if the construct can carry accesses) before \
                 shipping this kernel change.",
                sf.rel_path.display()
            ),
        }
    }
    // The two files the footprint proof depends on must both be present;
    // losing a marker would silently drop them from every static check.
    for expected in ["crates/fw/src/kernel.rs", "crates/layout/src/layouts.rs"] {
        assert!(
            parsed.iter().any(|p| p == Path::new(expected)),
            "{expected} is no longer kernel-marked (parsed set: {parsed:?})"
        );
    }
}

#[test]
fn kernel_marked_files_pass_the_ast_lint_rules() {
    let root = workspace_root();
    let sources = walk::collect_sources(&root).expect("workspace walks");
    for sf in &sources {
        if !rules::is_kernel_marked(sf) {
            continue;
        }
        let file = parse_file(&sf.raw).expect("covered by the golden-parse test");
        let mut diags = rules::kernel_bounds(sf, &file);
        diags.extend(rules::obs_purity(sf, &file));
        assert!(
            diags.is_empty(),
            "{}: AST lint diagnostics on a committed kernel file: {diags:?}",
            sf.rel_path.display()
        );
    }
}
