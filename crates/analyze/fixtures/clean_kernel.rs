// Fixture: a faithful copy of the FWI kernel's loop shape (see
// `crates/fw/src/kernel.rs`). Never compiled — parsed and checked by
// `cachegraph-analyze`'s sensitivity self-test, where it must CONFORM.

trait Cells {
    fn read(&mut self, idx: usize) -> u32;

    fn write(&mut self, idx: usize, v: u32);

    fn fwi_block(&mut self, a: View, b: View, c: View, size: usize) {
        for k in 0..size {
            for i in 0..size {
                let bik = self.read(b.at(i, k));
                if bik == INF {
                    continue;
                }
                let c_row = c.at(k, 0);
                let a_row = a.at(i, 0);
                for j in 0..size {
                    let via = bik.saturating_add(self.read(c_row + j));
                    let cell = self.read(a_row + j);
                    if via < cell {
                        self.write(a_row + j, via);
                    }
                }
            }
        }
    }
}
