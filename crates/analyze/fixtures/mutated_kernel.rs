// Fixture: the FWI kernel with a SEEDED DEFECT — the written subscript
// is off by one (`a_row + j + 1`), so the last column of every row
// escapes the task's declared write footprint. Never compiled — parsed
// and checked by `cachegraph-analyze`'s sensitivity self-test, where
// the defect must be DETECTED.

trait Cells {
    fn read(&mut self, idx: usize) -> u32;

    fn write(&mut self, idx: usize, v: u32);

    fn fwi_block(&mut self, a: View, b: View, c: View, size: usize) {
        for k in 0..size {
            for i in 0..size {
                let bik = self.read(b.at(i, k));
                if bik == INF {
                    continue;
                }
                let c_row = c.at(k, 0);
                let a_row = a.at(i, 0);
                for j in 0..size {
                    let via = bik.saturating_add(self.read(c_row + j));
                    let cell = self.read(a_row + j);
                    if via < cell {
                        self.write(a_row + j + 1, via);
                    }
                }
            }
        }
    }
}
