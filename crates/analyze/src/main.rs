//! Static-analysis driver: `cargo run -p cachegraph-analyze`.
//!
//! Runs the full pre-execution pass over the workspace:
//!
//! 1. **Golden parse** — every kernel-marked file (`// tidy: kernel`)
//!    must parse under the subset grammar; drift fails loudly naming
//!    the unsupported construct and line.
//! 2. **AST lint rules** — `kernel-bounds` and `obs-purity` re-checked
//!    structurally over the parsed trees.
//! 3. **Footprint conformance** — the FWI kernel's statically inferred
//!    access footprint is instantiated over every task of every phase
//!    of an `(n, b)` plan sweep and proven `⊆` the plan's declared
//!    footprint, then per-phase disjointness is re-proven from the
//!    inferred footprints alone.
//! 4. **Mutation sensitivity** — a fixture kernel with a seeded
//!    off-by-one subscript must be *detected*, and a faithful fixture
//!    copy must pass, or the checker itself is broken.
//!
//! `--sweep` widens step 3 to the full `n <= 20`, `b <= 6` grid (120
//! configurations — what CI runs in release). Exit codes: 0 clean,
//! 1 violation (or an insensitive checker), 2 usage error.

use std::process::ExitCode;

use cachegraph_analyze::conform::{check_kernel_conformance, sweep_kernel_conformance};
use cachegraph_analyze::{parse_file, rules, summarize_kernel_source};
use cachegraph_tidy::{find_workspace_root, walk};

/// Full-sweep ceiling (`--sweep`), matching `cachegraph-check`.
const SWEEP_N: usize = 20;
const SWEEP_B: usize = 6;
/// Default spot-sweep ceiling (fast enough for a debug run).
const SPOT_N: usize = 10;
const SPOT_B: usize = 4;

/// Fixture with the exact loop shape of the real FWI kernel.
const CLEAN_FIXTURE: &str = include_str!("../fixtures/clean_kernel.rs");
/// The same fixture with a seeded off-by-one in the written subscript.
const MUTATED_FIXTURE: &str = include_str!("../fixtures/mutated_kernel.rs");

struct Args {
    sweep: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { sweep: false };
    for flag in std::env::args().skip(1) {
        match flag.as_str() {
            "--sweep" => args.sweep = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("cachegraph-analyze: {msg}");
            }
            eprintln!("usage: cachegraph-analyze [--sweep]");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_default();
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("cachegraph-analyze: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };
    let sources = match walk::collect_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cachegraph-analyze: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut failed = false;

    // 1 + 2. Golden parse and AST rules over every kernel-marked file.
    let mut kernels = Vec::new();
    let mut marked = 0usize;
    for sf in &sources {
        if !rules::is_kernel_marked(sf) {
            continue;
        }
        marked += 1;
        let file = match parse_file(&sf.raw) {
            Ok(f) => f,
            Err(e) => {
                failed = true;
                println!("parse: {}: FAILED: {e}", sf.rel_path.display());
                continue;
            }
        };
        println!("parse: {}: ok ({} fns)", sf.rel_path.display(), file.functions().len());
        let mut diags = rules::kernel_bounds(sf, &file);
        diags.extend(rules::obs_purity(sf, &file));
        for d in &diags {
            failed = true;
            println!("rule: {d}");
        }
        if let Ok(summary) = summarize_kernel_source(&sf.raw) {
            kernels.push((sf.rel_path.clone(), summary));
        }
    }
    if marked == 0 {
        failed = true;
        println!("parse: no kernel-marked files found under {}", root.display());
    }

    // 3. Footprint inference + plan conformance sweep.
    match kernels.as_slice() {
        [(path, summary)] => {
            let (max_n, max_b) = if args.sweep { (SWEEP_N, SWEEP_B) } else { (SPOT_N, SPOT_B) };
            for note in &summary.notes {
                println!("infer: {}: note: {note}", path.display());
            }
            let sweep = sweep_kernel_conformance(summary, max_n, max_b);
            if sweep.errors.is_empty() {
                println!(
                    "conform: {}: {} access sites over {} configs ({} tasks): \
                     inferred within declared, phases disjoint",
                    path.display(),
                    summary.accesses.len(),
                    sweep.configs,
                    sweep.tasks,
                );
            } else {
                failed = true;
                println!(
                    "conform: {}: {} VIOLATIONS over {} configs",
                    path.display(),
                    sweep.errors.len(),
                    sweep.configs
                );
                for e in sweep.errors.iter().take(5) {
                    println!("  {e}");
                }
            }
        }
        [] => {
            failed = true;
            println!("conform: no `fwi_block` kernel found to analyze");
        }
        many => {
            failed = true;
            println!(
                "conform: {} kernel files define `fwi_block`; expected exactly one",
                many.len()
            );
        }
    }

    // 4. Sensitivity: the clean fixture must pass, the mutated one must
    //    be detected.
    match summarize_kernel_source(CLEAN_FIXTURE) {
        Ok(s) => {
            let report = check_kernel_conformance(&s, 8, 4);
            if let Some(e) = report.errors.first() {
                failed = true;
                println!("fixture: clean kernel reported as violating: {e}");
            } else {
                println!("fixture: clean kernel copy conforms on (n=8, b=4)");
            }
        }
        Err(e) => {
            failed = true;
            println!("fixture: clean kernel did not summarize: {e}");
        }
    }
    match summarize_kernel_source(MUTATED_FIXTURE) {
        Ok(s) => {
            let report = check_kernel_conformance(&s, 8, 4);
            if let Some(e) = report.errors.first() {
                println!("mutation: off-by-one subscript seeded: detected ({e})");
            } else {
                failed = true;
                println!("mutation: off-by-one subscript NOT detected — the checker is insensitive");
            }
        }
        Err(e) => {
            failed = true;
            println!("mutation: fixture did not summarize: {e}");
        }
    }

    if failed {
        println!("cachegraph-analyze: FAILED");
        ExitCode::FAILURE
    } else {
        println!("cachegraph-analyze: all checks passed");
        ExitCode::SUCCESS
    }
}
