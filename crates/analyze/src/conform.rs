//! Plan conformance: prove the *inferred* kernel footprint is covered
//! by the *declared* plan footprint, for every task of every phase,
//! across an `(n, b)` sweep — then re-prove phase disjointness from the
//! inferred footprints alone.
//!
//! The chain of custody this closes: [`cachegraph_fw::plan::Planner`]
//! declares per-task footprints (`write_rows`/`read_rows`), the
//! `cachegraph-check` oracle proves those declared footprints disjoint,
//! and the dynamic recording test proves one execution stayed inside
//! them. What was missing is that the kernel *source* — under any
//! input, not just the executions we happened to record — stays inside
//! the declared ranges. [`check_kernel_conformance`] instantiates the
//! statically inferred access polynomials over each concrete task's
//! views and checks `inferred ⊆ declared`; because the inference
//! over-approximates (both `if` branches, no guard pruning), this
//! subset proves every real execution conforms. The inferred footprints
//! are then fed through the oracle's own set arithmetic
//! ([`cachegraph_check::check_phase_footprints`]), re-proving the
//! driver's disjointness claims with the plan's declarations out of the
//! trusted base entirely.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cachegraph_check::check_phase_footprints;
use cachegraph_fw::plan::{Planner, TileTask};
use cachegraph_layout::BlockLayout;

use crate::footprint::{summarize_fn, FnSummary};
use crate::parse::parse_file;

/// One conformance failure.
#[derive(Clone, Debug)]
pub struct ConformanceError {
    /// Logical matrix dimension (0 for shape errors independent of a
    /// configuration).
    pub n: usize,
    /// Tile size.
    pub b: usize,
    /// Block iteration.
    pub t: usize,
    /// `"phase1"` / `"phase2"` / `"phase3"`, or `"kernel"` for errors in
    /// the kernel summary itself.
    pub phase: &'static str,
    /// Index of the offending task within its phase, if applicable.
    pub task: Option<usize>,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} b={} t={} {}", self.n, self.b, self.t, self.phase)?;
        if let Some(i) = self.task {
            write!(f, " task {i}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

fn kernel_err(detail: String) -> ConformanceError {
    ConformanceError { n: 0, b: 0, t: 0, phase: "kernel", task: None, detail }
}

/// Parse kernel source and summarize its `fwi_block`.
///
/// A kernel file may define `fwi_block` more than once (the traced
/// trait default and a slice-based override); the analysis target is
/// the one that routes cell traffic through `self.read`/`self.write` —
/// i.e. the unique summary with access sites.
pub fn summarize_kernel_source(src: &str) -> Result<FnSummary, ConformanceError> {
    let file = parse_file(src).map_err(|e| kernel_err(format!("parse error: {e}")))?;
    let mut candidates: Vec<FnSummary> = file
        .functions()
        .into_iter()
        .filter(|f| f.name == "fwi_block" && !f.cfg_test)
        .map(summarize_fn)
        .filter(|s| !s.accesses.is_empty() || !s.unresolved.is_empty())
        .collect();
    match candidates.len() {
        0 => Err(kernel_err(
            "no `fwi_block` with `self.read`/`self.write` access sites found".to_string(),
        )),
        1 => Ok(candidates.remove(0)),
        k => Err(kernel_err(format!(
            "{k} `fwi_block` definitions with access sites; cannot pick the analysis target"
        ))),
    }
}

/// Outcome of one `(n, b)` conformance check.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Tasks whose footprints were instantiated and checked.
    pub tasks: usize,
    /// Every failure found (empty = conformance proven).
    pub errors: Vec<ConformanceError>,
}

/// Outcome of a full sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// `(n, b)` configurations checked.
    pub configs: usize,
    /// Tasks checked across all configurations.
    pub tasks: usize,
    /// Every failure found (empty = conformance proven for the sweep).
    pub errors: Vec<ConformanceError>,
}

/// Symbol bindings for one concrete task: each `View` parameter's
/// `offset`/`stride` from the corresponding [`TileTask`] operand (in
/// declaration order: written tile, then the two read operands), and
/// the integer size parameter bound to the tile size.
fn task_syms(
    summary: &FnSummary,
    task: &TileTask,
    b: usize,
) -> Result<BTreeMap<String, i64>, String> {
    if summary.view_params.len() != 3 {
        return Err(format!(
            "expected 3 `View` parameters (a, b, c), found {:?}",
            summary.view_params
        ));
    }
    if summary.int_params.len() != 1 {
        return Err(format!(
            "expected 1 `usize` parameter (size), found {:?}",
            summary.int_params
        ));
    }
    let mut syms = BTreeMap::new();
    for (p, v) in summary.view_params.iter().zip([task.a, task.b, task.c]) {
        let off = i64::try_from(v.offset).map_err(|_| format!("view offset {} overflows", v.offset))?;
        let st = i64::try_from(v.stride).map_err(|_| format!("view stride {} overflows", v.stride))?;
        syms.insert(format!("{p}.offset"), off);
        syms.insert(format!("{p}.stride"), st);
    }
    for p in &summary.int_params {
        syms.insert(p.clone(), i64::try_from(b).map_err(|_| "tile size overflows".to_string())?);
    }
    Ok(syms)
}

/// Instantiate and check one task; returns the inferred `(reads,
/// writes)` for the phase-level disjointness re-proof.
#[allow(clippy::too_many_arguments)]
fn check_task(
    summary: &FnSummary,
    task: &TileTask,
    n: usize,
    b: usize,
    t: usize,
    phase: &'static str,
    idx: usize,
    errors: &mut Vec<ConformanceError>,
) -> (BTreeSet<usize>, BTreeSet<usize>) {
    let mut fail = |detail: String| {
        errors.push(ConformanceError { n, b, t, phase, task: Some(idx), detail });
    };
    let syms = match task_syms(summary, task, b) {
        Ok(s) => s,
        Err(e) => {
            fail(e);
            return Default::default();
        }
    };
    let (reads, writes) = match summary.instantiate(&syms) {
        Ok(fp) => fp,
        Err(e) => {
            fail(format!("line {}: {}", e.line, e.msg));
            return Default::default();
        }
    };
    let declared_w: BTreeSet<usize> = task.write_rows(b).flatten().collect();
    let declared_r: BTreeSet<usize> = task.read_rows(b).flatten().collect();
    if let Some(&cell) = writes.difference(&declared_w).next() {
        fail(format!(
            "kernel may write cell {cell}, outside the declared write footprint \
             (inferred {} writes, declared {})",
            writes.len(),
            declared_w.len()
        ));
    }
    if let Some(&cell) = reads.difference(&declared_r).next() {
        fail(format!(
            "kernel may read cell {cell}, outside the declared read footprint \
             (inferred {} reads, declared {})",
            reads.len(),
            declared_r.len()
        ));
    }
    (reads, writes)
}

/// Prove `inferred ⊆ declared` for every task of every phase of one
/// `(n, b)` tiling, and re-prove per-phase disjointness from the
/// inferred footprints. Stops after the first block iteration that
/// produces errors (one witness per configuration is enough).
pub fn check_kernel_conformance(summary: &FnSummary, n: usize, b: usize) -> ConformanceReport {
    let mut errors = Vec::new();
    if let Some((line, msg)) = summary.unresolved.first() {
        errors.push(kernel_err(format!("line {line}: unresolved access site: {msg}")));
        return ConformanceReport { tasks: 0, errors };
    }
    if summary.accesses.is_empty() {
        errors.push(kernel_err(
            "kernel summary has no access sites; conformance would be vacuous".to_string(),
        ));
        return ConformanceReport { tasks: 0, errors };
    }
    let layout = BlockLayout::new(n, b);
    let planner = Planner::new(&layout, n, b);
    let mut tasks_checked = 0;
    let mut buf = Vec::new();
    for t in 0..planner.real_tiles() {
        let diag = planner.phase1(t);
        check_task(summary, &diag, n, b, t, "phase1", 0, &mut errors);
        tasks_checked += 1;
        for phase in ["phase2", "phase3"] {
            if phase == "phase2" {
                planner.phase2(t, &mut buf);
            } else {
                planner.phase3(t, &mut buf);
            }
            let inferred: Vec<(BTreeSet<usize>, BTreeSet<usize>)> = buf
                .iter()
                .enumerate()
                .map(|(i, task)| check_task(summary, task, n, b, t, phase, i, &mut errors))
                .collect();
            tasks_checked += inferred.len();
            let mut viols = Vec::new();
            check_phase_footprints(n, b, t, phase, &inferred, &mut viols);
            for v in viols {
                errors.push(ConformanceError {
                    n,
                    b,
                    t,
                    phase,
                    task: Some(v.writer),
                    detail: format!("inferred footprints break disjointness: {v}"),
                });
            }
        }
        if !errors.is_empty() {
            break;
        }
    }
    ConformanceReport { tasks: tasks_checked, errors }
}

/// [`check_kernel_conformance`] over every `(n, b)` with
/// `1 <= n <= max_n`, `1 <= b <= max_b` — the same grid as the
/// `cachegraph-check` footprint sweep.
pub fn sweep_kernel_conformance(summary: &FnSummary, max_n: usize, max_b: usize) -> SweepOutcome {
    let mut out = SweepOutcome { configs: 0, tasks: 0, errors: Vec::new() };
    for n in 1..=max_n {
        for b in 1..=max_b {
            out.configs += 1;
            let report = check_kernel_conformance(summary, n, b);
            out.tasks += report.tasks;
            out.errors.extend(report.errors);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL_SRC: &str = include_str!("../../fw/src/kernel.rs");

    #[test]
    fn real_kernel_summary_has_the_expected_shape() {
        let s = summarize_kernel_source(KERNEL_SRC).expect("kernel summarizes");
        assert_eq!(s.view_params, ["a", "b", "c"]);
        assert_eq!(s.int_params, ["size"]);
        assert!(s.unresolved.is_empty(), "{:?}", s.unresolved);
        // b[i][k], c[k][j], a[i][j] reads and the a[i][j] write.
        assert_eq!(s.accesses.len(), 4, "{:?}", s.accesses);
    }

    #[test]
    fn real_kernel_conforms_on_spot_checks() {
        let s = summarize_kernel_source(KERNEL_SRC).expect("kernel summarizes");
        for (n, b) in [(1, 1), (4, 2), (8, 4), (9, 3), (12, 4), (17, 5)] {
            let report = check_kernel_conformance(&s, n, b);
            assert!(
                report.errors.is_empty(),
                "n={n} b={b}: {}",
                report.errors[0]
            );
            assert!(report.tasks > 0);
        }
    }

    #[test]
    fn real_kernel_conforms_over_a_small_sweep() {
        let s = summarize_kernel_source(KERNEL_SRC).expect("kernel summarizes");
        let sweep = sweep_kernel_conformance(&s, 10, 4);
        assert_eq!(sweep.configs, 40);
        assert!(sweep.errors.is_empty(), "{}", sweep.errors[0]);
    }

    #[test]
    fn off_by_one_subscript_breaks_conformance() {
        // The same kernel with the written column shifted by one: the
        // last column of each row escapes the declared tile.
        let src = "\
            trait T {\n\
                fn read(&mut self, idx: usize) -> u32;\n\
                fn write(&mut self, idx: usize, v: u32);\n\
                fn fwi_block(&mut self, a: View, b: View, c: View, size: usize) {\n\
                    for k in 0..size {\n\
                        for i in 0..size {\n\
                            let v = self.read(b.at(i, k));\n\
                            for j in 0..size {\n\
                                self.write(a.at(i, j) + 1, v);\n\
                            }\n\
                        }\n\
                    }\n\
                }\n\
            }\n";
        let s = summarize_kernel_source(src).expect("summarizes");
        let report = check_kernel_conformance(&s, 8, 4);
        assert!(
            report.errors.iter().any(|e| e.detail.contains("outside the declared write")),
            "mutation must be detected: {:?}",
            report.errors
        );
    }

    #[test]
    fn summary_without_access_sites_is_rejected() {
        let src = "fn fwi_block(&mut self, a: View, b: View, c: View, size: usize) {}\n";
        assert!(summarize_kernel_source(src).is_err(), "vacuous kernel must be rejected");
    }
}
