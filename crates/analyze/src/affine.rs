//! The symbolic domain for subscript inference: multivariate
//! polynomials over loop induction variables and named symbols.
//!
//! A subscript like `a.offset + i * a.stride + j` evaluates to a
//! [`Poly`] with monomials `{a.offset: 1, i·a.stride: 1, j: 1}`. Two
//! atom kinds are distinguished: [`Atom::IVar`] for loop induction
//! variables (instantiated over their inferred intervals when a
//! footprint is enumerated) and [`Atom::Sym`] for opaque-but-fixed
//! quantities (the `size` parameter, a view's `offset`/`stride`)
//! substituted from a concrete task when conformance is checked.
//!
//! All arithmetic is checked: coefficient overflow degrades to `None`,
//! which the interpreter treats as "not affine" — over-approximation
//! stays sound because unevaluable subscripts are reported, never
//! silently dropped.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One multiplicative atom of a monomial.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Atom {
    /// A loop induction variable, by name.
    IVar(String),
    /// A named opaque symbol (`size`, `a.offset`, `a.stride`, …).
    Sym(String),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::IVar(n) | Atom::Sym(n) => write!(f, "{n}"),
        }
    }
}

/// A polynomial: map from monomial (sorted multiset of atoms; the empty
/// monomial is the constant term) to coefficient. Always normalized —
/// zero coefficients are removed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Poly {
    terms: BTreeMap<Vec<Atom>, i64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { terms: BTreeMap::new() }
    }

    /// A constant.
    pub fn constant(c: i64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Vec::new(), c);
        }
        Self { terms }
    }

    /// A single atom with coefficient 1.
    pub fn atom(a: Atom) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(vec![a], 1);
        Self { terms }
    }

    /// Shorthand: an induction variable.
    pub fn ivar(name: &str) -> Self {
        Self::atom(Atom::IVar(name.to_string()))
    }

    /// Shorthand: a named symbol.
    pub fn sym(name: &str) -> Self {
        Self::atom(Atom::Sym(name.to_string()))
    }

    /// The constant value, if this polynomial is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Vec::new()).copied(),
            _ => None,
        }
    }

    fn insert_term(terms: &mut BTreeMap<Vec<Atom>, i64>, mono: Vec<Atom>, c: i64) -> Option<()> {
        let entry = terms.entry(mono).or_insert(0);
        *entry = entry.checked_add(c)?;
        Some(())
    }

    fn normalized(mut self) -> Self {
        self.terms.retain(|_, c| *c != 0);
        self
    }

    /// `self + other`; `None` on coefficient overflow.
    pub fn add(&self, other: &Poly) -> Option<Poly> {
        let mut terms = self.terms.clone();
        for (mono, &c) in &other.terms {
            Self::insert_term(&mut terms, mono.clone(), c)?;
        }
        Some(Poly { terms }.normalized())
    }

    /// `self - other`; `None` on coefficient overflow.
    pub fn sub(&self, other: &Poly) -> Option<Poly> {
        let mut terms = self.terms.clone();
        for (mono, &c) in &other.terms {
            Self::insert_term(&mut terms, mono.clone(), c.checked_neg()?)?;
        }
        Some(Poly { terms }.normalized())
    }

    /// `self * other`; `None` on coefficient overflow.
    pub fn mul(&self, other: &Poly) -> Option<Poly> {
        let mut terms = BTreeMap::new();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let mut mono: Vec<Atom> = ma.iter().chain(mb.iter()).cloned().collect();
                mono.sort();
                Self::insert_term(&mut terms, mono, ca.checked_mul(cb)?)?;
            }
        }
        Some(Poly { terms }.normalized())
    }

    /// Every induction variable appearing in this polynomial.
    pub fn ivars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for mono in self.terms.keys() {
            for a in mono {
                if let Atom::IVar(n) = a {
                    out.insert(n.as_str());
                }
            }
        }
        out
    }

    /// Evaluate with `lookup` supplying a value for every atom.
    /// `None` if any atom is unbound or arithmetic overflows.
    pub fn eval(&self, lookup: &impl Fn(&Atom) -> Option<i64>) -> Option<i64> {
        let mut total: i64 = 0;
        for (mono, &c) in &self.terms {
            let mut v: i64 = c;
            for a in mono {
                v = v.checked_mul(lookup(a)?)?;
            }
            total = total.checked_add(v)?;
        }
        Some(total)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (mono, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if mono.is_empty() {
                write!(f, "{c}")?;
                continue;
            }
            if *c != 1 {
                write!(f, "{c}*")?;
            }
            let names: Vec<String> = mono.iter().map(|a| a.to_string()).collect();
            write!(f, "{}", names.join("*"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Poly {
        Poly::sym(s)
    }

    #[test]
    fn affine_subscript_builds_and_evaluates() {
        // offset + i * stride + j
        let sub = p("a.offset")
            .add(&Poly::ivar("i").mul(&p("a.stride")).unwrap())
            .unwrap()
            .add(&Poly::ivar("j"))
            .unwrap();
        assert_eq!(sub.ivars().into_iter().collect::<Vec<_>>(), vec!["i", "j"]);
        let v = sub.eval(&|a| match a {
            Atom::Sym(n) if n == "a.offset" => Some(100),
            Atom::Sym(n) if n == "a.stride" => Some(8),
            Atom::IVar(n) if n == "i" => Some(2),
            Atom::IVar(n) if n == "j" => Some(3),
            _ => None,
        });
        assert_eq!(v, Some(100 + 2 * 8 + 3));
    }

    #[test]
    fn normalization_cancels_terms() {
        let x = Poly::ivar("x");
        let z = x.sub(&x).unwrap();
        assert_eq!(z, Poly::zero());
        assert_eq!(z.as_const(), Some(0));
    }

    #[test]
    fn products_sort_monomials() {
        let ab = Poly::ivar("a").mul(&Poly::ivar("b")).unwrap();
        let ba = Poly::ivar("b").mul(&Poly::ivar("a")).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn overflow_degrades_to_none() {
        let big = Poly::constant(i64::MAX);
        assert!(big.add(&Poly::constant(1)).is_none());
        assert!(big.mul(&Poly::constant(2)).is_none());
    }

    #[test]
    fn unbound_atom_fails_eval() {
        let s = p("size");
        assert_eq!(s.eval(&|_| None), None);
        assert_eq!(Poly::constant(7).eval(&|_| None), Some(7));
    }

    #[test]
    fn display_is_readable() {
        let sub = p("off").add(&Poly::ivar("i").mul(&p("st")).unwrap()).unwrap();
        let txt = sub.to_string();
        assert!(txt.contains("off") && txt.contains("i*st"), "{txt}");
    }
}
