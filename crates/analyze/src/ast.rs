//! The abstract syntax tree for the Rust subset the kernels are written
//! in.
//!
//! Only what the footprint interpreter and the AST-backed lint rules
//! need survives into the tree: function items with named/typed
//! parameters, the statement forms kernel bodies use (`let`, `for`
//! range loops, expression statements), and a full expression grammar
//! (calls, method calls, field access, indexing, ranges, struct
//! literals, `if`/`match`/closures as walked nodes). Types, generics,
//! attributes and macro bodies are consumed token-wise at parse time
//! and appear here only as captured text where a consumer cares
//! (parameter types, attribute text, `use` paths).
//!
//! Every node carries the 1-based source line it starts on, so both the
//! conformance checker and the lint rules report real locations.

/// A parsed source file: the flat list of items, with items inside
/// `mod`/`impl`/`trait` blocks recursively included.
#[derive(Clone, Debug)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item. Non-function items keep just enough structure for the lint
/// rules (their kind and, for `use`, the path segments).
#[derive(Clone, Debug)]
pub enum Item {
    /// A function with a body.
    Fn(Fn),
    /// `use a::b::c;` — segments are the identifier components.
    Use {
        /// Identifier segments of the path (globs and braces skipped).
        segments: Vec<String>,
        /// 1-based start line.
        line: usize,
        /// Inside a `#[cfg(test)]` subtree?
        cfg_test: bool,
    },
    /// `mod name { … }` / `impl … { … }` / `trait … { … }`: the items of
    /// the block, parsed recursively.
    Container {
        /// `mod` / `impl` / `trait`.
        kind: &'static str,
        /// Contained items.
        items: Vec<Item>,
        /// 1-based start line.
        line: usize,
    },
    /// Any other item (struct, enum, const, static, type, …), consumed
    /// without structure.
    Other {
        /// Leading keyword, e.g. `struct`.
        kind: String,
        /// 1-based start line.
        line: usize,
    },
}

/// A function item.
#[derive(Clone, Debug)]
pub struct Fn {
    /// Function name.
    pub name: String,
    /// Parameters in order (`self` receivers included, with an empty
    /// type for bare `self`/`&self`/`&mut self`).
    pub params: Vec<Param>,
    /// Body block.
    pub body: Block,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inside a `#[cfg(test)]` subtree (own attribute or an enclosing
    /// container's)?
    pub cfg_test: bool,
}

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`self` for receivers; destructuring patterns are
    /// flattened to `_`).
    pub name: String,
    /// The declared type, as the joined token text (e.g. `View`,
    /// `&mut [Weight]`). Empty for receivers without an explicit type.
    pub ty: String,
}

/// A `{ … }` block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Statements in order. A trailing expression without `;` appears
    /// as [`Stmt::Expr`].
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: usize,
}

/// One statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let <pat>(: ty)? (= expr)?;`
    Let {
        /// Bound pattern.
        pat: Pat,
        /// Initializer, if present.
        init: Option<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// `for <pat> in <expr> { … }`
    For {
        /// Loop pattern.
        pat: Pat,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: usize,
    },
    /// `while <expr> { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: usize,
    },
    /// `loop { … }`
    Loop {
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: usize,
    },
    /// Expression statement terminated by `;`.
    Semi(Expr),
    /// Block-tail expression (no `;`) — also used for `if`/`match`/block
    /// statements in statement position.
    Expr(Expr),
    /// `return (expr)?;`
    Return(Option<Expr>, usize),
    /// `break;` / `continue;` (labels and break values not supported).
    BreakContinue(usize),
    /// An item nested in a block (e.g. a local `fn`), consumed without
    /// structure.
    Item(usize),
}

/// A binding pattern. Only the shapes kernel code uses are structured;
/// `ref`/`mut`/`&` prefixes are stripped.
#[derive(Clone, Debug)]
pub enum Pat {
    /// Single identifier.
    Ident(String),
    /// Tuple of sub-patterns, e.g. `(bi, ii)`.
    Tuple(Vec<Pat>),
    /// `_` or any unsupported pattern shape.
    Wild,
}

impl Pat {
    /// Every identifier bound by this pattern.
    pub fn idents(&self) -> Vec<&str> {
        match self {
            Pat::Ident(s) => vec![s.as_str()],
            Pat::Tuple(ps) => ps.iter().flat_map(|p| p.idents()).collect(),
            Pat::Wild => Vec::new(),
        }
    }
}

/// An expression: a kind plus its 1-based start line.
#[derive(Clone, Debug)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// 1-based line of the first token.
    pub line: usize,
}

/// Binary operator classes. Everything the affine domain cannot model
/// still round-trips through here so walkers see both operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`, `|`, `^`, `<<`, `>>`
    Bit,
    /// `==`, `!=`, `<`, `<=`, `>`, `>=`
    Cmp,
    /// `&&`, `||`
    Logic,
}

/// Expression kinds.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer literal (value `None` when it overflows `i64`).
    Int(Option<i64>),
    /// Any other literal (string, char, float, `true`/`false`).
    Lit,
    /// A plain identifier.
    Ident(String),
    /// A `::`-separated path with at least two segments.
    Path(Vec<String>),
    /// Unary `-`, `!` or `*` applied to an operand.
    Unary(Box<Expr>),
    /// `&expr` / `&mut expr`.
    Ref(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator class.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs = rhs`.
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `lhs op= rhs`.
    CompoundAssign {
        /// Underlying operator class.
        op: BinOp,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `callee(args…)`.
    Call {
        /// Called expression (an [`ExprKind::Ident`] or
        /// [`ExprKind::Path`] in kernel code).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.method(args…)` (turbofish consumed at parse time).
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.field` (including numeric tuple fields).
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name (or tuple index text).
        name: String,
    },
    /// `recv[index]`.
    Index {
        /// Indexed expression.
        recv: Box<Expr>,
        /// Index expression (possibly a range).
        index: Box<Expr>,
    },
    /// `lo..hi`, `lo..=hi`, with either side optional.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// `..=` rather than `..`.
        inclusive: bool,
    },
    /// `if cond { … } (else …)?` — an `else if` chain appears as an
    /// else block whose single statement is the next `if`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then branch.
        then: Block,
        /// Else branch.
        els: Option<Block>,
    },
    /// `match scrutinee { pat => expr, … }` — patterns are consumed at
    /// parse time; only the arm expressions survive.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arm bodies in order.
        arms: Vec<Expr>,
    },
    /// A block in expression position.
    Block(Block),
    /// `(e)` or `(a, b, …)`; one element without a trailing comma is a
    /// parenthesised expression.
    Tuple(Vec<Expr>),
    /// `[a, b, …]` or `[elem; len]` array literal.
    Array(Vec<Expr>),
    /// `Path { field: expr, … }` struct literal.
    StructLit {
        /// Struct path segments.
        path: Vec<String>,
        /// `(name, value)` pairs; shorthand fields get an
        /// [`ExprKind::Ident`] value of the same name.
        fields: Vec<(String, Expr)>,
    },
    /// `expr as Type` — the type is consumed at parse time.
    Cast(Box<Expr>),
    /// `name!(…)` / `name![…]` / `name!{…}` — the body is consumed.
    Macro {
        /// Macro name.
        name: String,
    },
    /// `|params| body` / `move |params| body` — parameters are consumed;
    /// the body survives.
    Closure(Box<Expr>),
    /// `expr?`.
    Try(Box<Expr>),
}

impl Expr {
    /// Walk this expression and every sub-expression (pre-order),
    /// including the statements of nested blocks.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Int(_) | ExprKind::Lit | ExprKind::Ident(_) | ExprKind::Path(_) => {}
            ExprKind::Macro { .. } => {}
            ExprKind::Unary(e)
            | ExprKind::Ref(e)
            | ExprKind::Cast(e)
            | ExprKind::Closure(e)
            | ExprKind::Try(e) => e.walk(f),
            ExprKind::Binary { lhs, rhs, .. }
            | ExprKind::Assign { lhs, rhs }
            | ExprKind::CompoundAssign { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Call { callee, args } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Field { recv, .. } => recv.walk(f),
            ExprKind::Index { recv, index } => {
                recv.walk(f);
                index.walk(f);
            }
            ExprKind::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    e.walk(f);
                }
                if let Some(e) = hi {
                    e.walk(f);
                }
            }
            ExprKind::If { cond, then, els } => {
                cond.walk(f);
                then.walk_exprs(f);
                if let Some(b) = els {
                    b.walk_exprs(f);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                scrutinee.walk(f);
                for a in arms {
                    a.walk(f);
                }
            }
            ExprKind::Block(b) => b.walk_exprs(f),
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
        }
    }
}

impl Block {
    /// Walk every expression in this block (pre-order), recursing into
    /// nested blocks and loop bodies.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        for s in &self.stmts {
            match s {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        e.walk(f);
                    }
                }
                Stmt::For { iter, body, .. } => {
                    iter.walk(f);
                    body.walk_exprs(f);
                }
                Stmt::While { cond, body, .. } => {
                    cond.walk(f);
                    body.walk_exprs(f);
                }
                Stmt::Loop { body, .. } => body.walk_exprs(f),
                Stmt::Semi(e) | Stmt::Expr(e) => e.walk(f),
                Stmt::Return(e, _) => {
                    if let Some(e) = e {
                        e.walk(f);
                    }
                }
                Stmt::BreakContinue(_) | Stmt::Item(_) => {}
            }
        }
    }
}

impl File {
    /// Every function in the file, recursing into `mod`/`impl`/`trait`
    /// containers, in source order.
    pub fn functions(&self) -> Vec<&Fn> {
        fn go<'a>(items: &'a [Item], out: &mut Vec<&'a Fn>) {
            for item in items {
                match item {
                    Item::Fn(f) => out.push(f),
                    Item::Container { items, .. } => go(items, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        go(&self.items, &mut out);
        out
    }

    /// Every `use` item, recursing into containers.
    pub fn uses(&self) -> Vec<(&[String], usize, bool)> {
        fn go<'a>(items: &'a [Item], out: &mut Vec<(&'a [String], usize, bool)>) {
            for item in items {
                match item {
                    Item::Use { segments, line, cfg_test } => {
                        out.push((segments.as_slice(), *line, *cfg_test))
                    }
                    Item::Container { items, .. } => go(items, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        go(&self.items, &mut out);
        out
    }
}
