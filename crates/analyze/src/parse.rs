//! Recursive-descent parser for the Rust subset the kernels use.
//!
//! Built directly on the shared span-carrying tokenizer
//! ([`cachegraph_lex::token`]). The grammar covers what kernel-marked
//! files actually contain — `fn` items (free, in `impl`/`trait` blocks,
//! with default bodies), `for i in a..b` loops, `if`/`else` chains,
//! `let` bindings with tuple patterns, compound assignment, index
//! expressions, method calls, struct literals, `match`, closures — and
//! *consumes without structure* what the downstream analyses never look
//! inside: generics, type ascriptions, attributes, macro bodies, match
//! patterns and closure parameter lists.
//!
//! Anything outside the subset is a hard [`ParseError`] naming the
//! unsupported construct and its line, so grammar drift in a kernel
//! file fails the golden-parse test loudly instead of silently
//! degrading the footprint inference.

use std::fmt;

use cachegraph_lex::token::{tokenize, Token, TokenKind};

use crate::ast::{BinOp, Block, Expr, ExprKind, File, Fn, Item, Param, Pat, Stmt};

/// A parse failure: what the parser could not handle, and where.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What was found / which construct is unsupported.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parse a whole source file.
pub fn parse_file(src: &str) -> PResult<File> {
    let mut p = Parser::new(src);
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.parse_item(false)?);
    }
    Ok(File { items })
}

/// Parser state: the comment-free token stream plus a cursor.
struct Parser<'s> {
    src: &'s str,
    toks: Vec<Token>,
    pos: usize,
}

/// Compound-assignment operator texts and their underlying op class.
const COMPOUND_OPS: &[(&str, BinOp)] = &[
    ("+=", BinOp::Add),
    ("-=", BinOp::Sub),
    ("*=", BinOp::Mul),
    ("/=", BinOp::Div),
    ("%=", BinOp::Rem),
    ("&=", BinOp::Bit),
    ("|=", BinOp::Bit),
    ("^=", BinOp::Bit),
    ("<<=", BinOp::Bit),
    (">>=", BinOp::Bit),
];

impl<'s> Parser<'s> {
    fn new(src: &'s str) -> Self {
        let toks = tokenize(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment { .. }))
            .collect();
        Self { src, toks, pos: 0 }
    }

    // ----- cursor helpers ------------------------------------------------

    fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn tok_at(&self, off: usize) -> Option<&Token> {
        self.toks.get(self.pos + off)
    }

    /// Token text at `off` tokens ahead ("" at end of input).
    fn peek_at(&self, off: usize) -> &'s str {
        self.tok_at(off).map(|t| t.text(self.src)).unwrap_or("")
    }

    fn peek(&self) -> &'s str {
        self.peek_at(0)
    }

    fn peek_kind(&self) -> Option<TokenKind> {
        self.tok_at(0).map(|t| t.kind)
    }

    /// Line of the current token (or of the last token at EOF).
    fn line(&self) -> usize {
        self.tok_at(0).or_else(|| self.toks.last()).map(|t| t.line).unwrap_or(1)
    }

    fn bump(&mut self) -> &'s str {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.peek() == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn require(&mut self, text: &str) -> PResult<()> {
        if self.eat(text) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{text}`, found `{}`", self.found())))
        }
    }

    fn found(&self) -> &'s str {
        if self.at_eof() {
            "<end of file>"
        } else {
            self.peek()
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError { line: self.line(), msg: msg.to_string() }
    }

    fn ident(&mut self) -> PResult<String> {
        if self.peek_kind() == Some(TokenKind::Ident) {
            Ok(self.bump().to_string())
        } else {
            Err(self.err(&format!("expected identifier, found `{}`", self.found())))
        }
    }

    // ----- token-level skipping ------------------------------------------

    /// Consume a balanced run starting at the given open delimiter
    /// (`(`, `[` or `{`), nesting only on the same family.
    fn skip_balanced(&mut self, open: &str, close: &str) -> PResult<()> {
        self.require(open)?;
        let mut depth = 1usize;
        while depth > 0 {
            if self.at_eof() {
                return Err(self.err(&format!("unclosed `{open}`")));
            }
            let t = self.bump();
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
            }
        }
        Ok(())
    }

    /// Consume a generics/turbofish run starting at `<`, treating `<<`
    /// and `>>` as double delimiters.
    fn skip_angles(&mut self) -> PResult<()> {
        self.require("<")?;
        let mut depth = 1i32;
        while depth > 0 {
            if self.at_eof() {
                return Err(self.err("unclosed `<`"));
            }
            match self.bump() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        Ok(())
    }

    /// Skip type-position tokens until one of `stops` appears at
    /// delimiter depth 0 (the stop token is not consumed). Tracks
    /// parens, brackets, braces and angle brackets, so `Vec<Vec<T>>`,
    /// `(&mut [W], &[W])` and `Iterator<Item = R>` skip correctly.
    /// Returns the skipped tokens joined with spaces.
    fn skip_type(&mut self, stops: &[&str]) -> PResult<String> {
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut out = String::new();
        loop {
            if self.at_eof() {
                return Err(self.err("unterminated type"));
            }
            let t = self.peek();
            if depth == 0 && angle <= 0 && stops.contains(&t) {
                return Ok(out);
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return Err(self.err(&format!("unexpected `{t}` in type")));
                    }
                }
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.bump());
        }
    }

    // ----- attributes & items --------------------------------------------

    /// Consume any run of `#[…]` / `#![…]` attributes; returns their
    /// token text joined with spaces.
    fn parse_attrs(&mut self) -> PResult<String> {
        let mut text = String::new();
        while self.peek() == "#" {
            self.bump();
            self.eat("!");
            self.require("[")?;
            let mut depth = 1usize;
            while depth > 0 {
                if self.at_eof() {
                    return Err(self.err("unclosed attribute"));
                }
                let t = self.bump();
                match t {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(t);
                }
            }
        }
        Ok(text)
    }

    fn parse_item(&mut self, in_cfg_test: bool) -> PResult<Item> {
        let attrs = self.parse_attrs()?;
        let cfg_test = in_cfg_test || (attrs.contains("cfg") && attrs.contains("test"));
        let line = self.line();
        if self.eat("pub") && self.peek() == "(" {
            self.skip_balanced("(", ")")?;
        }
        // `const fn` / `unsafe fn` / `extern "C" fn` modifiers.
        loop {
            if (self.peek() == "const" || self.peek() == "unsafe") && self.peek_at(1) == "fn" {
                self.bump();
            } else if self.peek() == "extern"
                && matches!(self.tok_at(1).map(|t| t.kind), Some(TokenKind::Str { .. }))
                && self.peek_at(2) == "fn"
            {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        match self.peek() {
            "use" => {
                self.bump();
                let mut segments = Vec::new();
                while self.peek() != ";" {
                    if self.at_eof() {
                        return Err(self.err("unterminated `use`"));
                    }
                    if self.peek_kind() == Some(TokenKind::Ident) {
                        segments.push(self.bump().to_string());
                    } else {
                        self.bump();
                    }
                }
                self.require(";")?;
                Ok(Item::Use { segments, line, cfg_test })
            }
            "mod" => {
                self.bump();
                self.ident()?;
                if self.eat(";") {
                    return Ok(Item::Other { kind: "mod-decl".to_string(), line });
                }
                self.require("{")?;
                let mut items = Vec::new();
                while !self.eat("}") {
                    if self.at_eof() {
                        return Err(self.err("unclosed `mod`"));
                    }
                    items.push(self.parse_item(cfg_test)?);
                }
                Ok(Item::Container { kind: "mod", items, line })
            }
            k @ ("impl" | "trait") => {
                let kind = if k == "impl" { "impl" } else { "trait" };
                self.bump();
                self.skip_type(&["{"])?;
                self.require("{")?;
                let mut items = Vec::new();
                while !self.eat("}") {
                    if self.at_eof() {
                        return Err(self.err(&format!("unclosed `{kind}`")));
                    }
                    items.push(self.parse_item(cfg_test)?);
                }
                Ok(Item::Container { kind, items, line })
            }
            "fn" => match self.parse_fn(cfg_test)? {
                Some(f) => Ok(Item::Fn(f)),
                None => Ok(Item::Other { kind: "fn-decl".to_string(), line }),
            },
            "struct" | "enum" | "union" => {
                let kind = self.bump().to_string();
                loop {
                    match self.peek() {
                        "{" => {
                            self.skip_balanced("{", "}")?;
                            // Tuple structs end `);` — a brace body ends
                            // the item.
                            break;
                        }
                        ";" => {
                            self.bump();
                            break;
                        }
                        "(" => self.skip_balanced("(", ")")?,
                        "" => return Err(self.err(&format!("unterminated `{kind}`"))),
                        _ => {
                            self.bump();
                        }
                    }
                }
                Ok(Item::Other { kind, line })
            }
            k @ ("const" | "static" | "type") => {
                let kind = k.to_string();
                self.bump();
                // Skip to the terminating `;` at depth 0 (array types and
                // initializers contain their own `;` inside brackets).
                let mut depth = 0i32;
                loop {
                    if self.at_eof() {
                        return Err(self.err(&format!("unterminated `{kind}`")));
                    }
                    let t = self.bump();
                    match t {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                Ok(Item::Other { kind, line })
            }
            "macro_rules" => {
                self.bump();
                self.require("!")?;
                self.ident()?;
                self.skip_balanced("{", "}")?;
                Ok(Item::Other { kind: "macro_rules".to_string(), line })
            }
            "" => Err(self.err("expected item, found end of file")),
            other => Err(self.err(&format!("unsupported item starting with `{other}`"))),
        }
    }

    /// Parse a `fn` item. Returns `None` for a body-less declaration
    /// (trait method signature).
    fn parse_fn(&mut self, cfg_test: bool) -> PResult<Option<Fn>> {
        let line = self.line();
        self.require("fn")?;
        let name = self.ident()?;
        if self.peek() == "<" {
            self.skip_angles()?;
        }
        self.require("(")?;
        let mut params = Vec::new();
        while self.peek() != ")" {
            if self.at_eof() {
                return Err(self.err("unclosed parameter list"));
            }
            params.push(self.parse_param()?);
            if !self.eat(",") {
                break;
            }
        }
        self.require(")")?;
        if self.eat("->") {
            self.skip_type(&["{", "where", ";"])?;
        }
        if self.peek() == "where" {
            self.bump();
            self.skip_type(&["{", ";"])?;
        }
        if self.eat(";") {
            return Ok(None);
        }
        let body = self.parse_block()?;
        Ok(Some(Fn { name, params, body, line, cfg_test }))
    }

    fn parse_param(&mut self) -> PResult<Param> {
        // Receiver forms: `self`, `&self`, `&'a self`, `&mut self`,
        // `mut self`, optionally with an explicit type.
        let save = self.pos;
        self.eat("&");
        if self.peek_kind() == Some(TokenKind::Lifetime) {
            self.bump();
        }
        self.eat("mut");
        if self.peek() == "self" {
            self.bump();
            let ty = if self.eat(":") { self.skip_type(&[",", ")"])? } else { String::new() };
            return Ok(Param { name: "self".to_string(), ty });
        }
        self.pos = save;

        self.eat("mut");
        let name = if self.eat("_") {
            "_".to_string()
        } else if self.peek_kind() == Some(TokenKind::Ident) {
            self.bump().to_string()
        } else if self.peek() == "(" {
            self.skip_balanced("(", ")")?;
            "_".to_string()
        } else {
            return Err(self.err(&format!("unsupported parameter pattern `{}`", self.found())));
        };
        self.require(":")?;
        let ty = self.skip_type(&[",", ")"])?;
        Ok(Param { name, ty })
    }

    // ----- statements -----------------------------------------------------

    fn parse_block(&mut self) -> PResult<Block> {
        let line = self.line();
        self.require("{")?;
        let mut stmts = Vec::new();
        while !self.eat("}") {
            if self.at_eof() {
                return Err(self.err("unclosed block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(Block { stmts, line })
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek() {
            "let" => {
                self.bump();
                let pat = self.parse_pat()?;
                if self.eat(":") {
                    self.skip_type(&["=", ";"])?;
                }
                let init =
                    if self.eat("=") { Some(self.parse_expr(true)?) } else { None };
                if self.peek() == "else" {
                    return Err(self.err("unsupported construct `let … else`"));
                }
                self.require(";")?;
                Ok(Stmt::Let { pat, init, line })
            }
            "for" => {
                self.bump();
                let pat = self.parse_pat()?;
                self.require("in")?;
                let iter = self.parse_expr_no_struct()?;
                let body = self.parse_block()?;
                Ok(Stmt::For { pat, iter, body, line })
            }
            "while" => {
                if self.peek_at(1) == "let" {
                    return Err(self.err("unsupported construct `while let`"));
                }
                self.bump();
                let cond = self.parse_expr_no_struct()?;
                let body = self.parse_block()?;
                Ok(Stmt::While { cond, body, line })
            }
            "loop" => {
                self.bump();
                let body = self.parse_block()?;
                Ok(Stmt::Loop { body, line })
            }
            "return" => {
                self.bump();
                let e = if self.peek() == ";" || self.peek() == "}" {
                    None
                } else {
                    Some(self.parse_expr(true)?)
                };
                self.eat(";");
                Ok(Stmt::Return(e, line))
            }
            "break" | "continue" => {
                self.bump();
                self.eat(";");
                Ok(Stmt::BreakContinue(line))
            }
            // Items in statement position (local fns, consts, nested
            // modules) and attribute-prefixed statements.
            "fn" | "use" | "struct" | "enum" | "const" | "static" | "type" | "mod" | "impl"
            | "trait" => {
                self.parse_item(false)?;
                Ok(Stmt::Item(line))
            }
            "unsafe" if self.peek_at(1) == "fn" => {
                self.parse_item(false)?;
                Ok(Stmt::Item(line))
            }
            "#" => {
                self.parse_attrs()?;
                self.parse_stmt()
            }
            "if" | "match" | "unsafe" | "{" => {
                let e = self.parse_block_like()?;
                if self.eat(";") {
                    Ok(Stmt::Semi(e))
                } else {
                    Ok(Stmt::Expr(e))
                }
            }
            _ => {
                let e = self.parse_expr(true)?;
                if self.eat(";") {
                    Ok(Stmt::Semi(e))
                } else if self.peek() == "}" {
                    Ok(Stmt::Expr(e))
                } else {
                    Err(self.err(&format!("expected `;`, found `{}`", self.found())))
                }
            }
        }
    }

    fn parse_pat(&mut self) -> PResult<Pat> {
        match self.peek() {
            "&" => {
                self.bump();
                self.eat("mut");
                self.parse_pat()
            }
            "&&" => {
                self.bump();
                self.eat("mut");
                self.parse_pat()
            }
            "mut" | "ref" => {
                self.bump();
                self.parse_pat()
            }
            "_" => {
                self.bump();
                Ok(Pat::Wild)
            }
            "(" => {
                self.bump();
                let mut ps = Vec::new();
                while self.peek() != ")" {
                    if self.at_eof() {
                        return Err(self.err("unclosed tuple pattern"));
                    }
                    ps.push(self.parse_pat()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.require(")")?;
                Ok(Pat::Tuple(ps))
            }
            _ => {
                if self.peek_kind() == Some(TokenKind::Ident) {
                    let name = self.bump().to_string();
                    // Enum/struct patterns (`Some(x)`, `View { .. }`,
                    // `a::B`) are consumed without structure.
                    match self.peek() {
                        "(" => {
                            self.skip_balanced("(", ")")?;
                            Ok(Pat::Wild)
                        }
                        "{" => {
                            self.skip_balanced("{", "}")?;
                            Ok(Pat::Wild)
                        }
                        "::" => {
                            while self.eat("::") {
                                self.ident()?;
                            }
                            if self.peek() == "(" {
                                self.skip_balanced("(", ")")?;
                            } else if self.peek() == "{" {
                                self.skip_balanced("{", "}")?;
                            }
                            Ok(Pat::Wild)
                        }
                        _ => Ok(Pat::Ident(name)),
                    }
                } else {
                    Err(self.err(&format!("unsupported pattern `{}`", self.found())))
                }
            }
        }
    }

    // ----- expressions ----------------------------------------------------

    fn parse_expr(&mut self, allow_struct: bool) -> PResult<Expr> {
        self.parse_assign(allow_struct)
    }

    fn parse_expr_no_struct(&mut self) -> PResult<Expr> {
        self.parse_expr(false)
    }

    fn parse_assign(&mut self, allow_struct: bool) -> PResult<Expr> {
        let line = self.line();
        let lhs = self.parse_range(allow_struct)?;
        if self.eat("=") {
            let rhs = self.parse_assign(allow_struct)?;
            return Ok(Expr {
                kind: ExprKind::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            });
        }
        for &(text, op) in COMPOUND_OPS {
            if self.eat(text) {
                let rhs = self.parse_assign(allow_struct)?;
                return Ok(Expr {
                    kind: ExprKind::CompoundAssign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    line,
                });
            }
        }
        Ok(lhs)
    }

    /// Can the current token begin an expression (for the optional high
    /// end of a range)?
    fn can_start_expr(&self) -> bool {
        !self.at_eof() && !matches!(self.peek(), ")" | "]" | "}" | "," | ";" | "{" | "=>")
    }

    fn parse_range(&mut self, allow_struct: bool) -> PResult<Expr> {
        let line = self.line();
        let lo = if self.peek() == ".." || self.peek() == "..=" {
            None
        } else {
            Some(Box::new(self.parse_binary(allow_struct, 0)?))
        };
        let inclusive = if self.eat("..=") {
            true
        } else if self.eat("..") {
            false
        } else {
            // `lo` is present here: the `None` arm above is only taken
            // when the next token *is* a range operator.
            return match lo {
                Some(e) => Ok(*e),
                None => Err(self.err("expected range")),
            };
        };
        let hi = if self.can_start_expr() {
            Some(Box::new(self.parse_binary(allow_struct, 0)?))
        } else {
            None
        };
        Ok(Expr { kind: ExprKind::Range { lo, hi, inclusive }, line })
    }

    /// Binary operator table: text → (class, precedence). Higher binds
    /// tighter; all levels left-associative.
    fn binop(text: &str) -> Option<(BinOp, u8)> {
        Some(match text {
            "||" => (BinOp::Logic, 1),
            "&&" => (BinOp::Logic, 2),
            "==" | "!=" | "<" | "<=" | ">" | ">=" => (BinOp::Cmp, 3),
            "|" => (BinOp::Bit, 4),
            "^" => (BinOp::Bit, 5),
            "&" => (BinOp::Bit, 6),
            "<<" | ">>" => (BinOp::Bit, 7),
            "+" => (BinOp::Add, 8),
            "-" => (BinOp::Sub, 8),
            "*" => (BinOp::Mul, 9),
            "/" => (BinOp::Div, 9),
            "%" => (BinOp::Rem, 9),
            _ => return None,
        })
    }

    /// Precedence-climbing loop over [`Self::binop`].
    fn parse_binary(&mut self, allow_struct: bool, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.parse_cast(allow_struct)?;
        while let Some((op, prec)) = Self::binop(self.peek()) {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(allow_struct, prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_cast(&mut self, allow_struct: bool) -> PResult<Expr> {
        let mut e = self.parse_unary(allow_struct)?;
        while self.peek() == "as" {
            let line = self.line();
            self.bump();
            // Cast target: a (possibly path-qualified) type name.
            self.ident()?;
            while self.eat("::") {
                self.ident()?;
            }
            e = Expr { kind: ExprKind::Cast(Box::new(e)), line };
        }
        Ok(e)
    }

    fn parse_unary(&mut self, allow_struct: bool) -> PResult<Expr> {
        let line = self.line();
        match self.peek() {
            "-" | "!" | "*" => {
                self.bump();
                let e = self.parse_unary(allow_struct)?;
                Ok(Expr { kind: ExprKind::Unary(Box::new(e)), line })
            }
            "&" => {
                self.bump();
                self.eat("mut");
                let e = self.parse_unary(allow_struct)?;
                Ok(Expr { kind: ExprKind::Ref(Box::new(e)), line })
            }
            "&&" => {
                self.bump();
                self.eat("mut");
                let e = self.parse_unary(allow_struct)?;
                let inner = Expr { kind: ExprKind::Ref(Box::new(e)), line };
                Ok(Expr { kind: ExprKind::Ref(Box::new(inner)), line })
            }
            _ => self.parse_postfix(allow_struct),
        }
    }

    fn parse_postfix(&mut self, allow_struct: bool) -> PResult<Expr> {
        let mut e = self.parse_primary(allow_struct)?;
        loop {
            let line = self.line();
            if self.eat(".") {
                if matches!(self.peek_kind(), Some(TokenKind::Int)) {
                    let name = self.bump().to_string();
                    e = Expr { kind: ExprKind::Field { recv: Box::new(e), name }, line };
                    continue;
                }
                let name = self.ident()?;
                // Turbofish: `.collect::<Vec<_>>()`.
                if self.peek() == "::" && self.peek_at(1) == "<" {
                    self.bump();
                    self.skip_angles()?;
                }
                if self.peek() == "(" {
                    let args = self.parse_call_args()?;
                    e = Expr {
                        kind: ExprKind::MethodCall { recv: Box::new(e), method: name, args },
                        line,
                    };
                } else {
                    e = Expr { kind: ExprKind::Field { recv: Box::new(e), name }, line };
                }
            } else if self.peek() == "(" {
                let args = self.parse_call_args()?;
                e = Expr { kind: ExprKind::Call { callee: Box::new(e), args }, line };
            } else if self.eat("[") {
                let index = self.parse_expr(true)?;
                self.require("]")?;
                e = Expr {
                    kind: ExprKind::Index { recv: Box::new(e), index: Box::new(index) },
                    line,
                };
            } else if self.eat("?") {
                e = Expr { kind: ExprKind::Try(Box::new(e)), line };
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_call_args(&mut self) -> PResult<Vec<Expr>> {
        self.require("(")?;
        let mut args = Vec::new();
        while self.peek() != ")" {
            if self.at_eof() {
                return Err(self.err("unclosed argument list"));
            }
            args.push(self.parse_expr(true)?);
            if !self.eat(",") {
                break;
            }
        }
        self.require(")")?;
        Ok(args)
    }

    /// Block-like expressions valid in statement position without a
    /// trailing `;`.
    fn parse_block_like(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.peek() {
            "if" => self.parse_if(),
            "match" => self.parse_match(),
            "unsafe" => {
                self.bump();
                let b = self.parse_block()?;
                Ok(Expr { kind: ExprKind::Block(b), line })
            }
            "{" => {
                let b = self.parse_block()?;
                Ok(Expr { kind: ExprKind::Block(b), line })
            }
            other => Err(self.err(&format!("expected block-like expression, found `{other}`"))),
        }
    }

    fn parse_if(&mut self) -> PResult<Expr> {
        let line = self.line();
        self.require("if")?;
        if self.peek() == "let" {
            return Err(self.err("unsupported construct `if let`"));
        }
        let cond = self.parse_expr_no_struct()?;
        let then = self.parse_block()?;
        let els = if self.eat("else") {
            if self.peek() == "if" {
                let nested_line = self.line();
                let nested = self.parse_if()?;
                Some(Block { stmts: vec![Stmt::Expr(nested)], line: nested_line })
            } else {
                Some(self.parse_block()?)
            }
        } else {
            None
        };
        Ok(Expr { kind: ExprKind::If { cond: Box::new(cond), then, els }, line })
    }

    fn parse_match(&mut self) -> PResult<Expr> {
        let line = self.line();
        self.require("match")?;
        let scrutinee = self.parse_expr_no_struct()?;
        self.require("{")?;
        let mut arms = Vec::new();
        while self.peek() != "}" {
            if self.at_eof() {
                return Err(self.err("unclosed `match`"));
            }
            // Consume the pattern (and any guard) up to `=>`.
            let mut depth = 0i32;
            loop {
                if self.at_eof() {
                    return Err(self.err("unterminated match arm pattern"));
                }
                if depth == 0 && self.peek() == "=>" {
                    break;
                }
                match self.bump() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
            }
            self.require("=>")?;
            arms.push(self.parse_expr(true)?);
            self.eat(",");
        }
        self.require("}")?;
        Ok(Expr { kind: ExprKind::Match { scrutinee: Box::new(scrutinee), arms }, line })
    }

    /// Does the cursor sit at `{` opening a struct literal (rather than
    /// a block)?
    fn struct_lit_ahead(&self) -> bool {
        if self.peek() != "{" {
            return false;
        }
        match self.peek_at(1) {
            "}" | ".." => true,
            _ => {
                self.tok_at(1).map(|t| t.kind) == Some(TokenKind::Ident)
                    && matches!(self.peek_at(2), ":" | "," | "}")
                    // `{ ident : : …` would be a path expression in a
                    // block; `::` lexes as one token so `:` here is a
                    // real field separator.
                    && self.peek_at(2) != "::"
            }
        }
    }

    fn parse_struct_lit(&mut self, path: Vec<String>, line: usize) -> PResult<Expr> {
        self.require("{")?;
        let mut fields = Vec::new();
        while self.peek() != "}" {
            if self.at_eof() {
                return Err(self.err("unclosed struct literal"));
            }
            if self.eat("..") {
                let e = self.parse_expr(true)?;
                fields.push(("..".to_string(), e));
            } else {
                let fline = self.line();
                let name = self.ident()?;
                if self.eat(":") {
                    let e = self.parse_expr(true)?;
                    fields.push((name, e));
                } else {
                    let e = Expr { kind: ExprKind::Ident(name.clone()), line: fline };
                    fields.push((name, e));
                }
            }
            if !self.eat(",") {
                break;
            }
        }
        self.require("}")?;
        Ok(Expr { kind: ExprKind::StructLit { path, fields }, line })
    }

    fn parse_primary(&mut self, allow_struct: bool) -> PResult<Expr> {
        let line = self.line();
        match self.peek_kind() {
            Some(TokenKind::Int) => {
                let v = int_value(self.bump());
                return Ok(Expr { kind: ExprKind::Int(v), line });
            }
            Some(TokenKind::Float) | Some(TokenKind::Str { .. }) | Some(TokenKind::Char { .. }) => {
                self.bump();
                return Ok(Expr { kind: ExprKind::Lit, line });
            }
            Some(TokenKind::Lifetime) => {
                return Err(self.err("unsupported construct: labeled expression"));
            }
            _ => {}
        }
        match self.peek() {
            "(" => {
                self.bump();
                if self.eat(")") {
                    return Ok(Expr { kind: ExprKind::Tuple(Vec::new()), line });
                }
                let mut elems = vec![self.parse_expr(true)?];
                while self.eat(",") {
                    if self.peek() == ")" {
                        break;
                    }
                    elems.push(self.parse_expr(true)?);
                }
                self.require(")")?;
                Ok(Expr { kind: ExprKind::Tuple(elems), line })
            }
            "[" => {
                self.bump();
                if self.eat("]") {
                    return Ok(Expr { kind: ExprKind::Array(Vec::new()), line });
                }
                let first = self.parse_expr(true)?;
                if self.eat(";") {
                    let len = self.parse_expr(true)?;
                    self.require("]")?;
                    return Ok(Expr { kind: ExprKind::Array(vec![first, len]), line });
                }
                let mut elems = vec![first];
                while self.eat(",") {
                    if self.peek() == "]" {
                        break;
                    }
                    elems.push(self.parse_expr(true)?);
                }
                self.require("]")?;
                Ok(Expr { kind: ExprKind::Array(elems), line })
            }
            "{" | "if" | "match" | "unsafe" => self.parse_block_like(),
            "move" | "|" | "||" => {
                self.eat("move");
                if !self.eat("||") {
                    self.require("|")?;
                    // Closure parameters: consumed without structure up
                    // to the closing `|` at delimiter depth 0.
                    let mut depth = 0i32;
                    loop {
                        if self.at_eof() {
                            return Err(self.err("unclosed closure parameter list"));
                        }
                        if depth == 0 && self.peek() == "|" {
                            break;
                        }
                        match self.bump() {
                            "(" | "[" | "<" => depth += 1,
                            ")" | "]" | ">" => depth -= 1,
                            _ => {}
                        }
                    }
                    self.require("|")?;
                }
                if self.eat("->") {
                    self.skip_type(&["{"])?;
                }
                let body = self.parse_expr(true)?;
                Ok(Expr { kind: ExprKind::Closure(Box::new(body)), line })
            }
            "for" | "while" | "loop" => {
                Err(self.err(&format!("unsupported construct: `{}` in expression position", self.peek())))
            }
            "true" | "false" => {
                self.bump();
                Ok(Expr { kind: ExprKind::Lit, line })
            }
            _ if self.peek_kind() == Some(TokenKind::Ident) => {
                let mut segs = vec![self.bump().to_string()];
                loop {
                    if self.peek() == "::" && self.peek_at(1) == "<" {
                        self.bump();
                        self.skip_angles()?;
                        continue;
                    }
                    if self.peek() == "::"
                        && self.tok_at(1).map(|t| t.kind) == Some(TokenKind::Ident)
                    {
                        self.bump();
                        segs.push(self.bump().to_string());
                        continue;
                    }
                    break;
                }
                if self.eat("!") {
                    let name = segs.join("::");
                    match self.peek() {
                        "(" => self.skip_balanced("(", ")")?,
                        "[" => self.skip_balanced("[", "]")?,
                        "{" => self.skip_balanced("{", "}")?,
                        other => {
                            return Err(
                                self.err(&format!("expected macro delimiter, found `{other}`"))
                            )
                        }
                    }
                    return Ok(Expr { kind: ExprKind::Macro { name }, line });
                }
                if allow_struct && self.struct_lit_ahead() {
                    return self.parse_struct_lit(segs, line);
                }
                if segs.len() == 1 {
                    let name = segs.into_iter().next().unwrap_or_default();
                    Ok(Expr { kind: ExprKind::Ident(name), line })
                } else {
                    Ok(Expr { kind: ExprKind::Path(segs), line })
                }
            }
            other => Err(self.err(&format!("unsupported construct at `{other}`"))),
        }
    }
}

/// Value of an integer literal token (underscores, base prefixes and
/// type suffixes handled). `None` when the value overflows `i64`.
fn int_value(text: &str) -> Option<i64> {
    let mut t: String = text.chars().filter(|&c| c != '_').collect();
    for suf in
        ["usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8"]
    {
        if t.len() > suf.len() && t.ends_with(suf) {
            t.truncate(t.len() - suf.len());
            break;
        }
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = t.strip_prefix("0o") {
        i64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        i64::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> File {
        match parse_file(src) {
            Ok(f) => f,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn int_literals() {
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("0xffff_u64"), Some(0xffff));
        assert_eq!(int_value("0b1010"), Some(10));
        assert_eq!(int_value("1_000_000"), Some(1_000_000));
        assert_eq!(int_value("42usize"), Some(42));
        assert_eq!(int_value("0xffff_ffff_ffff_ffff"), None, "overflows i64");
    }

    #[test]
    fn fn_with_loops_and_subscripts() {
        let f = parse_ok(
            "fn fwi(a: View, size: usize) {\n\
             for k in 0..size {\n\
                 for i in 0..size {\n\
                     let x = a.at(i, k);\n\
                     data[x] = data[x] + 1;\n\
                 }\n\
             }\n\
             }\n",
        );
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "fwi");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[1].ty, "usize");
        let Stmt::For { body, .. } = &fns[0].body.stmts[0] else {
            panic!("expected for loop")
        };
        assert!(matches!(body.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn precedence_of_affine_subscripts() {
        // offset + i * stride + j must parse as (offset + (i * stride)) + j.
        let f = parse_ok("fn f(i: usize) { let x = offset + i * stride + j; }");
        let fns = f.functions();
        let Stmt::Let { init: Some(e), .. } = &fns[0].body.stmts[0] else {
            panic!("expected let")
        };
        let ExprKind::Binary { op: BinOp::Add, lhs, rhs } = &e.kind else {
            panic!("top must be +, got {:?}", e.kind)
        };
        assert!(matches!(rhs.kind, ExprKind::Ident(ref n) if n == "j"));
        let ExprKind::Binary { op: BinOp::Add, rhs: mul, .. } = &lhs.kind else {
            panic!("left must be +")
        };
        assert!(matches!(mul.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn struct_literals_and_blocks_disambiguated() {
        let f = parse_ok(
            "fn f() -> Option<View> {\n\
             if size == b {\n\
                 Some(View { offset: base, stride: b })\n\
             } else {\n\
                 None\n\
             }\n\
             }\n",
        );
        assert_eq!(f.functions().len(), 1);
        // In a no-struct context `b { … }` must be a block, not a literal.
        let g = parse_ok("fn g() { for x in lo..hi { y += x; } }");
        assert_eq!(g.functions().len(), 1);
    }

    #[test]
    fn compound_assign_and_shifts() {
        let f = parse_ok(
            "fn s(x: u64) -> u64 {\n\
             let mut x = x & 0xffff_ffff;\n\
             x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;\n\
             x |= 1;\n\
             x <<= 2;\n\
             x\n\
             }\n",
        );
        let fns = f.functions();
        assert!(fns[0].body.stmts.len() == 5);
    }

    #[test]
    fn methods_fields_indexing_ranges() {
        let f = parse_ok(
            "fn f(&mut self, v: View) {\n\
             let r = self.data[v.offset..v.offset + size].len();\n\
             let t = x.0;\n\
             let c: Vec<usize> = xs.iter().map(|&(i, j)| l.index(i, j)).collect::<Vec<usize>>();\n\
             }\n",
        );
        assert_eq!(f.functions()[0].params[0].name, "self");
    }

    #[test]
    fn items_traits_impls_and_tests_mod() {
        let f = parse_ok(
            "use std::collections::HashSet;\n\
             pub struct V { pub o: usize }\n\
             pub trait T { fn n(&self) -> usize; fn d(&self) -> usize { self.n() * 2 } }\n\
             impl T for V { fn n(&self) -> usize { self.o } }\n\
             #[cfg(test)]\n\
             mod tests { fn helper() {} }\n",
        );
        let fns = f.functions();
        // d, n (impl), helper — the body-less trait signature is not a Fn.
        assert_eq!(fns.len(), 3);
        let helper = fns.iter().find(|f| f.name == "helper").expect("helper parsed");
        assert!(helper.cfg_test, "cfg(test) must propagate into the module");
        assert!(!fns[0].cfg_test);
        let uses = f.uses();
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].0, ["std", "collections", "HashSet"]);
    }

    #[test]
    fn matches_macros_casts_closures() {
        let f = parse_ok(
            "fn f(b: usize) -> usize {\n\
             debug_assert!(b >= 1, \"must be positive\");\n\
             let v = vec![0u32; b];\n\
             let k = match b { 0 => 1, _ => b as u64 as usize };\n\
             let g = move |x: usize| x + 1;\n\
             k\n\
             }\n",
        );
        assert_eq!(f.functions().len(), 1);
    }

    #[test]
    fn unsupported_constructs_are_named() {
        let e = parse_file("fn f(x: Option<usize>) { if let Some(y) = x { } }")
            .expect_err("if let must be rejected");
        assert!(e.msg.contains("if let"), "{e}");
        let e = parse_file("fn f() { while let Some(x) = it.next() { } }")
            .expect_err("while let must be rejected");
        assert!(e.msg.contains("while let"), "{e}");
        let e = parse_file("yield x;").expect_err("unknown item");
        assert!(e.msg.contains("unsupported item"), "{e}");
    }

    #[test]
    fn error_lines_are_real() {
        let e = parse_file("fn f() {\n    let x = 1;\n    if let Some(y) = x {}\n}\n")
            .expect_err("must fail");
        assert_eq!(e.line, 3);
    }
}
