//! `cachegraph-analyze`: AST-level static analysis for the kernel
//! sources — parse, infer footprints, prove plan conformance, all
//! before anything runs.
//!
//! The workspace already machine-checks the parallel driver's
//! disjointness claims twice: dynamically (`cachegraph-fw`'s recording
//! test) and against the *declared* plan footprints (`cachegraph-check`
//! oracle). This crate closes the remaining gap — that the kernel
//! *source* matches the declared footprints — without executing the
//! kernel:
//!
//! * [`parse`] — a recursive-descent parser over the shared tokenizer
//!   ([`cachegraph_lex::token`]) for the Rust subset kernel files use,
//!   producing a real AST ([`ast`]) with line spans. Constructs outside
//!   the subset are hard errors naming the construct (golden-parse).
//! * [`affine`] — the symbolic domain: multivariate polynomials over
//!   loop induction variables and named symbols (`size`, `a.offset`,
//!   `a.stride`, …).
//! * [`footprint`] — abstract interpretation of a kernel function's
//!   loop nest: induction variables become intervals, subscripts are
//!   evaluated symbolically, and every `self.read(e)` / `self.write(e,
//!   v)` becomes an access site with its enclosing loop ranges.
//! * [`conform`] — instantiates the inferred accesses over the concrete
//!   task plans of [`cachegraph_fw::plan::Planner`] across an `(n, b)`
//!   sweep and proves inferred ⊆ declared per task, then feeds the
//!   inferred footprints through `cachegraph-check`'s set arithmetic
//!   ([`cachegraph_check::check_phase_footprints`]) to re-prove phase
//!   disjointness purely statically.
//! * [`rules`] — AST-backed re-implementations of the `kernel-bounds`
//!   and `obs-purity` tidy rules (the token-level rules stay as
//!   fallback for files outside the parsed subset).
//!
//! The driver binary (`cargo run -p cachegraph-analyze`) runs the full
//! pass including a seeded-mutation sensitivity check; see `src/main.rs`.

pub mod affine;
pub mod ast;
pub mod conform;
pub mod footprint;
pub mod parse;
pub mod rules;

pub use conform::{
    check_kernel_conformance, summarize_kernel_source, sweep_kernel_conformance, ConformanceError,
    ConformanceReport, SweepOutcome,
};
pub use footprint::{summarize_fn, Access, AccessKind, FnSummary};
pub use parse::{parse_file, ParseError};
