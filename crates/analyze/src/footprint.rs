//! Affine footprint inference: abstract interpretation of a kernel
//! function's loop nest.
//!
//! Walks a parsed [`Fn`]'s body with a symbolic environment:
//!
//! * `View` parameters become view values whose `offset`/`stride`
//!   fields read as named symbols (`a.offset`, `a.stride`);
//! * `usize` parameters become named symbols (`size`);
//! * `for v in lo..hi` loops whose bounds evaluate to polynomials bind
//!   `v` as an induction variable over the interval `[lo, hi)`;
//! * `view.at(i, j)` evaluates to `view.offset + i·view.stride + j`
//!   (the semantics of [`cachegraph_fw::View::at`] — re-derived from
//!   source by a unit test below, not just trusted);
//! * every `self.read(e)` / `self.write(e, _)` is an access site: its
//!   subscript polynomial is captured together with the enclosing loop
//!   ranges.
//!
//! Everything else degrades *conservatively*: values the domain cannot
//! model become opaque, both branches of every `if` are interpreted
//! (`continue`/`break` guards ignored), and an access whose subscript
//! is not a polynomial is recorded as **unresolved** rather than
//! dropped. The inferred footprint therefore over-approximates the real
//! one, which is exactly the sound direction for proving
//! `inferred ⊆ declared`.

use std::collections::{BTreeMap, BTreeSet};

use crate::affine::{Atom, Poly};
use crate::ast::{Block, Expr, ExprKind, Fn, Pat, Stmt};

/// Read or write access site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// `self.read(e)`.
    Read,
    /// `self.write(e, v)`.
    Write,
}

/// One loop level enclosing an access: induction variable (uniquified
/// under shadowing) and its half-open `[lo, hi)` interval.
#[derive(Clone, Debug)]
pub struct LoopRange {
    /// Uniquified induction-variable name.
    pub var: String,
    /// Inclusive lower bound.
    pub lo: Poly,
    /// Exclusive upper bound.
    pub hi: Poly,
}

/// One inferred access site.
#[derive(Clone, Debug)]
pub struct Access {
    /// Read or write.
    pub kind: AccessKind,
    /// Subscript polynomial over induction variables and symbols.
    pub index: Poly,
    /// Enclosing loop ranges, outermost first.
    pub ranges: Vec<LoopRange>,
    /// 1-based source line of the access.
    pub line: usize,
}

/// The inferred footprint summary of one function.
#[derive(Clone, Debug)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// Names of `View`-typed parameters, in declaration order.
    pub view_params: Vec<String>,
    /// Names of integer-typed (`usize`) parameters.
    pub int_params: Vec<String>,
    /// Every resolved access site.
    pub accesses: Vec<Access>,
    /// Access sites whose subscript could not be modeled:
    /// `(line, description)`. Non-empty means the footprint is not
    /// provable and conformance must fail.
    pub unresolved: Vec<(usize, String)>,
    /// Conservative-interpretation notes (opaque loops, skipped macro
    /// bodies) for the report.
    pub notes: Vec<String>,
}

/// Error instantiating a summary over concrete symbol values.
#[derive(Clone, Debug)]
pub struct InstantiateError {
    /// 1-based source line of the offending access.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl FnSummary {
    /// Enumerate the concrete cells of every access given values for
    /// the named symbols (`size`, `a.offset`, …). Returns
    /// `(reads, writes)` as flat cell sets.
    ///
    /// Only the induction variables a subscript actually mentions (plus
    /// any their bounds depend on) are enumerated, so the cost per site
    /// is the product of the *relevant* interval widths, not the whole
    /// loop nest volume.
    pub fn instantiate(
        &self,
        syms: &BTreeMap<String, i64>,
    ) -> Result<(BTreeSet<usize>, BTreeSet<usize>), InstantiateError> {
        if let Some((line, msg)) = self.unresolved.first() {
            return Err(InstantiateError {
                line: *line,
                msg: format!("unresolved access site: {msg}"),
            });
        }
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        for acc in &self.accesses {
            let needed = needed_ivars(acc)?;
            let mut bound: BTreeMap<String, i64> = BTreeMap::new();
            enumerate(acc, &acc.ranges, &needed, syms, &mut bound, &mut |cell| {
                match acc.kind {
                    AccessKind::Read => reads.insert(cell),
                    AccessKind::Write => writes.insert(cell),
                };
            })?;
        }
        Ok((reads, writes))
    }
}

/// Induction variables a subscript depends on, closed over range-bound
/// dependencies (a triangular loop's bound may mention an outer ivar).
fn needed_ivars(acc: &Access) -> Result<BTreeSet<String>, InstantiateError> {
    let mut needed: BTreeSet<String> =
        acc.index.ivars().into_iter().map(str::to_string).collect();
    loop {
        let mut grew = false;
        for r in &acc.ranges {
            if needed.contains(&r.var) {
                for dep in r.lo.ivars().into_iter().chain(r.hi.ivars()) {
                    grew |= needed.insert(dep.to_string());
                }
            }
        }
        if !grew {
            break;
        }
    }
    for n in &needed {
        if !acc.ranges.iter().any(|r| &r.var == n) {
            return Err(InstantiateError {
                line: acc.line,
                msg: format!("induction variable `{n}` has no inferred range"),
            });
        }
    }
    Ok(needed)
}

/// Recursively enumerate the needed loop levels (outermost first) and
/// emit each concrete cell.
fn enumerate(
    acc: &Access,
    ranges: &[LoopRange],
    needed: &BTreeSet<String>,
    syms: &BTreeMap<String, i64>,
    bound: &mut BTreeMap<String, i64>,
    emit: &mut impl FnMut(usize),
) -> Result<(), InstantiateError> {
    let lookup = |bound: &BTreeMap<String, i64>, a: &Atom| match a {
        Atom::IVar(n) => bound.get(n).copied(),
        Atom::Sym(n) => syms.get(n).copied(),
    };
    match ranges.split_first() {
        None => {
            let cell = acc.index.eval(&|a| lookup(bound, a)).ok_or_else(|| InstantiateError {
                line: acc.line,
                msg: format!("subscript `{}` has unbound symbols", acc.index),
            })?;
            let cell = usize::try_from(cell).map_err(|_| InstantiateError {
                line: acc.line,
                msg: format!("subscript `{}` evaluates to negative cell {cell}", acc.index),
            })?;
            emit(cell);
            Ok(())
        }
        Some((r, rest)) => {
            if !needed.contains(&r.var) {
                return enumerate(acc, rest, needed, syms, bound, emit);
            }
            let lo = r.lo.eval(&|a| lookup(bound, a)).ok_or_else(|| InstantiateError {
                line: acc.line,
                msg: format!("loop bound `{}` has unbound symbols", r.lo),
            })?;
            let hi = r.hi.eval(&|a| lookup(bound, a)).ok_or_else(|| InstantiateError {
                line: acc.line,
                msg: format!("loop bound `{}` has unbound symbols", r.hi),
            })?;
            for v in lo..hi {
                bound.insert(r.var.clone(), v);
                enumerate(acc, rest, needed, syms, bound, emit)?;
            }
            bound.remove(&r.var);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// The interpreter.
// ---------------------------------------------------------------------

/// Abstract value.
#[derive(Clone, Debug)]
enum Val {
    /// A polynomial over ivars and symbols.
    Poly(Poly),
    /// A `View` parameter, by name.
    View(String),
    /// Anything the domain cannot model.
    Opaque,
}

struct Interp {
    scopes: Vec<BTreeMap<String, Val>>,
    loops: Vec<LoopRange>,
    accesses: Vec<Access>,
    unresolved: Vec<(usize, String)>,
    notes: Vec<String>,
    /// Identifiers assigned anywhere in the body (`x = …` / `x += …`):
    /// loop-variant, so their bindings are forced opaque.
    mutated: BTreeSet<String>,
    fresh: usize,
}

/// Infer the footprint summary of one parsed function.
pub fn summarize_fn(f: &Fn) -> FnSummary {
    let mut interp = Interp {
        scopes: vec![BTreeMap::new()],
        loops: Vec::new(),
        accesses: Vec::new(),
        unresolved: Vec::new(),
        notes: Vec::new(),
        mutated: mutated_idents(&f.body),
        fresh: 0,
    };
    let mut view_params = Vec::new();
    let mut int_params = Vec::new();
    for p in &f.params {
        if p.name == "self" || p.name == "_" {
            continue;
        }
        if p.ty == "View" {
            interp.bind(&p.name, Val::View(p.name.clone()));
            view_params.push(p.name.clone());
        } else if p.ty == "usize" {
            interp.bind(&p.name, Val::Poly(Poly::sym(&p.name)));
            int_params.push(p.name.clone());
        } else {
            interp.bind(&p.name, Val::Opaque);
        }
    }
    interp.exec_block(&f.body);
    FnSummary {
        name: f.name.clone(),
        view_params,
        int_params,
        accesses: interp.accesses,
        unresolved: interp.unresolved,
        notes: interp.notes,
    }
}

/// Every identifier that is the target of an assignment somewhere in
/// the block.
fn mutated_idents(body: &Block) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    body.walk_exprs(&mut |e| {
        if let ExprKind::Assign { lhs, .. } | ExprKind::CompoundAssign { lhs, .. } = &e.kind {
            if let ExprKind::Ident(n) = &lhs.kind {
                out.insert(n.clone());
            }
        }
    });
    out
}

impl Interp {
    fn bind(&mut self, name: &str, v: Val) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), v);
        }
    }

    fn lookup(&self, name: &str) -> Val {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return v.clone();
            }
        }
        Val::Opaque
    }

    fn scoped(&mut self, f: impl FnOnce(&mut Self)) {
        self.scopes.push(BTreeMap::new());
        f(self);
        self.scopes.pop();
    }

    fn exec_block(&mut self, b: &Block) -> Val {
        let mut last = Val::Opaque;
        self.scopes.push(BTreeMap::new());
        for (i, s) in b.stmts.iter().enumerate() {
            let v = self.exec_stmt(s);
            last = if i + 1 == b.stmts.len() && matches!(s, Stmt::Expr(_)) {
                v
            } else {
                Val::Opaque
            };
        }
        self.scopes.pop();
        last
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Val {
        match s {
            Stmt::Let { pat, init, .. } => {
                let v = match init {
                    Some(e) => self.eval(e),
                    None => Val::Opaque,
                };
                self.bind_pat(pat, init.as_ref(), v);
                Val::Opaque
            }
            Stmt::For { pat, iter, body, .. } => {
                self.exec_for(pat, iter, body);
                Val::Opaque
            }
            Stmt::While { cond, body, .. } => {
                self.eval(cond);
                self.scoped(|i| {
                    i.exec_block(body);
                });
                Val::Opaque
            }
            Stmt::Loop { body, .. } => {
                self.scoped(|i| {
                    i.exec_block(body);
                });
                Val::Opaque
            }
            Stmt::Semi(e) => {
                self.eval(e);
                Val::Opaque
            }
            Stmt::Expr(e) => self.eval(e),
            Stmt::Return(Some(e), _) => {
                self.eval(e);
                Val::Opaque
            }
            Stmt::Return(None, _) | Stmt::BreakContinue(_) | Stmt::Item(_) => Val::Opaque,
        }
    }

    /// Bind a `let` pattern. A loop-variant name (reassigned later) is
    /// forced opaque regardless of its initializer — per-iteration
    /// symbolic values would be unsound for it.
    fn bind_pat(&mut self, pat: &Pat, init: Option<&Expr>, v: Val) {
        match pat {
            Pat::Ident(n) => {
                let v = if self.mutated.contains(n) { Val::Opaque } else { v };
                self.bind(n, v);
            }
            Pat::Tuple(ps) => {
                // Pairwise only for a literal tuple initializer; every
                // other shape binds opaque.
                if let Some(Expr { kind: ExprKind::Tuple(es), .. }) = init {
                    if es.len() == ps.len() {
                        let vals: Vec<Val> = es.iter().map(|e| self.eval(e)).collect();
                        for (p, ev) in ps.iter().zip(vals) {
                            self.bind_pat(p, None, ev);
                        }
                        return;
                    }
                }
                for n in pat.idents() {
                    self.bind(n, Val::Opaque);
                }
            }
            Pat::Wild => {}
        }
    }

    fn exec_for(&mut self, pat: &Pat, iter: &Expr, body: &Block) {
        // The modelable shape: `for <ident> in lo..hi`.
        if let (Pat::Ident(name), ExprKind::Range { lo: Some(lo), hi: Some(hi), inclusive }) =
            (pat, &iter.kind)
        {
            let lv = self.eval(lo);
            let hv = self.eval(hi);
            if let (Val::Poly(lp), Val::Poly(hp)) = (lv, hv) {
                let hp = if *inclusive { hp.add(&Poly::constant(1)) } else { Some(hp) };
                if let Some(hp) = hp {
                    self.fresh += 1;
                    let unique = if self.loops.iter().any(|r| r.var == *name) {
                        format!("{name}#{}", self.fresh)
                    } else {
                        name.clone()
                    };
                    self.loops.push(LoopRange { var: unique.clone(), lo: lp, hi: hp });
                    self.scopes.push(BTreeMap::new());
                    self.bind(name, Val::Poly(Poly::ivar(&unique)));
                    self.exec_block(body);
                    self.scopes.pop();
                    self.loops.pop();
                    return;
                }
            }
            self.notes.push(format!(
                "line {}: loop over `{name}` has non-affine bounds; treated as opaque",
                iter.line
            ));
        } else {
            self.eval(iter);
            self.notes.push(format!(
                "line {}: non-range `for` loop; induction treated as opaque",
                iter.line
            ));
        }
        // Opaque loop: bind the pattern's names opaque and interpret the
        // body once (accesses independent of the loop still resolve).
        self.scopes.push(BTreeMap::new());
        for n in pat.idents() {
            self.bind(n, Val::Opaque);
        }
        self.exec_block(body);
        self.scopes.pop();
    }

    fn record(&mut self, kind: AccessKind, arg: &Expr) {
        match self.eval(arg) {
            Val::Poly(index) => self.accesses.push(Access {
                kind,
                index,
                ranges: self.loops.clone(),
                line: arg.line,
            }),
            _ => self.unresolved.push((
                arg.line,
                format!(
                    "{} subscript is not affine",
                    match kind {
                        AccessKind::Read => "read",
                        AccessKind::Write => "write",
                    }
                ),
            )),
        }
    }

    fn eval(&mut self, e: &Expr) -> Val {
        match &e.kind {
            ExprKind::Int(Some(v)) => Val::Poly(Poly::constant(*v)),
            ExprKind::Int(None) | ExprKind::Lit | ExprKind::Path(_) => Val::Opaque,
            ExprKind::Ident(n) => self.lookup(n),
            ExprKind::Unary(inner) => {
                self.eval(inner);
                Val::Opaque
            }
            ExprKind::Ref(inner) | ExprKind::Try(inner) => self.eval(inner),
            ExprKind::Cast(inner) => self.eval(inner),
            ExprKind::Binary { op, lhs, rhs } => {
                let lv = self.eval(lhs);
                let rv = self.eval(rhs);
                if let (Val::Poly(a), Val::Poly(b)) = (lv, rv) {
                    let r = match op {
                        crate::ast::BinOp::Add => a.add(&b),
                        crate::ast::BinOp::Sub => a.sub(&b),
                        crate::ast::BinOp::Mul => a.mul(&b),
                        _ => None,
                    };
                    if let Some(p) = r {
                        return Val::Poly(p);
                    }
                }
                Val::Opaque
            }
            ExprKind::Assign { lhs, rhs } | ExprKind::CompoundAssign { lhs, rhs, .. } => {
                self.eval(rhs);
                match &lhs.kind {
                    // The pre-scan already forced the binding opaque;
                    // nothing to update.
                    ExprKind::Ident(_) => {}
                    _ => {
                        self.eval(lhs);
                    }
                }
                Val::Opaque
            }
            ExprKind::Call { callee, args } => {
                self.eval(callee);
                for a in args {
                    self.eval(a);
                }
                Val::Opaque
            }
            ExprKind::MethodCall { recv, method, args } => {
                let is_self = matches!(&recv.kind, ExprKind::Ident(n) if n == "self");
                if is_self && method == "read" && args.len() == 1 {
                    if let Some(a0) = args.first() {
                        self.record(AccessKind::Read, a0);
                    }
                    return Val::Opaque;
                }
                if is_self && method == "write" && args.len() == 2 {
                    if let Some(a0) = args.first() {
                        self.record(AccessKind::Write, a0);
                    }
                    if let Some(a1) = args.get(1) {
                        self.eval(a1);
                    }
                    return Val::Opaque;
                }
                let rv = self.eval(recv);
                if method == "at" && args.len() == 2 {
                    if let Val::View(view) = &rv {
                        let view = view.clone();
                        let a0 = self.eval_or_opaque(args.first());
                        let a1 = self.eval_or_opaque(args.get(1));
                        if let (Val::Poly(i), Val::Poly(j)) = (a0, a1) {
                            let p = Poly::sym(&format!("{view}.offset"))
                                .add(&i.mul(&Poly::sym(&format!("{view}.stride"))).unwrap_or_else(Poly::zero))
                                .and_then(|s| s.add(&j));
                            if let Some(p) = p {
                                return Val::Poly(p);
                            }
                        }
                        return Val::Opaque;
                    }
                }
                for a in args {
                    self.eval(a);
                }
                Val::Opaque
            }
            ExprKind::Field { recv, name } => {
                let rv = self.eval(recv);
                if let Val::View(view) = rv {
                    if name == "offset" || name == "stride" {
                        return Val::Poly(Poly::sym(&format!("{view}.{name}")));
                    }
                }
                Val::Opaque
            }
            ExprKind::Index { recv, index } => {
                self.eval(recv);
                self.eval(index);
                Val::Opaque
            }
            ExprKind::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.eval(e);
                }
                if let Some(e) = hi {
                    self.eval(e);
                }
                Val::Opaque
            }
            ExprKind::If { cond, then, els } => {
                self.eval(cond);
                // Both branches interpreted: a sound over-approximation
                // of whichever executes.
                self.exec_block(then);
                if let Some(b) = els {
                    self.exec_block(b);
                }
                Val::Opaque
            }
            ExprKind::Match { scrutinee, arms } => {
                self.eval(scrutinee);
                for a in arms {
                    self.eval(a);
                }
                Val::Opaque
            }
            ExprKind::Block(b) => self.exec_block(b),
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                for e in es {
                    self.eval(e);
                }
                Val::Opaque
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, e) in fields {
                    self.eval(e);
                }
                Val::Opaque
            }
            ExprKind::Macro { name } => {
                self.notes.push(format!("line {}: `{name}!` body not interpreted", e.line));
                Val::Opaque
            }
            ExprKind::Closure(body) => {
                self.scoped(|i| {
                    i.eval(body);
                });
                Val::Opaque
            }
        }
    }

    fn eval_or_opaque(&mut self, e: Option<&Expr>) -> Val {
        match e {
            Some(e) => self.eval(e),
            None => Val::Opaque,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn summarize(src: &str, name: &str) -> FnSummary {
        let file = parse_file(src).expect("fixture parses");
        let f = file
            .functions()
            .into_iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"));
        summarize_fn(f)
    }

    const MINI_KERNEL: &str = "\
        fn k(&mut self, a: View, b: View, size: usize) {\n\
            for i in 0..size {\n\
                for j in 0..size {\n\
                    let x = self.read(b.at(i, j));\n\
                    self.write(a.at(i, j), x);\n\
                }\n\
            }\n\
        }\n";

    #[test]
    fn mini_kernel_footprint_is_exact_tiles() {
        let s = summarize(MINI_KERNEL, "k");
        assert_eq!(s.view_params, ["a", "b"]);
        assert_eq!(s.int_params, ["size"]);
        assert!(s.unresolved.is_empty(), "{:?}", s.unresolved);
        assert_eq!(s.accesses.len(), 2);
        let syms: BTreeMap<String, i64> = [
            ("size".to_string(), 2),
            ("a.offset".to_string(), 0),
            ("a.stride".to_string(), 2),
            ("b.offset".to_string(), 4),
            ("b.stride".to_string(), 2),
        ]
        .into();
        let (reads, writes) = s.instantiate(&syms).expect("instantiates");
        assert_eq!(reads, (4..8).collect());
        assert_eq!(writes, (0..4).collect());
    }

    #[test]
    fn guards_are_over_approximated() {
        // The INF guard and the improvement test must not shrink the
        // inferred footprint: both branches count.
        let src = "\
            fn g(&mut self, a: View, size: usize) {\n\
                for i in 0..size {\n\
                    let v = self.read(a.at(i, 0));\n\
                    if v < 10 {\n\
                        self.write(a.at(i, 0), v);\n\
                    }\n\
                }\n\
            }\n";
        let s = summarize(src, "g");
        let syms: BTreeMap<String, i64> =
            [("size".to_string(), 3), ("a.offset".to_string(), 0), ("a.stride".to_string(), 4)]
                .into();
        let (_, writes) = s.instantiate(&syms).expect("instantiates");
        assert_eq!(writes, [0usize, 4, 8].into_iter().collect());
    }

    #[test]
    fn shadowed_loop_variable_stays_sound() {
        // The inner `i` shadows the outer one; the read must range over
        // the *inner* interval only.
        let src = "\
            fn s(&mut self, a: View, size: usize) {\n\
                for i in 0..size {\n\
                    for i in 0..2 {\n\
                        self.write(a.at(0, i), 0);\n\
                    }\n\
                }\n\
            }\n";
        let s = summarize(src, "s");
        assert!(s.unresolved.is_empty(), "{:?}", s.unresolved);
        let syms: BTreeMap<String, i64> =
            [("size".to_string(), 9), ("a.offset".to_string(), 0), ("a.stride".to_string(), 16)]
                .into();
        let (_, writes) = s.instantiate(&syms).expect("instantiates");
        assert_eq!(writes, [0usize, 1].into_iter().collect(), "inner 0..2 wins, not 0..9");
    }

    #[test]
    fn loop_variant_local_is_opaque() {
        // `acc` is reassigned in the loop; using it as a subscript must
        // be unresolved, not silently wrong.
        let src = "\
            fn m(&mut self, a: View, size: usize) {\n\
                let mut acc = 0;\n\
                for i in 0..size {\n\
                    acc = acc + i;\n\
                    self.write(a.at(0, 0), self.read(acc));\n\
                }\n\
            }\n";
        let s = summarize(src, "m");
        assert!(
            s.unresolved.iter().any(|(_, m)| m.contains("read")),
            "loop-carried subscript must be unresolved: {:?}",
            s.unresolved
        );
    }

    #[test]
    fn multiline_subscript_resolves() {
        let src = "\
            fn w(&mut self, a: View, size: usize) {\n\
                for j in 0..size {\n\
                    self.write(\n\
                        a.at(0, 0)\n\
                            + j,\n\
                        0,\n\
                    );\n\
                }\n\
            }\n";
        let s = summarize(src, "w");
        assert!(s.unresolved.is_empty(), "{:?}", s.unresolved);
        let syms: BTreeMap<String, i64> =
            [("size".to_string(), 3), ("a.offset".to_string(), 5), ("a.stride".to_string(), 8)]
                .into();
        let (_, writes) = s.instantiate(&syms).expect("instantiates");
        assert_eq!(writes, [5usize, 6, 7].into_iter().collect());
    }

    /// The `view.at(i, j)` evaluation rule is not folklore: re-derive it
    /// from `View::at`'s own source. If the kernel's address math ever
    /// changes shape, this test pins the interpreter to it.
    #[test]
    fn at_semantics_match_view_source() {
        let kernel_src = include_str!("../../fw/src/kernel.rs");
        let file = parse_file(kernel_src).expect("kernel.rs parses");
        let at = file
            .functions()
            .into_iter()
            .find(|f| f.name == "at")
            .expect("View::at found in kernel.rs");
        // Interpret `self.offset + i * self.stride + j` with `self` as a
        // view named `v` and i, j as ivars; compare against the rule.
        let mut interp = Interp {
            scopes: vec![BTreeMap::new()],
            loops: Vec::new(),
            accesses: Vec::new(),
            unresolved: Vec::new(),
            notes: Vec::new(),
            mutated: BTreeSet::new(),
            fresh: 0,
        };
        interp.bind("self", Val::View("v".to_string()));
        interp.bind("i", Val::Poly(Poly::ivar("i")));
        interp.bind("j", Val::Poly(Poly::ivar("j")));
        let body = interp.exec_block(&at.body);
        let Val::Poly(from_source) = body else {
            panic!("View::at body must evaluate to a polynomial, got {body:?}")
        };
        let rule = Poly::sym("v.offset")
            .add(&Poly::ivar("i").mul(&Poly::sym("v.stride")).expect("mul"))
            .expect("add")
            .add(&Poly::ivar("j"))
            .expect("add");
        assert_eq!(from_source, rule, "interpreter's at-rule diverges from View::at's source");
    }
}
