//! AST-backed re-implementations of the kernel-file tidy rules.
//!
//! `cachegraph-tidy` checks `kernel-bounds` and `obs-purity` with
//! token-level heuristics over the masked source. For files inside the
//! parsed subset this module re-states the same rules over the real
//! AST, which removes the heuristics' blind spots (string-ish matching
//! of loop headers, per-line subscript scanning) and makes the
//! judgement structural: an index expression either *is* simple
//! additive arithmetic over a range counter or it is not.
//!
//! The token rules stay in tidy as the fallback for files the parser
//! does not cover (no kernel-marked file is outside the subset today —
//! the golden-parse test keeps it that way) and for constructs the AST
//! consumes without structure (`const` initializers, macro bodies).
//! Both passes run in CI; they must agree on the shared fixtures, which
//! the `rules_agree_with_tidy` integration test enforces.

use cachegraph_tidy::config::KERNEL_MARKER;
use cachegraph_tidy::{Diagnostic, SourceFile};

use crate::ast::{BinOp, Block, Expr, ExprKind, File, Pat, Stmt};

/// Rule id shared with the tidy token rule.
pub const KERNEL_BOUNDS: &str = "kernel-bounds";
/// Rule id shared with the tidy token rule.
pub const OBS_PURITY: &str = "obs-purity";

/// Does the file opt in to the kernel rules (`// tidy: kernel`)?
pub fn is_kernel_marked(sf: &SourceFile) -> bool {
    sf.lexed
        .comments
        .iter()
        .any(|c| c.text.trim_start_matches(['/', '!', '*', ' ']).starts_with(KERNEL_MARKER))
}

/// Is this expression simple additive arithmetic (identifiers, integer
/// literals, `+ - *`)? Method calls, fields, ranges and nested indexing
/// disqualify it — those address views and sub-slices, which the rule
/// cannot judge.
fn simple_index(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Ident(_) | ExprKind::Int(_) => true,
        ExprKind::Binary { op: BinOp::Add | BinOp::Sub | BinOp::Mul, lhs, rhs } => {
            simple_index(lhs) && simple_index(rhs)
        }
        _ => false,
    }
}

/// The range counter (from `vars`) this expression mentions, if any.
fn mentioned_var<'v>(e: &Expr, vars: &'v [String]) -> Option<&'v String> {
    let mut found = None;
    e.walk(&mut |sub| {
        if found.is_none() {
            if let ExprKind::Ident(n) = &sub.kind {
                found = vars.iter().find(|v| *v == n);
            }
        }
    });
    found
}

/// Render a simple index expression back to source-ish text for the
/// diagnostic message.
fn render(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Int(Some(v)) => v.to_string(),
        ExprKind::Int(None) => "<int>".to_string(),
        ExprKind::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                _ => "*",
            };
            format!("{} {sym} {}", render(lhs), render(rhs))
        }
        _ => "…".to_string(),
    }
}

/// `kernel-bounds` over the AST: inside a `for <ident> in <range>` loop,
/// flag `recv[<simple additive index mentioning the counter>]`.
pub fn kernel_bounds(sf: &SourceFile, file: &File) -> Vec<Diagnostic> {
    if !is_kernel_marked(sf) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut flagged = std::collections::BTreeSet::new();
    for f in file.functions() {
        if f.cfg_test {
            continue;
        }
        let mut vars = Vec::new();
        walk_block(sf, &f.body, &mut vars, &mut flagged, &mut diags);
    }
    diags.sort_by_key(|d| d.line);
    diags
}

/// Walk a block tracking the active range counters; `vars` grows inside
/// `for <ident> in <range>` bodies and shrinks when a non-range loop
/// shadows a tracked name.
fn walk_block(
    sf: &SourceFile,
    b: &Block,
    vars: &mut Vec<String>,
    flagged: &mut std::collections::BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    for s in &b.stmts {
        match s {
            Stmt::For { pat, iter, body, .. } => {
                check_expr(sf, iter, vars, flagged, diags);
                if let (Pat::Ident(v), ExprKind::Range { .. }) = (pat, &iter.kind) {
                    vars.push(v.clone());
                    walk_block(sf, body, vars, flagged, diags);
                    vars.pop();
                } else {
                    // A non-range loop whose binding shadows a tracked
                    // counter suspends that counter for the body.
                    let saved = vars.clone();
                    vars.retain(|v| !pat.idents().contains(&v.as_str()));
                    walk_block(sf, body, vars, flagged, diags);
                    *vars = saved;
                }
            }
            Stmt::While { cond, body, .. } => {
                check_expr(sf, cond, vars, flagged, diags);
                walk_block(sf, body, vars, flagged, diags);
            }
            Stmt::Loop { body, .. } => walk_block(sf, body, vars, flagged, diags),
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    check_expr(sf, e, vars, flagged, diags);
                }
            }
            Stmt::Semi(e) | Stmt::Expr(e) => check_expr(sf, e, vars, flagged, diags),
            Stmt::Return(Some(e), _) => check_expr(sf, e, vars, flagged, diags),
            Stmt::Return(None, _) | Stmt::BreakContinue(_) | Stmt::Item(_) => {}
        }
    }
}

/// Flag every offending `Index` inside `e` (at most one diagnostic per
/// source line, matching the token rule). Recurses manually rather than
/// via [`Expr::walk`] so nested blocks — which may open or shadow range
/// loops of their own — thread the counter scope correctly.
fn check_expr(
    sf: &SourceFile,
    e: &Expr,
    vars: &mut Vec<String>,
    flagged: &mut std::collections::BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    match &e.kind {
        ExprKind::Index { recv, index } => {
            check_expr(sf, recv, vars, flagged, diags);
            check_expr(sf, index, vars, flagged, diags);
            if matches!(index.kind, ExprKind::Range { .. }) {
                return; // sub-slice selection, not an element access
            }
            if !simple_index(index) {
                return;
            }
            let Some(var) = mentioned_var(index, vars) else { return };
            let line = index.line;
            if flagged.contains(&line) || sf.waived(KERNEL_BOUNDS, line) {
                return;
            }
            let message = format!(
                "indexed access `[{}]` driven by the range counter `{var}`; \
                 iterate the slices (`iter().zip()`) so the bounds check is \
                 structurally elided",
                render(index)
            );
            flagged.insert(line);
            diags.push(Diagnostic { path: sf.rel_path.clone(), line, rule: KERNEL_BOUNDS, message });
        }
        ExprKind::Block(b) => walk_block(sf, b, vars, flagged, diags),
        ExprKind::If { cond, then, els } => {
            check_expr(sf, cond, vars, flagged, diags);
            walk_block(sf, then, vars, flagged, diags);
            if let Some(b) = els {
                walk_block(sf, b, vars, flagged, diags);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            check_expr(sf, scrutinee, vars, flagged, diags);
            for a in arms {
                check_expr(sf, a, vars, flagged, diags);
            }
        }
        ExprKind::Unary(inner)
        | ExprKind::Ref(inner)
        | ExprKind::Cast(inner)
        | ExprKind::Closure(inner)
        | ExprKind::Try(inner) => check_expr(sf, inner, vars, flagged, diags),
        ExprKind::Binary { lhs, rhs, .. }
        | ExprKind::Assign { lhs, rhs }
        | ExprKind::CompoundAssign { lhs, rhs, .. } => {
            check_expr(sf, lhs, vars, flagged, diags);
            check_expr(sf, rhs, vars, flagged, diags);
        }
        ExprKind::Call { callee, args } => {
            check_expr(sf, callee, vars, flagged, diags);
            for a in args {
                check_expr(sf, a, vars, flagged, diags);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            check_expr(sf, recv, vars, flagged, diags);
            for a in args {
                check_expr(sf, a, vars, flagged, diags);
            }
        }
        ExprKind::Field { recv, .. } => check_expr(sf, recv, vars, flagged, diags),
        ExprKind::Range { lo, hi, .. } => {
            for side in [lo, hi].into_iter().flatten() {
                check_expr(sf, side, vars, flagged, diags);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for el in es {
                check_expr(sf, el, vars, flagged, diags);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, el) in fields {
                check_expr(sf, el, vars, flagged, diags);
            }
        }
        ExprKind::Int(_)
        | ExprKind::Lit
        | ExprKind::Ident(_)
        | ExprKind::Path(_)
        | ExprKind::Macro { .. } => {}
    }
}

/// `obs-purity` over the AST: no `use cachegraph_obs::…` and no
/// `cachegraph_obs::…` path expression outside `#[cfg(test)]` code.
pub fn obs_purity(sf: &SourceFile, file: &File) -> Vec<Diagnostic> {
    if !is_kernel_marked(sf) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut push = |sf: &SourceFile, line: usize| {
        if !sf.waived(OBS_PURITY, line) {
            diags.push(Diagnostic {
                path: sf.rel_path.clone(),
                line,
                rule: OBS_PURITY,
                message: "kernel files must not reference `cachegraph_obs`; \
                          instrument the surrounding driver instead"
                    .to_string(),
            });
        }
    };
    for (segments, line, cfg_test) in file.uses() {
        if !cfg_test && segments.iter().any(|s| s == "cachegraph_obs") {
            push(sf, line);
        }
    }
    for f in file.functions() {
        if f.cfg_test {
            continue;
        }
        f.body.walk_exprs(&mut |e| {
            if let ExprKind::Path(segs) = &e.kind {
                if segs.iter().any(|s| s == "cachegraph_obs") {
                    push(sf, e.line);
                }
            }
        });
    }
    diags.sort_by_key(|d| d.line);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use std::path::PathBuf;

    fn sf(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("crates/x/src/lib.rs"), src.to_string())
    }

    #[test]
    fn bounds_flags_counter_subscripts() {
        let src = "// tidy: kernel\n\
                   fn relax(a: &mut [u32], n: usize, base: usize) {\n\
                   for j in 0..n {\n\
                   a[base + j] = 0;\n\
                   }\n\
                   }\n";
        let file = parse_file(src).expect("parses");
        let d = kernel_bounds(&sf(src), &file);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("base + j"), "{}", d[0].message);
    }

    #[test]
    fn bounds_skips_method_and_range_indices() {
        let src = "// tidy: kernel\n\
                   fn k(data: &mut [u32], b: View, size: usize) {\n\
                   for k in 0..size {\n\
                   let x = data[b.at(0, k)];\n\
                   let r = &data[k..k + size];\n\
                   let _ = (x, r);\n\
                   }\n\
                   }\n";
        let file = parse_file(src).expect("parses");
        assert!(kernel_bounds(&sf(src), &file).is_empty());
    }

    #[test]
    fn bounds_respects_shadowing_by_non_range_loops() {
        // The inner `j` iterates a slice, not a range; `a[j]` in the
        // inner body is not counter-driven.
        let src = "// tidy: kernel\n\
                   fn k(a: &mut [u32], xs: &[usize], n: usize) {\n\
                   for j in 0..n {\n\
                   for j in xs.iter().copied() {\n\
                   a[j] = 0;\n\
                   }\n\
                   }\n\
                   }\n";
        let file = parse_file(src).expect("parses");
        assert!(kernel_bounds(&sf(src), &file).is_empty(), "shadowed counter must not flag");
    }

    #[test]
    fn obs_flags_use_and_path_outside_tests() {
        let src = "// tidy: kernel\n\
                   use cachegraph_obs::Registry;\n\
                   fn k() { let _r = cachegraph_obs::Registry::disabled(); }\n\
                   #[cfg(test)]\n\
                   mod tests { use cachegraph_obs::Registry; fn t() { let _ = Registry::new(); } }\n";
        let file = parse_file(src).expect("parses");
        let d = obs_purity(&sf(src), &file);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn unmarked_files_are_exempt() {
        let src = "use cachegraph_obs::Registry;\n\
                   fn k(a: &mut [u32], n: usize) { for j in 0..n { a[j] = 0; } }\n";
        let file = parse_file(src).expect("parses");
        assert!(kernel_bounds(&sf(src), &file).is_empty());
        assert!(obs_purity(&sf(src), &file).is_empty());
    }
}
