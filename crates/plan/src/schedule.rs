//! The generic schedule-exploration engine.
//!
//! A checker re-executes one barrier-delimited phase of a parallel driver
//! over a cloneable state `S` (typically a [`ShadowMem`](crate::shadow))
//! under a deterministic scheduler. Workers and their step sequences
//! mirror the runtime's chunking exactly ([`worker_steps`] matches
//! [`run_tasks`](crate::runtime::run_tasks)); a schedule is a sequence of
//! worker ids, and the scheduler runs the next step of the named worker
//! at each position.
//!
//! Per phase the engine enumerates **every** interleaving when their
//! number is within [`ScheduleOptions::exhaustive_bound`], otherwise it
//! samples seeded-random schedules (`cachegraph-rng`), and checks two
//! things on each: the driver-supplied step function reports no race, and
//! the end-of-phase state equals the canonical (sequential) outcome under
//! the driver-supplied comparator. Any failure is reported with the exact
//! worker sequence, so it replays byte-for-byte.
//!
//! What a *step* is belongs to the driver's checker: one outer-`k` kernel
//! iteration for tiled FW, one frontier vertex for a delta-stepping
//! gather task, one augmentation round for matching, one row for the
//! closure driver. Steps only need to be coarse enough that interleaving
//! below them cannot change what the race bookkeeping sees — true for
//! any shadow that records reader/writer *sets* per unit and phase.

use cachegraph_rng::StdRng;

use crate::shadow::Race;

/// Knobs for per-phase schedule exploration.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOptions {
    /// Enumerate every interleaving of a phase when their count is at
    /// most this; otherwise fall back to seeded-random sampling.
    pub exhaustive_bound: u64,
    /// Sampled schedules per phase in random mode.
    pub samples: usize,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        Self { exhaustive_bound: 20_000, samples: 48 }
    }
}

/// Outcome of exploring one phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseOutcome {
    /// Schedules executed (the canonical run is excluded).
    pub schedules: u64,
    /// False when the phase fell back to sampling.
    pub sampled: bool,
    /// First race observed, with the worker sequence that exhibited it
    /// (the canonical sequence if the race is schedule-independent).
    pub race: Option<(Vec<u16>, Race)>,
    /// First schedule whose end state diverged from the canonical one,
    /// with the diverging unit index reported by the comparator.
    pub mismatch: Option<(Vec<u16>, usize)>,
}

impl PhaseOutcome {
    /// No races and no schedule-dependent results.
    pub fn is_clean(&self) -> bool {
        self.race.is_none() && self.mismatch.is_none()
    }
}

/// Build per-worker step sequences for a phase, mirroring the runtime's
/// chunking: `threads.min(tasks).max(1)` workers, contiguous chunks of
/// `len.div_ceil(workers)` tasks, task `ti` contributing `task_steps[ti]`
/// steps in order. Each step is `(task_index, step_within_task)`.
pub fn worker_steps(task_steps: &[usize], threads: usize) -> Vec<Vec<(usize, usize)>> {
    if task_steps.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(task_steps.len()).max(1);
    let chunk = task_steps.len().div_ceil(threads);
    let mut workers = Vec::new();
    for (w, slice) in task_steps.chunks(chunk).enumerate() {
        let mut steps = Vec::new();
        for (off, &count) in slice.iter().enumerate() {
            let ti = w * chunk + off;
            for k in 0..count {
                steps.push((ti, k));
            }
        }
        workers.push(steps);
    }
    workers
}

/// Execute one schedule from the phase-start state. `step` runs one step
/// of a task against the state and reports the first race it observed;
/// the engine keeps the first race across the whole schedule.
pub fn run_schedule<S: Clone>(
    start: &S,
    workers: &[Vec<(usize, usize)>],
    schedule: &[u16],
    step: &mut impl FnMut(&mut S, usize, usize) -> Option<Race>,
) -> (S, Option<Race>) {
    let mut state = start.clone();
    let mut pos = vec![0usize; workers.len()];
    let mut first = None;
    for &w in schedule {
        let wi = w as usize;
        let (ti, k) = workers[wi][pos[wi]];
        pos[wi] += 1;
        let race = step(&mut state, ti, k);
        if first.is_none() {
            first = race;
        }
    }
    (state, first)
}

/// Number of distinct interleavings of step sequences with the given
/// lengths — the multinomial `(Σc)! / Πc!` — computed as a product of
/// binomials, saturating at `cap + 1` (so `result > cap` means "over").
pub fn interleaving_count(counts: &[usize], cap: u128) -> u128 {
    let mut result: u128 = 1;
    let mut total: u128 = 0;
    for &c in counts {
        let k = c as u128;
        total += k;
        // result *= C(total, k), incrementally (each prefix is integral).
        for i in 1..=k {
            result = result.saturating_mul(total - k + i) / i;
            if result > cap {
                return cap + 1;
            }
        }
    }
    result
}

/// Visit every distinct interleaving of workers with the given remaining
/// step counts, depth-first in worker-id order.
pub fn for_each_interleaving(
    counts: &mut [usize],
    prefix: &mut Vec<u16>,
    visit: &mut impl FnMut(&[u16]),
) {
    let mut exhausted = true;
    for w in 0..counts.len() {
        if counts[w] > 0 {
            exhausted = false;
            counts[w] -= 1;
            prefix.push(w as u16);
            for_each_interleaving(counts, prefix, visit);
            prefix.pop();
            counts[w] += 1;
        }
    }
    if exhausted {
        visit(prefix);
    }
}

/// Draw one uniformly-random schedule over the remaining step counts.
pub fn sample_schedule(counts: &[usize], rng: &mut StdRng) -> Vec<u16> {
    let mut remaining = counts.to_vec();
    let total: usize = remaining.iter().sum();
    let mut schedule = Vec::with_capacity(total);
    for _ in 0..total {
        let live: Vec<usize> =
            (0..remaining.len()).filter(|&w| remaining[w] > 0).collect();
        let w = live[rng.gen_range(0..live.len())];
        remaining[w] -= 1;
        schedule.push(w as u16);
    }
    schedule
}

/// Explore one phase: run the canonical (workers-in-order) schedule
/// first, then enumerate or sample alternatives, comparing each end state
/// to the canonical one with `diff` (which returns a witness unit index
/// when the states differ). Returns the canonical end state — what the
/// barriered driver computes — and the phase outcome. At most one race
/// and one mismatch are recorded; races found on the canonical schedule
/// are schedule-independent (e.g. a merged barrier-omission phase).
///
/// The caller is responsible for the phase barrier on `start` (e.g.
/// [`ShadowMem::begin_phase`](crate::shadow::ShadowMem::begin_phase))
/// before calling.
pub fn explore_phase<S: Clone>(
    start: &S,
    workers: &[Vec<(usize, usize)>],
    opts: &ScheduleOptions,
    rng: &mut StdRng,
    step: &mut impl FnMut(&mut S, usize, usize) -> Option<Race>,
    diff: &mut impl FnMut(&S, &S) -> Option<usize>,
) -> (S, PhaseOutcome) {
    let counts: Vec<usize> = workers.iter().map(Vec::len).collect();
    let mut outcome = PhaseOutcome::default();
    if counts.iter().sum::<usize>() == 0 {
        return (start.clone(), outcome);
    }

    let serial: Vec<u16> = workers
        .iter()
        .enumerate()
        .flat_map(|(w, steps)| std::iter::repeat_n(w as u16, steps.len()))
        .collect();
    let (canonical, canonical_race) = run_schedule(start, workers, &serial, step);
    if let Some(race) = canonical_race {
        outcome.race = Some((serial.clone(), race));
    }

    let mut run_one = |schedule: &[u16], outcome: &mut PhaseOutcome| {
        let (end, race) = run_schedule(start, workers, schedule, step);
        outcome.schedules += 1;
        if let Some(race) = race {
            if outcome.race.is_none() {
                outcome.race = Some((schedule.to_vec(), race));
            }
            return;
        }
        if outcome.mismatch.is_none() {
            if let Some(unit) = diff(&end, &canonical) {
                outcome.mismatch = Some((schedule.to_vec(), unit));
            }
        }
    };

    let total = interleaving_count(&counts, u128::from(opts.exhaustive_bound));
    if total <= u128::from(opts.exhaustive_bound) {
        let mut remaining = counts.clone();
        let mut prefix = Vec::new();
        for_each_interleaving(&mut remaining, &mut prefix, &mut |schedule| {
            run_one(schedule, &mut outcome);
        });
    } else {
        outcome.sampled = true;
        for _ in 0..opts.samples {
            let schedule = sample_schedule(&counts, rng);
            run_one(&schedule, &mut outcome);
        }
    }
    (canonical, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::{RaceKind, ShadowMem};

    #[test]
    fn interleaving_counts_are_multinomials() {
        assert_eq!(interleaving_count(&[4, 4], 1_000_000), 70); // C(8,4)
        assert_eq!(interleaving_count(&[1, 1, 1], 1_000_000), 6); // 3!
        assert_eq!(interleaving_count(&[5], 1_000_000), 1);
        assert_eq!(interleaving_count(&[], 1_000_000), 1);
        // Saturates just above the cap instead of overflowing.
        assert_eq!(interleaving_count(&[40, 40, 40], 100), 101);
    }

    #[test]
    fn enumeration_visits_each_interleaving_once() {
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0u64;
        let mut prefix = Vec::new();
        for_each_interleaving(&mut [2, 2], &mut prefix, &mut |s| {
            count += 1;
            assert!(seen.insert(s.to_vec()), "duplicate schedule {s:?}");
        });
        assert_eq!(count, 6); // C(4,2)
    }

    #[test]
    fn sampled_schedules_are_valid_permutations() {
        let mut rng = StdRng::seed_from_u64(7);
        let counts = [3usize, 2, 4];
        for _ in 0..20 {
            let s = sample_schedule(&counts, &mut rng);
            assert_eq!(s.len(), 9);
            for (w, &c) in counts.iter().enumerate() {
                assert_eq!(s.iter().filter(|&&x| x as usize == w).count(), c);
            }
        }
    }

    #[test]
    fn worker_steps_mirror_runtime_chunking() {
        // 5 tasks over 2 threads: chunks of 3 and 2, steps in task order.
        let w = worker_steps(&[1, 2, 1, 1, 1], 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], vec![(0, 0), (1, 0), (1, 1), (2, 0)]);
        assert_eq!(w[1], vec![(3, 0), (4, 0)]);
        // More threads than tasks: one task per worker.
        let w = worker_steps(&[2, 2], 8);
        assert_eq!(w.len(), 2);
        // No tasks: no workers.
        assert!(worker_steps(&[], 4).is_empty());
    }

    /// Disjoint increments: every schedule must agree and race-free.
    #[test]
    fn disjoint_tasks_explore_clean() {
        let shadow = ShadowMem::new(vec![0u32; 4]);
        let workers = worker_steps(&[2, 2], 2);
        let mut rng = StdRng::seed_from_u64(1);
        let (end, outcome) = explore_phase(
            &shadow,
            &workers,
            &ScheduleOptions::default(),
            &mut rng,
            &mut |s, ti, k| {
                let idx = ti * 2 + k;
                let (v, r1) = s.read(idx, ti as u16);
                let r2 = s.write(idx, ti as u16, v + 1);
                r1.or(r2)
            },
            &mut |a, b| a.values().iter().zip(b.values()).position(|(x, y)| x != y),
        );
        assert!(outcome.is_clean(), "{outcome:?}");
        assert!(!outcome.sampled);
        assert_eq!(outcome.schedules, 6); // C(4,2)
        assert_eq!(end.values(), &[1, 1, 1, 1]);
    }

    /// Two tasks writing one unit: raced on every schedule, including
    /// the canonical one.
    #[test]
    fn conflicting_tasks_are_flagged_on_the_canonical_schedule() {
        let shadow = ShadowMem::new(vec![0u32]);
        let workers = worker_steps(&[1, 1], 2);
        let mut rng = StdRng::seed_from_u64(2);
        let (_, outcome) = explore_phase(
            &shadow,
            &workers,
            &ScheduleOptions::default(),
            &mut rng,
            &mut |s, ti, _| s.write(0, ti as u16, ti as u32),
            &mut |a, b| a.values().iter().zip(b.values()).position(|(x, y)| x != y),
        );
        let (schedule, race) = outcome.race.expect("must race");
        assert_eq!(schedule, vec![0, 1], "flagged on the canonical schedule");
        assert_eq!(race.kind, RaceKind::WriteWrite);
    }

    /// Empty phase: no schedules, clean.
    #[test]
    fn empty_phase_is_a_no_op() {
        let shadow = ShadowMem::new(vec![7u32]);
        let mut rng = StdRng::seed_from_u64(3);
        let (end, outcome) = explore_phase(
            &shadow,
            &[],
            &ScheduleOptions::default(),
            &mut rng,
            &mut |_s: &mut ShadowMem<u32>, _, _| None,
            &mut |_, _| None,
        );
        assert!(outcome.is_clean());
        assert_eq!(outcome.schedules, 0);
        assert_eq!(end.values(), &[7]);
    }
}
