//! The `TaskGraph` runtime: the PR 5 model-checking shape, generalized.
//!
//! `fw::parallel` established a discipline the rest of the repo now
//! reuses: a *pure planner* emits phases of tasks, each task declares a
//! read and a write *footprint*, and three independent machines check the
//! same disjointness argument the driver's `SAFETY:` comments (or safe
//! split-borrow structure) rely on:
//!
//! 1. [`footprint`] — set arithmetic over the declared footprints: within
//!    one phase, write sets are pairwise disjoint and no read set meets
//!    another task's write set ([`TaskGraph::check_disjoint`]);
//! 2. [`shadow`] — an epoch-stamped shadow memory that re-executes the
//!    driver's semantics and flags every same-phase conflicting access
//!    pair, on *any* schedule that runs the pair in one phase;
//! 3. [`schedule`] — a deterministic scheduler that enumerates (or
//!    seeded-samples) worker interleavings of a phase, checking each for
//!    races and for schedule-dependent results.
//!
//! The FW driver's footprints are flat matrix-cell ranges; delta-stepping
//! Dijkstra uses vertex and proposal-slot ids; partitioned matching uses
//! mate-array entries; the boolean closure driver uses bit-row words.
//! Everything here is generic over that choice: a footprint is just an
//! ordered set of opaque units, and the shadow memory is generic over the
//! stored value type.
//!
//! [`runtime`] is the execution half: the exact scoped-thread chunking
//! the checkers model (`threads.min(tasks).max(1)` workers, contiguous
//! chunks of `len.div_ceil(threads)` tasks), shared by every parallel
//! driver so the modeled schedule space and the executed schedule space
//! cannot drift apart.

pub mod footprint;
pub mod record;
pub mod runtime;
pub mod schedule;
pub mod shadow;

pub use footprint::{
    phase_overlaps, Overlap, OverlapKind, PhasePlan, TaskFootprint, TaskGraph,
    TaskGraphViolation, Unit,
};
pub use record::{NoSink, UnitRecorder, UnitSink};
pub use runtime::{run_tasks, run_tasks_mut, worker_count};
pub use schedule::{
    explore_phase, for_each_interleaving, interleaving_count, run_schedule, sample_schedule,
    worker_steps, PhaseOutcome, ScheduleOptions,
};
pub use shadow::{Race, RaceKind, ShadowMem};
