//! The scoped-thread task executor every parallel driver shares.
//!
//! One phase = one call: tasks are split into `threads.min(len).max(1)`
//! contiguous chunks of `len.div_ceil(workers)` tasks, one scoped thread
//! per chunk, and the call returns only when every worker has joined —
//! that join *is* the phase barrier the checkers model. The chunking here
//! and [`schedule::worker_steps`](crate::schedule::worker_steps) are the
//! same arithmetic on purpose: the schedule space the explorer enumerates
//! is exactly the schedule space this executor can produce.
//!
//! Two entry points cover the drivers' borrow shapes:
//!
//! * [`run_tasks`] — workers share `&[T]` and a `Fn(&T)` body; state is
//!   reached through the body's captures (tiled FW's raw-pointer
//!   [`SharedStorage`]-style handle).
//! * [`run_tasks_mut`] — each task *owns* its payload (`&mut T`), which
//!   carries disjoint mutable borrows carved out beforehand
//!   (`split_at_mut`, per-task output vectors); the body never needs
//!   `unsafe`. Delta-stepping, matching, and the closure driver use this.
//!
//! With one worker both entry points degenerate to an inline loop on the
//! calling thread — no spawn, and bit-identical to the parallel path by
//! the same disjointness argument the checkers prove.

/// Workers a phase of `tasks` tasks runs on: `threads.min(tasks).max(1)`.
pub fn worker_count(tasks: usize, threads: usize) -> usize {
    threads.min(tasks).max(1)
}

/// Run `tasks` across scoped workers; `run` is invoked once per task,
/// in chunk order within each worker.
pub fn run_tasks<T: Sync, F: Fn(&T) + Sync>(tasks: &[T], threads: usize, run: F) {
    if tasks.is_empty() {
        return;
    }
    let workers = worker_count(tasks.len(), threads);
    if workers == 1 {
        for t in tasks {
            run(t);
        }
        return;
    }
    let chunk = tasks.len().div_ceil(workers);
    std::thread::scope(|s| {
        for slice in tasks.chunks(chunk) {
            let run = &run;
            s.spawn(move || {
                for t in slice {
                    run(t);
                }
            });
        }
    });
}

/// Run `tasks` across scoped workers with each task exclusively owning
/// its payload; `run` is invoked as `run(task_index, &mut task)`, in
/// chunk order within each worker.
pub fn run_tasks_mut<T: Send, F: Fn(usize, &mut T) + Sync>(
    tasks: &mut [T],
    threads: usize,
    run: F,
) {
    if tasks.is_empty() {
        return;
    }
    let workers = worker_count(tasks.len(), threads);
    if workers == 1 {
        for (i, t) in tasks.iter_mut().enumerate() {
            run(i, t);
        }
        return;
    }
    let chunk = tasks.len().div_ceil(workers);
    std::thread::scope(|s| {
        for (w, slice) in tasks.chunks_mut(chunk).enumerate() {
            let run = &run;
            s.spawn(move || {
                for (off, t) in slice.iter_mut().enumerate() {
                    run(w * chunk + off, t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn worker_counts() {
        assert_eq!(worker_count(10, 4), 4);
        assert_eq!(worker_count(2, 4), 2);
        assert_eq!(worker_count(0, 4), 1);
        assert_eq!(worker_count(10, 0), 1);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        for threads in [1, 2, 3, 7, 64] {
            let tasks: Vec<usize> = (0..13).collect();
            let hits: Vec<AtomicUsize> = (0..13).map(|_| AtomicUsize::new(0)).collect();
            run_tasks(&tasks, threads, |&t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {t} threads {threads}");
            }
        }
    }

    #[test]
    fn mut_tasks_see_their_own_payload_and_index() {
        for threads in [1, 2, 5, 16] {
            let mut tasks: Vec<(usize, usize)> = (0..9).map(|i| (i, 0)).collect();
            run_tasks_mut(&mut tasks, threads, |i, t| {
                assert_eq!(i, t.0, "index matches payload position");
                t.1 = i * 10;
            });
            for (i, t) in tasks.iter().enumerate() {
                assert_eq!(t.1, i * 10, "threads {threads}");
            }
        }
    }

    #[test]
    fn empty_task_lists_are_a_no_op() {
        run_tasks::<usize, _>(&[], 4, |_| unreachable!("no tasks"));
        run_tasks_mut::<usize, _>(&mut [], 4, |_, _| unreachable!("no tasks"));
    }
}
