//! Declared footprints and the generic disjointness oracle.
//!
//! A *footprint domain* is whatever a solver's tasks contend over: flat
//! matrix cells for tiled FW, vertex ids and proposal slots for
//! delta-stepping, mate-array entries for matching, bit-row words for the
//! boolean closure. The oracle does not care — [`phase_overlaps`] is set
//! arithmetic over any ordered unit type, and [`TaskGraph`] fixes the
//! concrete domain to opaque `u64` units so whole plans can be shipped to
//! `cachegraph-check` uniformly.
//!
//! The claims proven per phase are exactly the PR 5 ones:
//!
//! 1. write footprints are pairwise disjoint (each unit is written by at
//!    most one task per phase), and
//! 2. no task's read footprint intersects another task's write footprint
//!    (everything a task reads is stable for the whole phase).

use std::collections::BTreeSet;
use std::fmt;

/// Opaque footprint unit: each solver defines its own encoding (cell
/// index, vertex id, `n + slot`, row word, ...).
pub type Unit = u64;

/// One task's declared read/write footprint.
#[derive(Clone, Debug, Default)]
pub struct TaskFootprint {
    /// Units the task may read.
    pub reads: BTreeSet<Unit>,
    /// Units the task may write.
    pub writes: BTreeSet<Unit>,
}

/// One barrier-delimited phase: tasks that may run concurrently.
#[derive(Clone, Debug)]
pub struct PhasePlan {
    /// Phase name, e.g. `"phase2"`, `"gather"`, `"local"`.
    pub name: String,
    /// Declared footprints, indexed by task id within the phase.
    pub tasks: Vec<TaskFootprint>,
}

/// An ordered sequence of phases with declared footprints — the pure
/// data a parallel driver executes and the checkers reason about.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    /// The solver the plan belongs to, e.g. `"delta-dijkstra"`.
    pub solver: String,
    /// Phases in barrier order.
    pub phases: Vec<PhasePlan>,
}

/// How two task footprints illegally overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlapKind {
    /// Two tasks of one phase may write a common unit.
    WriteWrite,
    /// One task may read a unit another task of the same phase writes.
    ReadWrite,
}

impl fmt::Display for OverlapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlapKind::WriteWrite => write!(f, "write/write"),
            OverlapKind::ReadWrite => write!(f, "read/write"),
        }
    }
}

/// One overlap between two tasks of a phase, with a witness unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overlap<T> {
    /// Which disjointness claim is broken.
    pub kind: OverlapKind,
    /// Index of the writing task within the phase's task list.
    pub writer: usize,
    /// Index of the other (writing or reading) task.
    pub other: usize,
    /// One witness unit in the overlap.
    pub unit: T,
}

/// Check one phase given each task's footprint as bare `(reads, writes)`
/// unit sets; returns every overlap found (empty = disjointness proven
/// for this phase).
///
/// At most one witness is reported per ordered task pair and claim: a
/// write/write overlap for each unordered pair `{x, y}` (reported with
/// `writer < other`), and a read/write overlap for each ordered pair
/// `(writer, reader)`.
pub fn phase_overlaps<T: Ord + Copy>(
    footprints: &[(BTreeSet<T>, BTreeSet<T>)],
) -> Vec<Overlap<T>> {
    let reads: Vec<&BTreeSet<T>> = footprints.iter().map(|(r, _)| r).collect();
    let writes: Vec<&BTreeSet<T>> = footprints.iter().map(|(_, w)| w).collect();
    let mut out = Vec::new();
    for x in 0..footprints.len() {
        for y in 0..footprints.len() {
            if x == y {
                continue;
            }
            if x < y {
                if let Some(&unit) = writes[x].intersection(writes[y]).next() {
                    out.push(Overlap { kind: OverlapKind::WriteWrite, writer: x, other: y, unit });
                }
            }
            if let Some(&unit) = writes[x].intersection(reads[y]).next() {
                out.push(Overlap { kind: OverlapKind::ReadWrite, writer: x, other: y, unit });
            }
        }
    }
    out
}

/// One disjointness violation in a [`TaskGraph`].
#[derive(Clone, Debug)]
pub struct TaskGraphViolation {
    /// The owning solver.
    pub solver: String,
    /// Phase name.
    pub phase: String,
    /// Phase index within the graph.
    pub phase_index: usize,
    /// The offending overlap.
    pub overlap: Overlap<Unit>,
}

impl fmt::Display for TaskGraphViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} (phase {}): {} overlap between tasks {} and {} at unit {}",
            self.solver,
            self.phase,
            self.phase_index,
            self.overlap.kind,
            self.overlap.writer,
            self.overlap.other,
            self.overlap.unit
        )
    }
}

impl TaskGraph {
    /// An empty plan for `solver`.
    pub fn new(solver: impl Into<String>) -> Self {
        Self { solver: solver.into(), phases: Vec::new() }
    }

    /// Append a phase.
    pub fn push_phase(&mut self, name: impl Into<String>, tasks: Vec<TaskFootprint>) {
        self.phases.push(PhasePlan { name: name.into(), tasks });
    }

    /// Total task count across phases.
    pub fn task_count(&self) -> usize {
        self.phases.iter().map(|p| p.tasks.len()).sum()
    }

    /// Prove (or refute) both per-phase disjointness claims for every
    /// phase. Empty result = the whole plan is conflict-free under the
    /// barriers it declares.
    pub fn check_disjoint(&self) -> Vec<TaskGraphViolation> {
        let mut out = Vec::new();
        for (phase_index, phase) in self.phases.iter().enumerate() {
            let footprints: Vec<(BTreeSet<Unit>, BTreeSet<Unit>)> = phase
                .tasks
                .iter()
                .map(|t| (t.reads.clone(), t.writes.clone()))
                .collect();
            for overlap in phase_overlaps(&footprints) {
                out.push(TaskGraphViolation {
                    solver: self.solver.clone(),
                    phase: phase.name.clone(),
                    phase_index,
                    overlap,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(units: &[u64]) -> BTreeSet<u64> {
        units.iter().copied().collect()
    }

    #[test]
    fn disjoint_phase_is_clean() {
        let fp = vec![
            (set(&[0, 1]), set(&[10, 11])),
            (set(&[0, 1]), set(&[12, 13])),
        ];
        assert!(phase_overlaps(&fp).is_empty());
    }

    #[test]
    fn write_write_overlap_is_reported_once_per_pair() {
        let fp = vec![(set(&[]), set(&[5, 6])), (set(&[]), set(&[6, 7]))];
        let v = phase_overlaps(&fp);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, OverlapKind::WriteWrite);
        assert_eq!((v[0].writer, v[0].other, v[0].unit), (0, 1, 6));
    }

    #[test]
    fn read_write_overlap_names_the_writer() {
        let fp = vec![(set(&[9]), set(&[1])), (set(&[2]), set(&[9]))];
        let v = phase_overlaps(&fp);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, OverlapKind::ReadWrite);
        // Task 1 writes unit 9, task 0 reads it.
        assert_eq!((v[0].writer, v[0].other, v[0].unit), (1, 0, 9));
    }

    #[test]
    fn task_graph_check_walks_every_phase() {
        let mut g = TaskGraph::new("toy");
        g.push_phase(
            "clean",
            vec![
                TaskFootprint { reads: set(&[0]), writes: set(&[1]) },
                TaskFootprint { reads: set(&[0]), writes: set(&[2]) },
            ],
        );
        g.push_phase(
            "broken",
            vec![
                TaskFootprint { reads: set(&[]), writes: set(&[3]) },
                TaskFootprint { reads: set(&[3]), writes: set(&[4]) },
            ],
        );
        assert_eq!(g.task_count(), 4);
        let v = g.check_disjoint();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].phase, "broken");
        assert_eq!(v[0].phase_index, 1);
        assert_eq!(v[0].overlap.kind, OverlapKind::ReadWrite);
        assert!(v[0].to_string().contains("toy broken"));
    }
}
