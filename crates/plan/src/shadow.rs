//! Epoch-stamped shadow memory, generic over the stored value.
//!
//! Where a real driver shares one allocation (through raw pointers, or
//! through disjoint safe borrows), a checker re-executes its semantics
//! over this shadow: plain values plus, per unit, the phase epoch of the
//! last write and the set of tasks that read or wrote the unit *in the
//! current phase*. Any same-phase conflicting access — two writers, a
//! read of a concurrently written unit, or a write of a concurrently read
//! unit — is reported at the access that completes the conflict. Because
//! both orders of a conflicting pair are detected (reader-first via the
//! writer's check of the reader set, writer-first via the reader's check
//! of the writer stamp), a race is flagged on *every* schedule that runs
//! the conflicting tasks in one phase, not just the interleavings that
//! actually corrupt a value.
//!
//! The FW checker instantiates `V = Weight` over matrix cells; the
//! delta-stepping checker uses distance/predecessor pairs and proposal
//! slots; the matching checker uses mate entries; the closure checker
//! uses bit-row words.

/// How a pair of same-phase accesses conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two tasks wrote the same unit in one phase.
    WriteWrite,
    /// A task read a unit another task of the same phase writes.
    ReadOfConcurrentWrite,
    /// A task wrote a unit another task of the same phase already read.
    WriteAfterRead,
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write/write"),
            RaceKind::ReadOfConcurrentWrite => write!(f, "read of concurrently written cell"),
            RaceKind::WriteAfterRead => write!(f, "write of concurrently read cell"),
        }
    }
}

/// One detected race: `task`'s access conflicted with `other`'s earlier
/// same-phase access to `unit`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    /// Conflict flavor.
    pub kind: RaceKind,
    /// Flat shadow index of the contended unit.
    pub unit: usize,
    /// Task performing the access that completed the conflict.
    pub task: u16,
    /// Task whose earlier access it conflicts with.
    pub other: u16,
}

/// Shadow of a driver's shared state with per-unit epoch stamps and
/// current-phase access bookkeeping. Cloning snapshots the full state,
/// which is how the explorer rewinds to a phase start between schedules.
#[derive(Clone)]
pub struct ShadowMem<V> {
    values: Vec<V>,
    /// Phase epoch of the last write per unit (0 = initial load).
    write_epoch: Vec<u64>,
    /// Task that wrote the unit in the current phase, if any.
    phase_writer: Vec<Option<u16>>,
    /// Tasks that read the unit in the current phase. Task counts per
    /// phase are tiny, so a plain Vec beats a set.
    phase_readers: Vec<Vec<u16>>,
    /// Units touched this phase — makes `begin_phase` O(touched).
    touched: Vec<usize>,
    epoch: u64,
}

impl<V: Copy> ShadowMem<V> {
    /// Shadow an initial value snapshot (epoch 0, no phase active).
    pub fn new(values: Vec<V>) -> Self {
        let len = values.len();
        Self {
            values,
            write_epoch: vec![0; len],
            phase_writer: vec![None; len],
            phase_readers: vec![Vec::new(); len],
            touched: Vec::new(),
            epoch: 0,
        }
    }

    /// Start the next phase: bump the epoch and clear the per-phase
    /// reader/writer bookkeeping (the barrier the real driver gets from
    /// joining its scoped threads).
    pub fn begin_phase(&mut self) {
        self.epoch += 1;
        for &idx in &self.touched {
            self.phase_writer[idx] = None;
            self.phase_readers[idx].clear();
        }
        self.touched.clear();
    }

    /// Current phase epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shadowed unit values.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Read `idx` as `task`. Reports a race if another task of the
    /// current phase has written the unit.
    pub fn read(&mut self, idx: usize, task: u16) -> (V, Option<Race>) {
        let race = match self.phase_writer[idx] {
            Some(w) if w != task => Some(Race {
                kind: RaceKind::ReadOfConcurrentWrite,
                unit: idx,
                task,
                other: w,
            }),
            _ => None,
        };
        if !self.phase_readers[idx].contains(&task) {
            if self.phase_readers[idx].is_empty() && self.phase_writer[idx].is_none() {
                self.touched.push(idx);
            }
            self.phase_readers[idx].push(task);
        }
        (self.values[idx], race)
    }

    /// Write `v` to `idx` as `task`. Reports a race if another task of
    /// the current phase has written or read the unit.
    pub fn write(&mut self, idx: usize, task: u16, v: V) -> Option<Race> {
        let race = match self.phase_writer[idx] {
            Some(w) if w != task => {
                Some(Race { kind: RaceKind::WriteWrite, unit: idx, task, other: w })
            }
            _ => self
                .phase_readers[idx]
                .iter()
                .find(|&&r| r != task)
                .map(|&r| Race { kind: RaceKind::WriteAfterRead, unit: idx, task, other: r }),
        };
        if self.phase_readers[idx].is_empty() && self.phase_writer[idx].is_none() {
            self.touched.push(idx);
        }
        self.phase_writer[idx] = Some(task);
        self.write_epoch[idx] = self.epoch;
        self.values[idx] = v;
        race
    }

    /// Epoch of the last write to `idx` (0 = never written since load).
    pub fn last_write_epoch(&self, idx: usize) -> u64 {
        self.write_epoch[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_task_rmw_is_clean() {
        let mut s = ShadowMem::new(vec![1u32, 2, 3]);
        s.begin_phase();
        let (v, race) = s.read(0, 0);
        assert_eq!((v, race), (1, None));
        assert_eq!(s.write(0, 0, 9), None);
        let (v, race) = s.read(0, 0);
        assert_eq!((v, race), (9, None));
    }

    #[test]
    fn two_writers_race_in_both_orders() {
        let mut s = ShadowMem::new(vec![0u32]);
        s.begin_phase();
        assert_eq!(s.write(0, 0, 1), None);
        let race = s.write(0, 1, 2).expect("second writer must race");
        assert_eq!(race.kind, RaceKind::WriteWrite);
        assert_eq!((race.task, race.other), (1, 0));
    }

    #[test]
    fn read_write_conflicts_detected_regardless_of_order() {
        // Writer first, reader second.
        let mut s = ShadowMem::new(vec![0u32]);
        s.begin_phase();
        assert_eq!(s.write(0, 0, 1), None);
        let (_, race) = s.read(0, 1);
        assert_eq!(race.map(|r| r.kind), Some(RaceKind::ReadOfConcurrentWrite));

        // Reader first, writer second: still caught, at the write.
        let mut s = ShadowMem::new(vec![0u32]);
        s.begin_phase();
        let (_, race) = s.read(0, 1);
        assert_eq!(race, None);
        let race = s.write(0, 0, 1).expect("writer must see the earlier reader");
        assert_eq!(race.kind, RaceKind::WriteAfterRead);
    }

    #[test]
    fn barrier_clears_the_conflict() {
        let mut s = ShadowMem::new(vec![0u32]);
        s.begin_phase();
        assert_eq!(s.write(0, 0, 1), None);
        s.begin_phase(); // the barrier
        let (v, race) = s.read(0, 1);
        assert_eq!((v, race), (1, None), "cross-phase read of a stable unit is fine");
        assert_eq!(s.last_write_epoch(0), 1);
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn non_weight_value_types_work() {
        // The delta-stepping checker shadows (dist, pred) pairs.
        let mut s = ShadowMem::new(vec![(u32::MAX, u32::MAX); 2]);
        s.begin_phase();
        assert_eq!(s.write(1, 3, (7, 0)), None);
        let (v, race) = s.read(1, 3);
        assert_eq!((v, race), ((7, 0), None));
    }
}
