//! Dynamic footprint recording over opaque units.
//!
//! The unit-domain counterpart of `cachegraph-fw`'s `RecordingAccess`:
//! a driver whose task bodies are generic over a [`UnitSink`] can run
//! the *same* code once with [`NoSink`] (production, every hook inlines
//! to nothing) and once with [`UnitRecorder`] (tests), yielding the set
//! of units the task actually touched. The differential footprint tests
//! compare that recording against the plan-declared
//! [`TaskFootprint`](crate::footprint::TaskFootprint) — the second leg
//! of the three-way evidence (statically inferred ⊆ declared ⊇
//! dynamically recorded).

use std::collections::BTreeSet;

use crate::footprint::{TaskFootprint, Unit};

/// Observer for a task body's unit-level reads and writes.
pub trait UnitSink {
    /// The task read `unit`.
    fn read(&mut self, unit: Unit);
    /// The task wrote `unit`.
    fn write(&mut self, unit: Unit);
}

/// The production sink: both hooks compile to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSink;

impl UnitSink for NoSink {
    #[inline(always)]
    fn read(&mut self, _unit: Unit) {}
    #[inline(always)]
    fn write(&mut self, _unit: Unit) {}
}

/// Records every unit touched, deduplicated.
#[derive(Clone, Debug, Default)]
pub struct UnitRecorder {
    /// Units read at least once.
    pub reads: BTreeSet<Unit>,
    /// Units written at least once.
    pub writes: BTreeSet<Unit>,
}

impl UnitRecorder {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recording as a footprint, for direct comparison against a
    /// declared [`TaskFootprint`].
    pub fn to_footprint(&self) -> TaskFootprint {
        TaskFootprint { reads: self.reads.clone(), writes: self.writes.clone() }
    }

    /// True when every recorded access lies inside `declared`.
    pub fn within(&self, declared: &TaskFootprint) -> bool {
        self.reads.is_subset(&declared.reads) && self.writes.is_subset(&declared.writes)
    }
}

impl UnitSink for UnitRecorder {
    fn read(&mut self, unit: Unit) {
        self.reads.insert(unit);
    }
    fn write(&mut self, unit: Unit) {
        self.writes.insert(unit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_dedupes_and_compares() {
        let mut r = UnitRecorder::new();
        r.read(3);
        r.read(3);
        r.write(5);
        assert_eq!(r.reads.len(), 1);
        let mut declared = TaskFootprint::default();
        declared.reads.insert(3);
        declared.writes.insert(5);
        assert!(r.within(&declared));
        r.write(6);
        assert!(!r.within(&declared));
        assert_eq!(r.to_footprint().writes.len(), 2);
    }

    #[test]
    fn no_sink_is_inert() {
        let mut s = NoSink;
        s.read(1);
        s.write(2);
    }
}
