//! Ford-Fulkerson maximum flow (Edmonds-Karp BFS variant) — the extension
//! the paper's conclusion points at: "the Ford-Fulkerson algorithm shares
//! the same structure with the matching algorithm. It iteratively finds an
//! augmenting path; thus the optimization for the matching algorithm can
//! be directly applied to it."

use cachegraph_graph::{Edge, VertexId};

/// A flow network on adjacency arrays with explicit residual arcs.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Arc targets.
    to: Vec<VertexId>,
    /// Residual capacities; arc `i ^ 1` is the reverse of arc `i`.
    cap: Vec<u64>,
    /// CSR offsets into `to`/`cap` per vertex (arc ids, built after all
    /// arcs are added).
    head: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// Empty network on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { to: Vec::new(), cap: Vec::new(), head: vec![Vec::new(); n] }
    }

    /// Add a directed arc `u -> v` with capacity `c` (plus its residual).
    pub fn add_arc(&mut self, u: VertexId, v: VertexId, c: u64) {
        let id = self.to.len() as u32;
        self.to.push(v);
        self.cap.push(c);
        self.head[u as usize].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.head[v as usize].push(id + 1);
    }

    /// Edmonds-Karp: max flow from `s` to `t`.
    pub fn max_flow(&mut self, s: VertexId, t: VertexId) -> u64 {
        assert_ne!(s, t, "source equals sink");
        let n = self.head.len();
        let mut flow = 0u64;
        let mut pred_arc = vec![u32::MAX; n];
        loop {
            // BFS for the shortest augmenting path in the residual graph.
            pred_arc.fill(u32::MAX);
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            let mut reached = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &a in &self.head[u as usize] {
                    let v = self.to[a as usize];
                    if self.cap[a as usize] > 0 && pred_arc[v as usize] == u32::MAX && v != s {
                        pred_arc[v as usize] = a;
                        if v == t {
                            reached = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !reached {
                return flow;
            }
            // Bottleneck along the path.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let a = pred_arc[v as usize] as usize;
                bottleneck = bottleneck.min(self.cap[a]);
                v = self.to[a ^ 1];
            }
            // Apply.
            let mut v = t;
            while v != s {
                let a = pred_arc[v as usize] as usize;
                self.cap[a] -= bottleneck;
                self.cap[a ^ 1] += bottleneck;
                v = self.to[a ^ 1];
            }
            flow += bottleneck;
        }
    }
}

/// Maximum bipartite matching *via* max flow: source -> left (cap 1),
/// bipartite edges (cap 1), right -> sink (cap 1). An independent second
/// oracle for the matching implementations, exactly the reduction the
/// paper's OLAP citation uses.
pub fn matching_by_flow(n: usize, n_left: usize, edges: &[Edge]) -> u64 {
    let s = n as VertexId;
    let t = (n + 1) as VertexId;
    let mut net = FlowNetwork::new(n + 2);
    for u in 0..n_left as VertexId {
        net.add_arc(s, u, 1);
    }
    for v in n_left as VertexId..n as VertexId {
        net.add_arc(v, t, 1);
    }
    for e in edges {
        if (e.from as usize) < n_left {
            net.add_arc(e.from, e.to, 1);
        }
    }
    net.max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augmenting::{find_matching, Matching};
    use cachegraph_graph::{generators, AdjacencyArray};

    #[test]
    fn classic_flow_network() {
        // CLRS-style example.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(0, 2, 2);
        net.add_arc(1, 2, 5);
        net.add_arc(1, 3, 2);
        net.add_arc(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck_is_respected() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 10);
        net.add_arc(1, 2, 1);
        assert_eq!(net.max_flow(0, 2), 1);
    }

    #[test]
    fn disconnected_has_zero_flow() {
        let mut net = FlowNetwork::new(2);
        assert_eq!(net.max_flow(0, 1), 0);
    }

    #[test]
    fn flow_matches_matching_on_random_bipartite() {
        for seed in 0..6 {
            let b = generators::random_bipartite(40, 0.1, seed);
            let g = AdjacencyArray::from_edges(40, b.edges());
            let m = find_matching(&g, 20, Matching::empty(40));
            let f = matching_by_flow(40, 20, b.edges());
            assert_eq!(m.size as u64, f, "seed {seed}");
        }
    }

    #[test]
    fn residual_arcs_allow_rerouting() {
        // Flow must reroute through the residual arc to achieve 2.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 1, 1); // tempting detour
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }
}
