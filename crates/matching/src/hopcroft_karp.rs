//! Hopcroft-Karp maximum bipartite matching — an independent `O(E·√V)`
//! oracle used to validate the augmenting-path implementations.

use cachegraph_graph::{Graph, VertexId};

use crate::augmenting::Matching;
use crate::FREE;

const INF_DIST: u32 = u32::MAX;

/// Hopcroft-Karp over the crate's bipartite convention (left `0..n_left`).
pub fn hopcroft_karp<G: Graph>(g: &G, n_left: usize) -> Matching {
    let n = g.num_vertices();
    let mut m = Matching::empty(n);
    let mut dist = vec![INF_DIST; n_left];
    let mut queue: Vec<VertexId> = Vec::with_capacity(n_left);

    loop {
        // BFS phase: layer the free left vertices.
        queue.clear();
        for (u, d) in dist.iter_mut().enumerate().take(n_left) {
            if m.mate[u] == FREE {
                *d = 0;
                queue.push(u as VertexId);
            } else {
                *d = INF_DIST;
            }
        }
        let mut found_free_right = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for (r, _) in g.neighbors(u) {
                let rm = m.mate[r as usize];
                if rm == FREE {
                    found_free_right = true;
                } else if dist[rm as usize] == INF_DIST {
                    dist[rm as usize] = dist[u as usize] + 1;
                    queue.push(rm);
                }
            }
        }
        if !found_free_right {
            break;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths.
        for u in 0..n_left as VertexId {
            if m.mate[u as usize] == FREE {
                dfs(g, u, &mut m, &mut dist);
            }
        }
    }
    m.recount(n_left);
    m
}

fn dfs<G: Graph>(g: &G, u: VertexId, m: &mut Matching, dist: &mut [u32]) -> bool {
    for (r, _) in g.neighbors(u) {
        let rm = m.mate[r as usize];
        let advance = if rm == FREE {
            true
        } else { dist[rm as usize] == dist[u as usize] + 1 && dfs(g, rm, m, dist) };
        if advance {
            m.mate[u as usize] = r;
            m.mate[r as usize] = u;
            return true;
        }
    }
    dist[u as usize] = INF_DIST; // dead end: prune for this phase
    false
}

// `hopcroft_karp` mutates mates directly; the size is recomputed once at
// the end rather than tracked per augmentation.
impl Matching {
    /// Recount `size` from the mate array (left-side pairs).
    pub(crate) fn recount(&mut self, n_left: usize) {
        self.size = self.mate[..n_left].iter().filter(|&&x| x != FREE).count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_matching;
    use cachegraph_graph::{generators, EdgeListBuilder};

    #[test]
    fn perfect_matching_found() {
        let mut b = EdgeListBuilder::new(6);
        b.add_undirected(0, 3, 1)
            .add_undirected(0, 4, 1)
            .add_undirected(1, 3, 1)
            .add_undirected(2, 5, 1)
            .add_undirected(1, 5, 1);
        let m = hopcroft_karp(&b.build_array(), 3);
        assert_eq!(m.size, 3);
    }

    #[test]
    fn agrees_with_augmenting_path_on_random_graphs() {
        for seed in 0..8 {
            let b = generators::random_bipartite(60, 0.08, seed);
            let g = b.build_array();
            let hk = hopcroft_karp(&g, 30);
            let ap = find_matching(&g, 30, Matching::empty(60));
            assert_eq!(hk.size, ap.size, "seed {seed}");
        }
    }

    #[test]
    fn empty_graph() {
        let b = EdgeListBuilder::new(4);
        assert_eq!(hopcroft_karp(&b.build_array(), 2).size, 0);
    }
}
