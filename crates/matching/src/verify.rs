//! König certificates: prove a bipartite matching is maximum.
//!
//! König's theorem: in a bipartite graph, the size of a maximum matching
//! equals the size of a minimum vertex cover. Given a matching, the
//! standard alternating-reachability construction yields a vertex cover of
//! exactly the matching's size **iff** the matching is maximum — a
//! certificate checkable in linear time, used by the test suite to verify
//! results without trusting a second matching implementation.

use cachegraph_graph::{Graph, VertexId};

use crate::augmenting::Matching;
use crate::FREE;

/// Compute the König vertex cover for `m`: let `Z` be the set of vertices
/// reachable from free left vertices by alternating paths (unmatched
/// edges leftward, matched edges rightward); the cover is
/// `(L \ Z) ∪ (R ∩ Z)`. Returns the cover as a vertex list.
pub fn minimum_vertex_cover<G: Graph>(g: &G, n_left: usize, m: &Matching) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut in_z = vec![false; n];
    let mut stack: Vec<VertexId> = Vec::new();
    for (u, &mate) in m.mate.iter().enumerate().take(n_left) {
        if mate == FREE {
            in_z[u] = true;
            stack.push(u as VertexId);
        }
    }
    while let Some(u) = stack.pop() {
        // u is a left vertex: move along *unmatched* edges to the right.
        for (r, _) in g.neighbors(u) {
            if in_z[r as usize] || m.mate[u as usize] == r {
                continue;
            }
            in_z[r as usize] = true;
            // From a right vertex the only alternating continuation is its
            // matched edge.
            let rm = m.mate[r as usize];
            if rm != FREE && !in_z[rm as usize] {
                in_z[rm as usize] = true;
                stack.push(rm);
            }
        }
    }
    let mut cover = Vec::new();
    for (v, &z) in in_z.iter().enumerate() {
        let is_left = v < n_left;
        if (is_left && !z) || (!is_left && z) {
            cover.push(v as VertexId);
        }
    }
    cover
}

/// Verify that `m` is a maximum matching of `g` via a König certificate:
/// the constructed cover must (a) touch every edge and (b) have exactly
/// `m.size` vertices. Panics with a description on failure.
pub fn assert_maximum<G: Graph>(g: &G, n_left: usize, m: &Matching) {
    m.assert_valid(g);
    let cover = minimum_vertex_cover(g, n_left, m);
    assert_eq!(
        cover.len(),
        m.size,
        "cover size {} != matching size {} — matching is not maximum",
        cover.len(),
        m.size
    );
    let mut covered = vec![false; g.num_vertices()];
    for &v in &cover {
        covered[v as usize] = true;
    }
    for u in 0..n_left as VertexId {
        for (v, _) in g.neighbors(u) {
            assert!(
                covered[u as usize] || covered[v as usize],
                "edge ({u}, {v}) not covered — certificate invalid"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augmenting::find_matching;
    use cachegraph_graph::{generators, AdjacencyArray, EdgeListBuilder};

    #[test]
    fn certifies_maximum_on_random_graphs() {
        for seed in 0..8 {
            let b = generators::random_bipartite(60, 0.1, seed);
            let g = b.build_array();
            let m = find_matching(&g, 30, Matching::empty(60));
            assert_maximum(&g, 30, &m);
        }
    }

    #[test]
    #[should_panic(expected = "not maximum")]
    fn rejects_non_maximum_matching() {
        // Perfect matching exists (0-2, 1-3) but we certify an empty one.
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 2, 1).add_undirected(1, 3, 1);
        let g = b.build_array();
        assert_maximum(&g, 2, &Matching::empty(4));
    }

    #[test]
    fn star_cover_is_the_center() {
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 3, 1).add_undirected(1, 3, 1).add_undirected(2, 3, 1);
        let g: AdjacencyArray = b.build_array();
        let m = find_matching(&g, 3, Matching::empty(4));
        let cover = minimum_vertex_cover(&g, 3, &m);
        assert_eq!(cover, vec![3]);
    }

    #[test]
    fn empty_graph_empty_cover() {
        let b = EdgeListBuilder::new(4);
        let g = b.build_array();
        let m = Matching::empty(4);
        assert_maximum(&g, 2, &m);
    }
}
