//! Cancellable matching for deadline-propagating callers.
//!
//! [`find_matching_cancellable`] runs exactly the Fig. 8 loop of
//! [`find_matching`](crate::find_matching), polling a cancellation
//! closure *between* augmentation rounds — the natural boundary: each
//! round is one whole-graph BFS plus one path flip, so the matching is
//! structurally consistent (just not yet maximum) whenever the poll
//! fires. On cancellation the partial matching built so far is
//! returned alongside the marker, letting a caller distinguish "no
//! answer" from "a valid but possibly sub-maximum matching".
//!
//! The closure is a plain `FnMut() -> bool`; this crate never
//! references the observability layer (obs-purity — see the
//! `obs_*_cancel.rs` fixture pair in `cachegraph-tidy`). The
//! per-round poll is also the unit of the serve layer's `cancel_polls`
//! trace tag: one count per augmentation round.

use cachegraph_graph::Graph;

use crate::augmenting::{augment_once, AugmentScratch, Matching};

/// The search was cancelled between augmentation rounds; the carried
/// matching is valid but may not be maximum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchCancelled {
    /// The structurally consistent partial matching at cancellation.
    pub partial: Matching,
}

impl std::fmt::Display for MatchCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matching cancelled after {} augmentations", self.partial.size)
    }
}

impl std::error::Error for MatchCancelled {}

/// [`find_matching`](crate::find_matching) with a cancellation poll
/// between augmentation rounds.
pub fn find_matching_cancellable<G: Graph>(
    g: &G,
    n_left: usize,
    initial: Matching,
    cancel: &mut impl FnMut() -> bool,
) -> Result<Matching, MatchCancelled> {
    let n = g.num_vertices();
    assert!(n_left <= n, "left side larger than the graph");
    assert_eq!(initial.mate.len(), n, "initial matching has wrong size");
    let mut m = initial;
    let mut scratch = AugmentScratch::new(n, n_left);
    loop {
        if cancel() {
            return Err(MatchCancelled { partial: m });
        }
        if !augment_once(g, n_left, &mut m, &mut scratch) {
            return Ok(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_matching;
    use cachegraph_graph::generators;

    #[test]
    fn uncancelled_matches_find_matching() {
        for seed in 0..6 {
            let b = generators::random_bipartite(60, 0.1, seed);
            let g = b.build_array();
            let plain = find_matching(&g, 30, Matching::empty(60));
            let c = find_matching_cancellable(&g, 30, Matching::empty(60), &mut || false)
                .expect("never cancelled");
            assert_eq!(plain.size, c.size, "seed {seed}");
            c.assert_valid(&g);
        }
    }

    #[test]
    fn cancellation_returns_a_consistent_partial_matching() {
        let b = generators::random_bipartite(80, 0.15, 3);
        let g = b.build_array();
        let full = find_matching(&g, 40, Matching::empty(80));
        // Allow exactly 2 augmentation rounds, then cancel.
        let mut rounds = 0usize;
        let err = find_matching_cancellable(&g, 40, Matching::empty(80), &mut || {
            rounds += 1;
            rounds > 2
        })
        .expect_err("must cancel");
        assert_eq!(err.partial.size, 2, "two granted rounds, one augmentation each");
        assert!(err.partial.size <= full.size);
        err.partial.assert_valid(&g);
        // Resuming from the partial matching completes to the maximum.
        let resumed = find_matching(&g, 40, err.partial);
        assert_eq!(resumed.size, full.size);
    }

    #[test]
    fn immediate_cancellation_returns_the_initial_matching() {
        let b = generators::random_bipartite(20, 0.2, 1);
        let g = b.build_array();
        let err = find_matching_cancellable(&g, 10, Matching::empty(20), &mut || true)
            .expect_err("cancelled before the first round");
        assert_eq!(err.partial.size, 0);
        assert!(err.to_string().contains("after 0 augmentations"));
    }
}
