//! The cache-friendly matching implementation (Fig. 9):
//! partition → solve locally → union → finish globally.

use cachegraph_graph::{AdjacencyArray, Edge, Graph, VertexId};

use crate::augmenting::{find_matching, Matching};
use crate::partition::two_way_partition;
use crate::FREE;

/// How the input graph is split into sub-problems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionScheme {
    /// `p` contiguous blocks: left block `k` with right block `k`. Cheap
    /// and effective when the graph has block-local structure; the number
    /// of parts is the tuning knob (§3.3: size each part to the cache).
    Contiguous(usize),
    /// The paper's linear-time two-way partitioner (4 arbitrary groups,
    /// paired to maximise internal edges).
    TwoWay,
}

/// Statistics from the partitioned run, useful for the experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionedStats {
    /// Matching size after the local phase (before the global pass).
    pub local_matched: usize,
    /// Edges internal to some part (processed in the local phase).
    pub internal_edges: usize,
    /// Number of parts used.
    pub parts: usize,
}

/// Assign each vertex to a part under `scheme`.
pub(crate) fn assign_parts(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
) -> (Vec<u32>, usize) {
    match scheme {
        PartitionScheme::Contiguous(p) => {
            assert!(p >= 1, "need at least one part");
            let n_right = n - n_left;
            let mut part = vec![0u32; n];
            for (v, pt) in part.iter_mut().enumerate() {
                *pt = if v < n_left {
                    ((v * p) / n_left.max(1)) as u32
                } else {
                    (((v - n_left) * p) / n_right.max(1)) as u32
                };
            }
            (part, p)
        }
        PartitionScheme::TwoWay => {
            let tw = two_way_partition(n, n_left, edges);
            (tw.side.iter().map(|&s| s as u32).collect(), 2)
        }
    }
}

/// `CacheFriendlyFindMatching` (Fig. 9): solve each sub-graph locally,
/// union the local matchings, then run the augmenting-path algorithm on
/// the whole graph starting from the union. Returns the maximum matching
/// and the phase statistics.
///
/// `g` is the already-built representation of the whole graph (the same
/// object the baseline traverses); `edges` is its edge list, from which
/// the sub-problems are carved. Partitioning and sub-graph construction
/// happen inside this function — they are part of the optimization's cost,
/// exactly as in the paper's measurements.
pub fn find_matching_partitioned(
    g: &AdjacencyArray,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
) -> (Matching, PartitionedStats) {
    let n = g.num_vertices();
    let (parts, internal) = build_local_parts(n, n_left, edges, scheme);

    // Phase 1: local matchings (working sets sized to the cache).
    let mut union = Matching::empty(n);
    for part in &parts {
        if let Some(local) = part.solve() {
            merge_local(part, &local, &mut union);
        }
    }
    let stats = PartitionedStats {
        local_matched: union.size,
        internal_edges: internal,
        parts: parts.len(),
    };

    // Phase 2: finish on the whole graph from the union.
    let m = find_matching(g, n_left, union);
    (m, stats)
}

/// One sub-problem of the Fig. 9 decomposition: the vertices of a part
/// (locals numbered left-first, so `members[local] = global`) and its
/// internal edges in local ids (both arcs).
#[derive(Clone, Debug)]
pub struct LocalPart {
    /// Global vertex id per local id, left vertices first.
    pub members: Vec<VertexId>,
    /// Number of left vertices in this part (locals `0..left_count`).
    pub left_count: usize,
    /// Internal edges in local ids, both arcs per undirected edge.
    pub edges: Vec<Edge>,
}

impl LocalPart {
    /// A part contributes a local solve only if it has vertices and
    /// internal edges; otherwise it is skipped (the serial driver's
    /// `continue`).
    pub fn is_trivial(&self) -> bool {
        self.members.is_empty() || self.edges.is_empty()
    }

    /// Solve this sub-problem with the Fig. 8 algorithm; `None` for
    /// trivial parts.
    pub fn solve(&self) -> Option<Matching> {
        if self.is_trivial() {
            return None;
        }
        let sub = AdjacencyArray::from_edges(self.members.len(), &self.edges);
        Some(find_matching(&sub, self.left_count, Matching::empty(self.members.len())))
    }
}

/// Carve the graph into per-part sub-problems under `scheme`: the
/// shared front half of [`find_matching_partitioned`] and its parallel
/// counterpart
/// ([`find_matching_partitioned_parallel`](crate::find_matching_partitioned_parallel)).
/// Returns the parts and the internal-edge count.
pub fn build_local_parts(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
) -> (Vec<LocalPart>, usize) {
    let (part, p) = assign_parts(n, n_left, edges, scheme);

    // Split vertices per part, locals numbered left-first.
    let mut local_id = vec![FREE; n];
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    let mut left_count = vec![0usize; p];
    for v in 0..n {
        if v < n_left {
            let k = part[v] as usize;
            local_id[v] = left_count[k] as u32;
            left_count[k] += 1;
            members[k].push(v as VertexId);
        }
    }
    let mut right_count = vec![0usize; p];
    for v in n_left..n {
        let k = part[v] as usize;
        local_id[v] = (left_count[k] + right_count[k]) as u32;
        right_count[k] += 1;
        members[k].push(v as VertexId);
    }

    // Internal edges per part (left-arc canonical form).
    let mut local_edges: Vec<Vec<Edge>> = vec![Vec::new(); p];
    let mut internal = 0usize;
    for e in edges {
        if (e.from as usize) >= n_left {
            continue;
        }
        let (k_from, k_to) = (part[e.from as usize] as usize, part[e.to as usize] as usize);
        if k_from == k_to {
            internal += 1;
            let l = local_id[e.from as usize];
            let r = local_id[e.to as usize];
            local_edges[k_from].push(Edge::new(l, r, 1));
            local_edges[k_from].push(Edge::new(r, l, 1));
        }
    }

    let parts = members
        .into_iter()
        .zip(left_count)
        .zip(local_edges)
        .map(|((members, left_count), edges)| LocalPart { members, left_count, edges })
        .collect();
    (parts, internal)
}

/// Write a solved part's matching into the global union — the serial
/// driver's exact merge statements, shared with the parallel driver.
pub(crate) fn merge_local(part: &LocalPart, local: &Matching, union: &mut Matching) {
    for (lv, &gv) in part.members.iter().enumerate() {
        let lm = local.mate[lv];
        if lm != FREE {
            union.mate[gv as usize] = part.members[lm as usize];
        }
    }
    union.size += local.size;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;
    use cachegraph_graph::generators;

    fn check_equals_oracle(n: usize, edges: &[Edge], scheme: PartitionScheme) {
        let g = AdjacencyArray::from_edges(n, edges);
        let oracle = hopcroft_karp(&g, n / 2);
        let (m, _) = find_matching_partitioned(&g, n / 2, edges, scheme);
        assert_eq!(m.size, oracle.size);
        m.assert_valid(&g);
    }

    #[test]
    fn random_graphs_all_schemes() {
        for seed in 0..5 {
            let b = generators::random_bipartite(48, 0.12, seed);
            check_equals_oracle(48, b.edges(), PartitionScheme::Contiguous(4));
            check_equals_oracle(48, b.edges(), PartitionScheme::Contiguous(1));
            check_equals_oracle(48, b.edges(), PartitionScheme::TwoWay);
        }
    }

    #[test]
    fn best_case_local_phase_finds_maximum() {
        let b = generators::matching_best_case(32, 4, 0.1, 2);
        let g = AdjacencyArray::from_edges(32, b.edges());
        let (m, stats) = find_matching_partitioned(&g, 16, b.edges(), PartitionScheme::Contiguous(4));
        assert_eq!(m.size, 16, "perfect matching expected");
        assert_eq!(stats.local_matched, 16, "local phase should already be maximum");
    }

    #[test]
    fn worst_case_local_phase_finds_nothing() {
        let b = generators::matching_worst_case(32, 4, 0.5, 3);
        let g = AdjacencyArray::from_edges(32, b.edges());
        let (m, stats) =
            find_matching_partitioned(&g, 16, b.edges(), PartitionScheme::Contiguous(4));
        assert_eq!(stats.local_matched, 0, "no internal edges by construction");
        assert_eq!(stats.internal_edges, 0);
        let oracle = hopcroft_karp(&g, 16);
        assert_eq!(m.size, oracle.size, "global phase must still reach maximum");
    }

    #[test]
    fn two_way_rescues_crossed_structure() {
        // Edges cross contiguous halves, so Contiguous(2) finds nothing
        // locally but TwoWay re-pairs the groups and captures everything.
        let b = generators::matching_worst_case(32, 2, 0.4, 4);
        let g = AdjacencyArray::from_edges(32, b.edges());
        let (_, contiguous) =
            find_matching_partitioned(&g, 16, b.edges(), PartitionScheme::Contiguous(2));
        let (_, two_way) = find_matching_partitioned(&g, 16, b.edges(), PartitionScheme::TwoWay);
        assert_eq!(contiguous.internal_edges, 0);
        assert!(
            two_way.internal_edges > 0,
            "partitioner should recover internal edges: {two_way:?}"
        );
    }

    #[test]
    fn empty_graph() {
        let g = AdjacencyArray::from_edges(8, &[]);
        let (m, stats) = find_matching_partitioned(&g, 4, &[], PartitionScheme::Contiguous(2));
        assert_eq!(m.size, 0);
        assert_eq!(stats.local_matched, 0);
    }
}
