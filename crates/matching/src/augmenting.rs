//! The augmenting-path matching algorithm (Fig. 8).
//!
//! [`find_matching`] is the faithful `FindMatching(G, M)` of the paper:
//! *while an augmenting path exists, increase `|M|` by one using it* —
//! each iteration performs one breadth-first search over the alternating
//! structure (from every free left vertex) and flips the single path it
//! finds, giving the stated `O(N·E)` running time. This is both the
//! baseline of §4.4 and the subroutine the cache-friendly implementation
//! (Fig. 9) calls on sub-problems and on the final global pass.
//!
//! [`find_matching_fast`] is a modern single-pass variant (one attempt
//! per free left vertex, stamp-cleared visit marks). It computes the same
//! maximum matching with far less work; it is *not* the paper's baseline
//! — it exists as an extension and as a differential-testing oracle.

use cachegraph_graph::{Graph, VertexId};
use cachegraph_plan::{NoSink, UnitSink};

use crate::FREE;

/// A matching over `n` vertices: `mate[v]` is `v`'s partner or [`FREE`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// Partner per vertex.
    pub mate: Vec<VertexId>,
    /// Number of matched edges.
    pub size: usize,
}

impl Matching {
    /// An empty matching over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self { mate: vec![FREE; n], size: 0 }
    }

    /// True if `v` is not matched.
    pub fn is_free(&self, v: VertexId) -> bool {
        self.mate[v as usize] == FREE
    }

    /// Check structural consistency (symmetry, size) against a graph;
    /// panics on violation. Used by tests and debug assertions.
    pub fn assert_valid<G: Graph>(&self, g: &G) {
        let mut count = 0;
        for v in 0..self.mate.len() {
            let m = self.mate[v];
            if m == FREE {
                continue;
            }
            assert_eq!(self.mate[m as usize], v as u32, "mate not symmetric at {v}");
            assert!(
                g.neighbors(v as u32).any(|(u, _)| u == m),
                "matched pair ({v}, {m}) is not an edge"
            );
            count += 1;
        }
        assert_eq!(count, self.size * 2, "size does not match mate array");
    }
}

/// Reusable scratch for the whole-graph augmentation step, so the
/// plain and cancellable drivers share one iteration body.
pub(crate) struct AugmentScratch {
    parent: Vec<VertexId>,
    visited: Vec<bool>,
    queue: Vec<VertexId>,
}

impl AugmentScratch {
    pub(crate) fn new(n: usize, n_left: usize) -> Self {
        Self { parent: vec![FREE; n], visited: vec![false; n], queue: Vec::with_capacity(n_left) }
    }
}

/// One iteration of Fig. 8's loop: BFS from ALL free left vertices over
/// alternating paths (unmatched edges left -> right, matched edges
/// right -> left); if an augmenting path exists, flip it and grow `m`
/// by one. Returns `false` when no augmenting path exists (`m` is
/// maximum).
pub(crate) fn augment_once<G: Graph>(
    g: &G,
    n_left: usize,
    m: &mut Matching,
    s: &mut AugmentScratch,
) -> bool {
    augment_once_sink(g, n_left, m, s, &mut NoSink)
}

/// [`augment_once`] with every access to the `mate` array reported to a
/// [`UnitSink`] (unit = vertex id). `cachegraph-check`'s matching driver
/// records these scripts to replay augmentation rounds against shadow
/// memory, and the differential footprint test compares them with the
/// declared per-part footprints. The sink is observational only: with
/// [`NoSink`] this compiles to exactly the un-instrumented round.
pub(crate) fn augment_once_sink<G: Graph, S: UnitSink>(
    g: &G,
    n_left: usize,
    m: &mut Matching,
    s: &mut AugmentScratch,
    sink: &mut S,
) -> bool {
    s.visited.fill(false);
    s.queue.clear();
    for (u, &mate) in m.mate.iter().enumerate().take(n_left) {
        sink.read(u as u64);
        if mate == FREE {
            s.visited[u] = true;
            s.queue.push(u as VertexId);
        }
    }
    let mut head = 0;
    let mut endpoint = None;
    'search: while head < s.queue.len() {
        let u = s.queue[head];
        head += 1;
        for (r, _) in g.neighbors(u) {
            if s.visited[r as usize] {
                continue;
            }
            s.visited[r as usize] = true;
            s.parent[r as usize] = u;
            sink.read(r as u64);
            let rm = m.mate[r as usize];
            if rm == FREE {
                endpoint = Some(r);
                break 'search;
            }
            if !s.visited[rm as usize] {
                s.visited[rm as usize] = true;
                s.queue.push(rm);
            }
        }
    }
    let Some(mut right) = endpoint else {
        return false; // no augmenting path: m is maximum
    };
    // Flip the alternating path back to its free left origin.
    loop {
        let left = s.parent[right as usize];
        sink.read(left as u64);
        let next_right = m.mate[left as usize];
        sink.write(right as u64);
        sink.write(left as u64);
        m.mate[right as usize] = left;
        m.mate[left as usize] = right;
        if next_right == FREE {
            break; // reached the free left endpoint
        }
        right = next_right;
    }
    m.size += 1;
    true
}

/// `FindMatching(G, M)` of Fig. 8: repeat a whole-graph BFS for one
/// augmenting path and flip it, until no augmenting path exists. Left
/// vertices are `0..n_left`. Returns the (maximum) matching.
pub fn find_matching<G: Graph>(g: &G, n_left: usize, initial: Matching) -> Matching {
    let n = g.num_vertices();
    assert!(n_left <= n, "left side larger than the graph");
    assert_eq!(initial.mate.len(), n, "initial matching has wrong size");
    let mut m = initial;
    let mut scratch = AugmentScratch::new(n, n_left);
    while augment_once(g, n_left, &mut m, &mut scratch) {}
    m
}

/// [`find_matching`] with every `mate` access reported to a
/// [`UnitSink`] (unit = vertex id): the Fig. 8 loop, plus one trailing
/// no-op round (the failed search that proves maximality), exactly as
/// the plain driver executes it.
pub fn find_matching_recorded<G: Graph, S: UnitSink>(
    g: &G,
    n_left: usize,
    initial: Matching,
    sink: &mut S,
) -> Matching {
    let n = g.num_vertices();
    assert!(n_left <= n, "left side larger than the graph");
    assert_eq!(initial.mate.len(), n, "initial matching has wrong size");
    let mut m = initial;
    let mut scratch = AugmentScratch::new(n, n_left);
    while augment_once_sink(g, n_left, &mut m, &mut scratch, sink) {}
    m
}

/// Scratch space for [`find_matching_fast`], reused across searches.
struct Scratch {
    queue: Vec<VertexId>,
    parent: Vec<VertexId>,
    stamp_of: Vec<u32>,
    stamp: u32,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Self { queue: Vec::new(), parent: vec![FREE; n], stamp_of: vec![0; n], stamp: 0 }
    }
}

/// Single-BFS augmentation attempt from `start` for the fast variant.
fn augment_from<G: Graph>(g: &G, start: VertexId, m: &mut Matching, s: &mut Scratch) -> bool {
    s.stamp += 1;
    s.queue.clear();
    s.queue.push(start);
    let mut head = 0;
    while head < s.queue.len() {
        let u = s.queue[head];
        head += 1;
        for (r, _) in g.neighbors(u) {
            if s.stamp_of[r as usize] == s.stamp {
                continue;
            }
            s.stamp_of[r as usize] = s.stamp;
            s.parent[r as usize] = u;
            let rm = m.mate[r as usize];
            if rm == FREE {
                let mut right = r;
                loop {
                    let left = s.parent[right as usize];
                    let next_right = m.mate[left as usize];
                    m.mate[right as usize] = left;
                    m.mate[left as usize] = right;
                    if left == start {
                        break;
                    }
                    right = next_right;
                }
                m.size += 1;
                return true;
            }
            s.queue.push(rm);
        }
    }
    false
}

/// Modern one-pass variant: one augmentation attempt per free left vertex
/// with stamp-cleared marks. One attempt each suffices for maximality
/// (if no augmenting path exists from a free vertex, later augmentations
/// cannot create one). Same result as [`find_matching`], much faster —
/// an extension beyond the paper, also used as a test oracle.
pub fn find_matching_fast<G: Graph>(g: &G, n_left: usize, initial: Matching) -> Matching {
    let n = g.num_vertices();
    assert!(n_left <= n, "left side larger than the graph");
    assert_eq!(initial.mate.len(), n, "initial matching has wrong size");
    let mut m = initial;
    let mut scratch = Scratch::new(n);
    for u in 0..n_left as VertexId {
        if m.is_free(u) {
            augment_from(g, u, &mut m, &mut scratch);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegraph_graph::{generators, EdgeListBuilder};

    #[test]
    fn perfect_matching_on_pairs() {
        // 0-2, 1-3: a perfect matching exists trivially.
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 2, 1).add_undirected(1, 3, 1);
        let m = find_matching(&b.build_array(), 2, Matching::empty(4));
        assert_eq!(m.size, 2);
        m.assert_valid(&b.build_array());
    }

    #[test]
    fn augmenting_path_is_found() {
        // 0-2, 1-2, 1-3: a greedy pass could match (1,2) and strand 0;
        // augmentation must reach size 2.
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(1, 2, 1).add_undirected(0, 2, 1).add_undirected(1, 3, 1);
        let g = b.build_array();
        let m = find_matching(&g, 2, Matching::empty(4));
        assert_eq!(m.size, 2);
        m.assert_valid(&g);
    }

    #[test]
    fn star_matches_once() {
        // Left {0,1,2} all connect only to right 3.
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 3, 1).add_undirected(1, 3, 1).add_undirected(2, 3, 1);
        let m = find_matching(&b.build_array(), 3, Matching::empty(4));
        assert_eq!(m.size, 1);
    }

    #[test]
    fn empty_graph_empty_matching() {
        let b = EdgeListBuilder::new(6);
        let m = find_matching(&b.build_array(), 3, Matching::empty(6));
        assert_eq!(m.size, 0);
    }

    #[test]
    fn starting_matching_is_respected_and_extended() {
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 2, 1).add_undirected(1, 3, 1);
        let g = b.build_array();
        // Seed with (0, 2) already matched.
        let mut seed = Matching::empty(4);
        seed.mate[0] = 2;
        seed.mate[2] = 0;
        seed.size = 1;
        let m = find_matching(&g, 2, seed);
        assert_eq!(m.size, 2);
        assert_eq!(m.mate[0], 2, "seeded pair kept");
    }

    #[test]
    fn fast_variant_matches_baseline() {
        for seed in 0..8 {
            let b = generators::random_bipartite(60, 0.1, seed);
            let g = b.build_array();
            let slow = find_matching(&g, 30, Matching::empty(60));
            let fast = find_matching_fast(&g, 30, Matching::empty(60));
            assert_eq!(slow.size, fast.size, "seed {seed}");
            slow.assert_valid(&g);
            fast.assert_valid(&g);
        }
    }

    #[test]
    fn random_bipartite_matching_is_maximal() {
        let b = generators::random_bipartite(40, 0.15, 9);
        let g = b.build_array();
        let m = find_matching(&g, 20, Matching::empty(40));
        m.assert_valid(&g);
        // Maximality (weaker than maximum): no edge joins two free vertices.
        for e in b.edges() {
            assert!(
                !(m.is_free(e.from) && m.is_free(e.to)),
                "edge {e:?} joins two free vertices"
            );
        }
    }
}
