//! Parallel partitioned matching on the shared TaskGraph runtime.
//!
//! The Fig. 9 decomposition is embarrassingly parallel in its local
//! phase: each part's sub-problem touches only its own members' `mate`
//! entries, so the per-part solves are independent tasks with disjoint
//! declared footprints (unit `v` = `mate[v]`). This driver runs them on
//! [`cachegraph_plan::run_tasks_mut`] scoped workers, merges the local
//! matchings **serially in part order** (the exact statements of
//! [`find_matching_partitioned`](crate::find_matching_partitioned)), and
//! finishes with the same serial global pass — so the result, `mate`
//! array included, is bit-identical to the serial partitioned driver for
//! every thread count.
//!
//! The global pass is a single task whose footprint is the whole `mate`
//! array; it must sit in its own phase. `cachegraph-check`'s matching
//! driver proves the per-part footprints disjoint, replays recorded
//! access scripts of both phases against shadow memory over many
//! interleavings, and detects the seeded mutation that merges the global
//! pass into the local phase.

use std::sync::atomic::{AtomicBool, Ordering};

use cachegraph_graph::{AdjacencyArray, Edge, Graph};
use cachegraph_plan::{run_tasks_mut, TaskFootprint, TaskGraph};

use crate::augmenting::Matching;
use crate::cancel::{find_matching_cancellable, MatchCancelled};
use crate::partitioned::{
    build_local_parts, merge_local, LocalPart, PartitionScheme, PartitionedStats,
};

/// The task plan of a partitioned matching run: the sub-problems of the
/// local phase plus the whole-graph global pass.
#[derive(Clone, Debug)]
pub struct MatchingPartPlan {
    /// Number of vertices (`mate` units are `0..n`).
    pub n: usize,
    /// The sub-problems, in part order.
    pub parts: Vec<LocalPart>,
}

impl MatchingPartPlan {
    /// Build the plan (and internal-edge count) for `scheme`.
    pub fn new(
        n: usize,
        n_left: usize,
        edges: &[Edge],
        scheme: PartitionScheme,
    ) -> (Self, usize) {
        let (parts, internal) = build_local_parts(n, n_left, edges, scheme);
        (Self { n, parts }, internal)
    }

    /// Declared footprint of local task `k`: it reads and writes exactly
    /// its members' `mate` entries.
    pub fn part_footprint(&self, k: usize) -> TaskFootprint {
        let mut fp = TaskFootprint::default();
        for &gv in &self.parts[k].members {
            fp.reads.insert(gv as u64);
            fp.writes.insert(gv as u64);
        }
        fp
    }

    /// The two-phase [`TaskGraph`]: per-part local solves, then the
    /// single global pass over the whole `mate` array.
    pub fn task_graph(&self) -> TaskGraph {
        let mut tg = TaskGraph::new("matching");
        tg.push_phase(
            "local",
            (0..self.parts.len()).map(|k| self.part_footprint(k)).collect(),
        );
        let mut global = TaskFootprint::default();
        for v in 0..self.n as u64 {
            global.reads.insert(v);
            global.writes.insert(v);
        }
        tg.push_phase("global", vec![global]);
        tg
    }
}

/// [`find_matching_partitioned`](crate::find_matching_partitioned) with
/// the local solves on `threads` scoped workers; bit-identical result
/// and statistics.
pub fn find_matching_partitioned_parallel(
    g: &AdjacencyArray,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
    threads: usize,
) -> (Matching, PartitionedStats) {
    match find_matching_partitioned_parallel_cancellable(g, n_left, edges, scheme, threads, &|| {
        false
    }) {
        Ok(r) => r,
        // tidy: allow(panic-policy) — the never-cancelling hook makes Err unreachable.
        Err(_) => unreachable!("matching cancelled without a cancel hook"),
    }
}

/// [`find_matching_partitioned_parallel`] with deadline propagation:
/// `cancel` is polled by the coordinator before each phase, by every
/// local-phase worker before its solve, and between global augmentation
/// rounds. Cancellation during the local phase surrenders the (empty)
/// union; during the global pass, the partial matching built so far.
pub fn find_matching_partitioned_parallel_cancellable(
    g: &AdjacencyArray,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
    threads: usize,
    cancel: &(impl Fn() -> bool + Sync),
) -> Result<(Matching, PartitionedStats), MatchCancelled> {
    assert!(threads >= 1, "need at least one thread");
    let n = g.num_vertices();
    let (plan, internal) = MatchingPartPlan::new(n, n_left, edges, scheme);
    if cancel() {
        return Err(MatchCancelled { partial: Matching::empty(n) });
    }

    // Phase 1: independent local solves, one task per part.
    let cancelled = AtomicBool::new(false);
    let mut solves: Vec<(usize, Option<Matching>)> =
        (0..plan.parts.len()).map(|k| (k, None)).collect();
    {
        let parts = &plan.parts;
        run_tasks_mut(&mut solves, threads, |_, (k, out)| {
            if cancel() {
                cancelled.store(true, Ordering::Relaxed);
                return;
            }
            *out = parts[*k].solve();
        });
    }
    if cancelled.load(Ordering::Relaxed) {
        return Err(MatchCancelled { partial: Matching::empty(n) });
    }

    // Serial merge in part order: same statements, same result as the
    // serial driver.
    let mut union = Matching::empty(n);
    for (k, solved) in &solves {
        if let Some(local) = solved {
            merge_local(&plan.parts[*k], local, &mut union);
        }
    }
    let stats = PartitionedStats {
        local_matched: union.size,
        internal_edges: internal,
        parts: plan.parts.len(),
    };

    // Phase 2: the serial global pass, polling between rounds.
    let mut poll = || cancel();
    let m = find_matching_cancellable(g, n_left, union, &mut poll)?;
    Ok((m, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_matching_partitioned, hopcroft_karp};
    use cachegraph_graph::generators;

    #[test]
    fn parallel_is_bit_identical_to_serial_partitioned() {
        for seed in 0..4 {
            let b = generators::random_bipartite(48, 0.12, seed);
            let g = AdjacencyArray::from_edges(48, b.edges());
            for scheme in
                [PartitionScheme::Contiguous(4), PartitionScheme::Contiguous(1), PartitionScheme::TwoWay]
            {
                let (serial, sstats) = find_matching_partitioned(&g, 24, b.edges(), scheme);
                for threads in [1, 2, 4, 7] {
                    let (par, pstats) =
                        find_matching_partitioned_parallel(&g, 24, b.edges(), scheme, threads);
                    assert_eq!(par.mate, serial.mate, "seed {seed} threads {threads}");
                    assert_eq!(par.size, serial.size, "seed {seed} threads {threads}");
                    assert_eq!(pstats, sstats, "seed {seed} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_reaches_the_maximum() {
        for seed in 0..3 {
            let b = generators::random_bipartite(64, 0.09, 70 + seed);
            let g = AdjacencyArray::from_edges(64, b.edges());
            let oracle = hopcroft_karp(&g, 32);
            let (m, _) = find_matching_partitioned_parallel(
                &g,
                32,
                b.edges(),
                PartitionScheme::Contiguous(4),
                4,
            );
            assert_eq!(m.size, oracle.size, "seed {seed}");
            m.assert_valid(&g);
        }
    }

    #[test]
    fn plan_footprints_are_disjoint() {
        let b = generators::random_bipartite(40, 0.2, 5);
        for scheme in [PartitionScheme::Contiguous(4), PartitionScheme::TwoWay] {
            let (plan, _) = MatchingPartPlan::new(40, 20, b.edges(), scheme);
            let tg = plan.task_graph();
            let v = tg.check_disjoint();
            assert!(v.is_empty(), "{scheme:?}: {}", v[0]);
        }
    }

    #[test]
    fn cancellation_returns_err_and_all_workers_poll() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let b = generators::random_bipartite(160, 0.08, 9);
        let g = AdjacencyArray::from_edges(160, b.edges());
        let seen = Mutex::new(HashSet::new());
        let threads = 4;
        let r = find_matching_partitioned_parallel_cancellable(
            &g,
            80,
            b.edges(),
            PartitionScheme::Contiguous(8),
            threads,
            &|| {
                let mut ids = match seen.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                ids.insert(std::thread::current().id());
                ids.len() > threads // cancel once every worker has polled
            },
        );
        assert!(r.is_err(), "late cancellation must still surface");
        let ids = match seen.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        assert!(ids.len() > threads, "coordinator + {threads} workers must all poll");
    }

    #[test]
    fn empty_graph_and_single_part() {
        let g = AdjacencyArray::from_edges(8, &[]);
        let (m, stats) =
            find_matching_partitioned_parallel(&g, 4, &[], PartitionScheme::Contiguous(2), 4);
        assert_eq!(m.size, 0);
        assert_eq!(stats.local_matched, 0);
    }
}
