//! Cache-simulated matching runs (Table 8).
//!
//! Both phases of both implementations run entirely on traced storage:
//! CSR offsets and targets, the mate array, and the BFS machinery (queue,
//! parent array, visit stamps). The partitioned variant allocates each
//! sub-problem's structures in the same simulated address space, so the
//! working-set contraction the paper relies on is exactly what the
//! simulator sees.

use cachegraph_graph::{Edge, VertexId};
use cachegraph_obs::{Counter, Registry};
use cachegraph_sim::{
    AddressSpace, CacheProfile, HierarchyConfig, HierarchyStats, MemoryHierarchy, ProfilerOptions,
    TracedBuffer,
};

use crate::partitioned::PartitionScheme;
use crate::FREE;

/// Result of one simulated matching run.
#[derive(Clone, Debug)]
pub struct MatchSimResult {
    /// Cache/TLB counters.
    pub stats: HierarchyStats,
    /// Size of the matching found (always maximum — validated in tests).
    pub size: usize,
    /// Span-scoped cache attribution (`local[k]` sub-problems vs the
    /// `global` clean-up pass), present only on `*_profiled` runs.
    pub profile: Option<CacheProfile>,
}

/// CSR arrays for one (sub-)problem, in simulated memory.
struct TracedCsr {
    offsets: TracedBuffer<u32>,
    targets: TracedBuffer<u32>,
}

impl TracedCsr {
    fn build(space: &mut AddressSpace, n: usize, n_left: usize, edges: &[Edge]) -> Self {
        // Build untraced (construction is O(E) against the algorithm's
        // O(N·E); the paper measures the matching computation itself).
        let mut degree = vec![0u32; n + 1];
        for e in edges {
            degree[e.from as usize + 1] += 1;
        }
        for v in 0..n {
            degree[v + 1] += degree[v];
        }
        let mut cursor = degree.clone();
        let mut targets = vec![0u32; edges.len()];
        for e in edges {
            let c = &mut cursor[e.from as usize];
            targets[*c as usize] = e.to;
            *c += 1;
        }
        let _ = n_left;
        Self { offsets: space.adopt(degree), targets: space.adopt(targets) }
    }
}

/// The traced augmenting-path matcher, mirroring the faithful baseline
/// `crate::find_matching` operation-for-operation: one whole-graph BFS
/// (from all free left vertices) per augmentation, visit marks cleared
/// before every search — the `O(N·E)` behaviour the paper measures.
struct TracedMatcher {
    mate: TracedBuffer<u32>,
    parent: TracedBuffer<u32>,
    visited: TracedBuffer<u8>,
    queue: TracedBuffer<u32>,
    size: usize,
}

impl TracedMatcher {
    fn new(space: &mut AddressSpace, n: usize, initial_mate: Vec<u32>, size: usize) -> Self {
        assert_eq!(initial_mate.len(), n);
        Self {
            mate: space.adopt(initial_mate),
            parent: space.alloc_traced(n),
            visited: space.alloc_traced(n),
            queue: space.alloc_traced(n),
            size,
        }
    }

    /// Run to a maximum matching. `searches` counts BFS phases (one per
    /// loop iteration, including the final failed one); `aug_paths`
    /// counts successful augmentations. Disabled counters cost a branch.
    fn run(
        &mut self,
        h: &mut MemoryHierarchy,
        g: &TracedCsr,
        n_left: usize,
        searches: &Counter,
        aug_paths: &Counter,
    ) {
        let n = self.mate.len();
        loop {
            searches.incr();
            // Clear marks and seed the BFS with every free left vertex.
            for v in 0..n {
                self.visited.write(h, v, 0);
            }
            let mut len = 0usize;
            for u in 0..n_left {
                if self.mate.read(h, u) == FREE {
                    self.visited.write(h, u, 1);
                    self.queue.write(h, len, u as VertexId);
                    len += 1;
                }
            }
            let mut head = 0usize;
            let mut endpoint = None;
            'search: while head < len {
                let u = self.queue.read(h, head);
                head += 1;
                let lo = g.offsets.read(h, u as usize) as usize;
                let hi = g.offsets.read(h, u as usize + 1) as usize;
                for i in lo..hi {
                    let r = g.targets.read(h, i);
                    if self.visited.read(h, r as usize) != 0 {
                        continue;
                    }
                    self.visited.write(h, r as usize, 1);
                    self.parent.write(h, r as usize, u);
                    let rm = self.mate.read(h, r as usize);
                    if rm == FREE {
                        endpoint = Some(r);
                        break 'search;
                    }
                    if self.visited.read(h, rm as usize) == 0 {
                        self.visited.write(h, rm as usize, 1);
                        self.queue.write(h, len, rm);
                        len += 1;
                    }
                }
            }
            let Some(mut right) = endpoint else {
                return; // maximum reached
            };
            loop {
                let left = self.parent.read(h, right as usize);
                let next_right = self.mate.read(h, left as usize);
                self.mate.write(h, right as usize, left);
                self.mate.write(h, left as usize, right);
                if next_right == FREE {
                    break;
                }
                right = next_right;
            }
            self.size += 1;
            aug_paths.incr();
        }
    }
}

/// Simulate the baseline `FindMatching(G, ∅)` on the full graph.
pub fn sim_find_matching(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    config: HierarchyConfig,
) -> MatchSimResult {
    sim_find_matching_observed(n, n_left, edges, config, &Registry::disabled())
}

/// [`sim_find_matching`] reporting into `registry`: a `matching.baseline`
/// span plus the `matching.searches` / `matching.augmenting_paths`
/// counters.
pub fn sim_find_matching_observed(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    config: HierarchyConfig,
    registry: &Registry,
) -> MatchSimResult {
    sim_find_matching_inner(n, n_left, edges, config, registry, None)
}

/// [`sim_find_matching_observed`] with span-scoped cache attribution
/// under the given [`ProfilerOptions`] (recording mode and miss-rate
/// timeline interval).
pub fn sim_find_matching_profiled(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    config: HierarchyConfig,
    options: ProfilerOptions,
    registry: &Registry,
) -> MatchSimResult {
    sim_find_matching_inner(n, n_left, edges, config, registry, Some(options))
}

fn sim_find_matching_inner(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    config: HierarchyConfig,
    registry: &Registry,
    profiler: Option<ProfilerOptions>,
) -> MatchSimResult {
    let _root = registry.span("matching.baseline");
    let searches = registry.counter("matching.searches");
    let aug_paths = registry.counter("matching.augmenting_paths");
    let mut hier = MemoryHierarchy::new(config);
    let scope =
        profiler.map(|opts| hier.attach_profiler_with("matching.baseline", opts, registry));
    let _root_scope = scope.as_ref().map(|s| s.enter("matching.baseline"));
    let mut space = AddressSpace::new();
    let csr = TracedCsr::build(&mut space, n, n_left, edges);
    let mut matcher = TracedMatcher::new(&mut space, n, vec![FREE; n], 0);
    matcher.run(&mut hier, &csr, n_left, &searches, &aug_paths);
    let stats = hier.stats();
    let profile = hier.take_profile();
    MatchSimResult { stats, size: matcher.size, profile }
}

/// Simulate `CacheFriendlyFindMatching` (Fig. 9) under the given scheme.
pub fn sim_find_matching_partitioned(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
    config: HierarchyConfig,
) -> MatchSimResult {
    sim_find_matching_partitioned_observed(n, n_left, edges, scheme, config, &Registry::disabled())
}

/// [`sim_find_matching_partitioned`] reporting into `registry`: a
/// `matching.partitioned` root span with one `local[k]` child per
/// sub-problem and a `global` child for the clean-up pass, plus the
/// `matching.searches` / `matching.augmenting_paths` counters.
pub fn sim_find_matching_partitioned_observed(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
    config: HierarchyConfig,
    registry: &Registry,
) -> MatchSimResult {
    sim_find_matching_partitioned_inner(n, n_left, edges, scheme, config, registry, None)
}

/// [`sim_find_matching_partitioned_observed`] with span-scoped cache
/// attribution: the profile splits the counters across one
/// `matching.partitioned/local[k]` scope per sub-problem and a
/// `matching.partitioned/global` scope for the clean-up pass.
pub fn sim_find_matching_partitioned_profiled(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
    config: HierarchyConfig,
    options: ProfilerOptions,
    registry: &Registry,
) -> MatchSimResult {
    sim_find_matching_partitioned_inner(n, n_left, edges, scheme, config, registry, Some(options))
}

fn sim_find_matching_partitioned_inner(
    n: usize,
    n_left: usize,
    edges: &[Edge],
    scheme: PartitionScheme,
    config: HierarchyConfig,
    registry: &Registry,
    profiler: Option<ProfilerOptions>,
) -> MatchSimResult {
    let root = registry.span("matching.partitioned");
    let searches = registry.counter("matching.searches");
    let aug_paths = registry.counter("matching.augmenting_paths");
    let (part, p) = super::partitioned::assign_parts(n, n_left, edges, scheme);
    let mut hier = MemoryHierarchy::new(config);
    let scope =
        profiler.map(|opts| hier.attach_profiler_with("matching.partitioned", opts, registry));
    let _root_scope = scope.as_ref().map(|s| s.enter("matching.partitioned"));
    let mut space = AddressSpace::new();

    // Local vertex numbering, left-first per part.
    let mut local_id = vec![FREE; n];
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    let mut left_count = vec![0usize; p];
    for v in 0..n_left {
        let k = part[v] as usize;
        local_id[v] = left_count[k] as u32;
        left_count[k] += 1;
        members[k].push(v as VertexId);
    }
    for v in n_left..n {
        let k = part[v] as usize;
        local_id[v] = members[k].len() as u32;
        members[k].push(v as VertexId);
    }
    let mut local_edges: Vec<Vec<Edge>> = vec![Vec::new(); p];
    for e in edges {
        if (e.from as usize) >= n_left {
            continue;
        }
        let (kf, kt) = (part[e.from as usize] as usize, part[e.to as usize] as usize);
        if kf == kt {
            let l = local_id[e.from as usize];
            let r = local_id[e.to as usize];
            local_edges[kf].push(Edge::new(l, r, 1));
            local_edges[kf].push(Edge::new(r, l, 1));
        }
    }

    // Phase 1: traced local matchings.
    let mut union = vec![FREE; n];
    let mut union_size = 0usize;
    for k in 0..p {
        let n_local = members[k].len();
        if n_local == 0 || local_edges[k].is_empty() {
            continue;
        }
        let _local = registry.is_enabled().then(|| root.child(&format!("local[{k}]")));
        let _local_scope =
            scope.as_ref().map(|s| s.enter(&format!("matching.partitioned/local[{k}]")));
        let csr = TracedCsr::build(&mut space, n_local, left_count[k], &local_edges[k]);
        let mut matcher = TracedMatcher::new(&mut space, n_local, vec![FREE; n_local], 0);
        matcher.run(&mut hier, &csr, left_count[k], &searches, &aug_paths);
        let mate = matcher.mate.into_inner();
        for (lv, &gv) in members[k].iter().enumerate() {
            if mate[lv] != FREE {
                union[gv as usize] = members[k][mate[lv] as usize];
            }
        }
        union_size += matcher.size;
    }

    // Phase 2: traced global pass from the union.
    let _global = registry.is_enabled().then(|| root.child("global"));
    let _global_scope = scope.as_ref().map(|s| s.enter("matching.partitioned/global"));
    let csr = TracedCsr::build(&mut space, n, n_left, edges);
    let mut matcher = TracedMatcher::new(&mut space, n, union, union_size);
    matcher.run(&mut hier, &csr, n_left, &searches, &aug_paths);
    drop(_global_scope);
    let stats = hier.stats();
    let profile = hier.take_profile();
    MatchSimResult { stats, size: matcher.size, profile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;
    use cachegraph_graph::{generators, AdjacencyArray};
    use cachegraph_sim::profiles;

    #[test]
    fn simulated_runs_find_maximum_matchings() {
        let b = generators::random_bipartite(64, 0.12, 3);
        let g = AdjacencyArray::from_edges(64, b.edges());
        let oracle = hopcroft_karp(&g, 32).size;
        let base = sim_find_matching(64, 32, b.edges(), profiles::simplescalar());
        let opt = sim_find_matching_partitioned(
            64,
            32,
            b.edges(),
            PartitionScheme::Contiguous(4),
            profiles::simplescalar(),
        );
        assert_eq!(base.size, oracle);
        assert_eq!(opt.size, oracle);
    }

    #[test]
    fn observed_run_counts_augmenting_paths() {
        let b = generators::random_bipartite(64, 0.12, 3);
        let reg = cachegraph_obs::Registry::new();
        let r = sim_find_matching_observed(64, 32, b.edges(), profiles::simplescalar(), &reg);
        let snap = reg.snapshot();
        // One successful augmentation per matched edge, plus the final
        // failed search ending the loop.
        assert_eq!(snap.counters.get("matching.augmenting_paths"), Some(&(r.size as u64)));
        assert_eq!(snap.counters.get("matching.searches"), Some(&(r.size as u64 + 1)));
        assert_eq!(snap.spans.last().map(|s| s.path.as_str()), Some("matching.baseline"));

        let reg2 = cachegraph_obs::Registry::new();
        let r2 = sim_find_matching_partitioned_observed(
            64,
            32,
            b.edges(),
            PartitionScheme::Contiguous(4),
            profiles::simplescalar(),
            &reg2,
        );
        assert_eq!(r2.size, r.size);
        let snap2 = reg2.snapshot();
        assert_eq!(
            snap2.counters.get("matching.augmenting_paths"),
            Some(&(r2.size as u64)),
            "local + global augmentations must sum to the matching size"
        );
        let paths: Vec<&str> = snap2.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.iter().any(|p| p.starts_with("matching.partitioned/local[")));
        assert!(paths.contains(&"matching.partitioned/global"));
        assert_eq!(paths.last(), Some(&"matching.partitioned"));
    }

    #[test]
    fn profiled_partitioned_attributes_local_and_global_phases() {
        let b = generators::random_bipartite(64, 0.12, 3);
        let reg = cachegraph_obs::Registry::disabled();
        let prof = sim_find_matching_partitioned_profiled(
            64,
            32,
            b.edges(),
            PartitionScheme::Contiguous(4),
            profiles::simplescalar(),
            ProfilerOptions { sample_period_log2: 0, timeline_interval: 1024 },
            &reg,
        );
        let plain = sim_find_matching_partitioned(
            64,
            32,
            b.edges(),
            PartitionScheme::Contiguous(4),
            profiles::simplescalar(),
        );
        assert_eq!(prof.size, plain.size, "attribution must not change results");
        assert_eq!(prof.stats, plain.stats, "attribution must not perturb the simulation");
        assert!(plain.profile.is_none());

        let profile = prof.profile.expect("profiled run has a profile");
        assert_eq!(profile.sum_self(), prof.stats);
        let paths: Vec<&str> = profile.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.iter().any(|p| p.starts_with("matching.partitioned/local[")));
        assert!(paths.contains(&"matching.partitioned/global"));
        let root = profile.find("matching.partitioned").expect("root scope");
        assert_eq!(root.total_stats, prof.stats);
    }

    #[test]
    fn partitioned_reduces_work_and_misses_on_dense_instances() {
        // Dense enough that local matchings are near-maximum (§4.4: the
        // technique's good case; sparse graphs leave more global work).
        // The whole problem spills the simulated caches; each sub-problem
        // mostly fits.
        let n = 2048;
        let b = generators::random_bipartite(n, 0.2, 7);
        let cfg = profiles::simplescalar;
        let base = sim_find_matching(n, n / 2, b.edges(), cfg());
        let opt = sim_find_matching_partitioned(
            n,
            n / 2,
            b.edges(),
            PartitionScheme::Contiguous(8),
            cfg(),
        );
        assert_eq!(base.size, opt.size);
        let base_l1 = &base.stats.levels[0];
        let opt_l1 = &opt.stats.levels[0];
        assert!(
            opt_l1.accesses < base_l1.accesses,
            "partitioned run should do less work: {} vs {} accesses",
            opt_l1.accesses,
            base_l1.accesses
        );
        assert!(
            opt_l1.misses < base_l1.misses,
            "partitioned run should miss less: {} vs {}",
            opt_l1.misses,
            base_l1.misses
        );
    }
}
