//! Bipartite maximum matching with cache-friendly sub-problem
//! decomposition (paper §3.3).
//!
//! The baseline is the augmenting-path algorithm (Fig. 8): repeatedly BFS
//! from a free left vertex for an alternating path to a free right vertex,
//! flip it, until no augmenting path exists — `O(N·E)`.
//!
//! The paper's optimization (Fig. 9, [`find_matching_partitioned`]) first
//! splits the graph into sub-graphs sized to fit in cache, solves each
//! locally (high temporal locality, `O(N + E)` traffic), unions the local
//! matchings, and only then runs the global algorithm *starting from* that
//! union — in the best case the local phase already found a maximum
//! matching and the global phase only verifies it.
//!
//! [`partition::two_way_partition`] is the paper's linear-time two-way
//! edge partitioner (§3.3: 4 arbitrary vertex groups, pair them to
//! maximise internal edges). [`hopcroft_karp`] is an independent
//! `O(E·√V)` oracle; [`verify::minimum_vertex_cover`] produces a König
//! certificate that a matching is maximum. [`maxflow`] is the
//! Ford-Fulkerson extension named in the paper's conclusion.
//!
//! Convention: a bipartite graph on `n` vertices has its left side
//! `0..n_left` and right side `n_left..n`, with both arcs of every edge
//! present (as [`cachegraph_graph::generators::random_bipartite`] builds).
//!
//! ```
//! use cachegraph_matching::{find_matching_partitioned, verify, PartitionScheme};
//! use cachegraph_graph::generators;
//!
//! let n = 64;
//! let b = generators::random_bipartite(n, 0.2, 7);
//! let g = b.build_array();
//! let (m, stats) =
//!     find_matching_partitioned(&g, n / 2, b.edges(), PartitionScheme::Contiguous(4));
//! verify::assert_maximum(&g, n / 2, &m); // König certificate
//! assert!(stats.local_matched <= m.size);
//! ```

mod augmenting;
mod cancel;
mod hopcroft_karp;
pub mod instrumented;
pub mod maxflow;
pub mod parallel;
pub mod partition;
mod partitioned;
pub mod verify;

pub use augmenting::{find_matching, find_matching_fast, find_matching_recorded, Matching};
pub use cancel::{find_matching_cancellable, MatchCancelled};
pub use hopcroft_karp::hopcroft_karp;
pub use parallel::{
    find_matching_partitioned_parallel, find_matching_partitioned_parallel_cancellable,
    MatchingPartPlan,
};
pub use partitioned::{
    build_local_parts, find_matching_partitioned, LocalPart, PartitionScheme, PartitionedStats,
};

/// Sentinel for "unmatched".
pub const FREE: u32 = u32::MAX;
