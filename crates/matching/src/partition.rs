//! The paper's simple linear-time two-way partitioning algorithm (§3.3).
//!
//! "Arbitrarily partition the vertices into 4 equal partitions. Count the
//! number of edges between each pair of partitions. Combine partitions
//! into two partitions such that as many internal edges are created as
//! possible."
//!
//! For the bipartite convention (left `0..n_left`, right `n_left..n`) the
//! four arbitrary groups are the two halves of each side — `L0, L1, R0,
//! R1` — and the two useful combinations pair each left half with a right
//! half (a partition with no right vertices can hold no edges at all).
//! The algorithm counts the four cross-group edge totals in one pass and
//! picks the pairing with more internal edges.

use cachegraph_graph::Edge;

/// Result of two-way partitioning: `side[v]` is 0 or 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoWayPartition {
    /// Partition id (0/1) per vertex.
    pub side: Vec<u8>,
    /// Edges whose endpoints landed in the same partition.
    pub internal_edges: usize,
    /// Edges crossing the cut.
    pub external_edges: usize,
}

/// Partition a bipartite graph's vertices into two groups maximising
/// internal edges, per the paper's 4-group scheme. `edges` may contain
/// both arcs of each undirected edge (the count treats `(u, v)` with
/// `u < n_left` as the canonical direction).
pub fn two_way_partition(n: usize, n_left: usize, edges: &[Edge]) -> TwoWayPartition {
    assert!(n_left <= n);
    let l_half = n_left / 2;
    let r_half = (n - n_left) / 2;
    // e[i][j] = edges between left group i and right group j.
    let mut e = [[0usize; 2]; 2];
    for edge in edges {
        let (l, r) = if (edge.from as usize) < n_left {
            (edge.from as usize, edge.to as usize)
        } else {
            continue; // count each undirected edge once, from its left arc
        };
        let li = usize::from(l >= l_half);
        let rj = usize::from(r - n_left >= r_half);
        e[li][rj] += 1;
    }
    // Pairing A: {L0 + R0, L1 + R1}; pairing B: {L0 + R1, L1 + R0}.
    let internal_a = e[0][0] + e[1][1];
    let internal_b = e[0][1] + e[1][0];
    let swap = internal_b > internal_a;
    let internal = internal_a.max(internal_b);
    let total = e[0][0] + e[0][1] + e[1][0] + e[1][1];

    let mut side = vec![0u8; n];
    for (v, s) in side.iter_mut().enumerate() {
        *s = if v < n_left {
            u8::from(v >= l_half)
        } else {
            let right_group = u8::from(v - n_left >= r_half);
            if swap {
                1 - right_group
            } else {
                right_group
            }
        };
    }
    TwoWayPartition { side, internal_edges: internal, external_edges: total - internal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegraph_graph::generators;

    #[test]
    fn aligned_graph_keeps_all_edges_internal() {
        // Perfect matching i <-> n/2 + i: L0 pairs with R0, L1 with R1.
        let b = generators::matching_best_case(16, 2, 0.0, 1);
        let p = two_way_partition(16, 8, b.edges());
        assert_eq!(p.external_edges, 0);
        assert_eq!(p.internal_edges, 8);
    }

    #[test]
    fn crossed_graph_is_detected_and_swapped() {
        // Edges only L0 <-> R1 and L1 <-> R0: the swapped pairing makes
        // every edge internal.
        let mut b = cachegraph_graph::EdgeListBuilder::new(8);
        // Left = {0..4}, right = {4..8}; L0 = {0,1}, R1 = {6,7}.
        b.add_undirected(0, 6, 1).add_undirected(1, 7, 1);
        b.add_undirected(2, 4, 1).add_undirected(3, 5, 1);
        let p = two_way_partition(8, 4, b.edges());
        assert_eq!(p.external_edges, 0);
        assert_eq!(p.internal_edges, 4);
        // Vertices 0 and 6 end up on the same side.
        assert_eq!(p.side[0], p.side[6]);
        assert_eq!(p.side[2], p.side[4]);
        assert_ne!(p.side[0], p.side[2]);
    }

    #[test]
    fn side_covers_all_vertices() {
        let b = generators::random_bipartite(40, 0.2, 3);
        let p = two_way_partition(40, 20, b.edges());
        assert_eq!(p.side.len(), 40);
        let zeros = p.side.iter().filter(|&&s| s == 0).count();
        assert_eq!(zeros, 20, "balanced halves");
    }

    #[test]
    fn edge_counts_are_conserved() {
        let b = generators::random_bipartite(60, 0.15, 7);
        let p = two_way_partition(60, 30, b.edges());
        // Each undirected edge appears as two arcs; counted once.
        assert_eq!(p.internal_edges + p.external_edges, b.edges().len() / 2);
    }
}
