//! Randomized property tests: all matching implementations agree and
//! every result carries a König maximality certificate. Instances are
//! drawn from a seeded PRNG so runs are deterministic and offline.

use cachegraph_graph::{generators, AdjacencyArray};
use cachegraph_matching::{
    find_matching, find_matching_partitioned, hopcroft_karp, maxflow, verify, Matching,
    PartitionScheme,
};
use cachegraph_rng::StdRng;

#[test]
fn all_implementations_agree() {
    let mut rng = StdRng::seed_from_u64(0x4a11);
    for _ in 0..48 {
        let half = rng.gen_range(2usize..40);
        let density = rng.gen_range(0.02f64..0.4);
        let seed = rng.next_u64();
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let ap = find_matching(&g, half, Matching::empty(n));
        let hk = hopcroft_karp(&g, half);
        let flow = maxflow::matching_by_flow(n, half, b.edges());
        assert_eq!(ap.size, hk.size, "half={half} density={density} seed={seed}");
        assert_eq!(ap.size as u64, flow, "half={half} density={density} seed={seed}");
    }
}

#[test]
fn partitioned_is_maximum_with_konig_certificate() {
    let mut rng = StdRng::seed_from_u64(0x9a97);
    for _ in 0..48 {
        let half = rng.gen_range(2usize..32);
        let density = rng.gen_range(0.02f64..0.4);
        let parts = rng.gen_range(1usize..5);
        let seed = rng.next_u64();
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let (m, _) = find_matching_partitioned(&g, half, b.edges(), PartitionScheme::Contiguous(parts));
        verify::assert_maximum(&g, half, &m);
    }
}

#[test]
fn two_way_scheme_is_maximum() {
    let mut rng = StdRng::seed_from_u64(0x2307);
    for _ in 0..48 {
        let half = rng.gen_range(2usize..32);
        let density = rng.gen_range(0.02f64..0.4);
        let seed = rng.next_u64();
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let (m, _) = find_matching_partitioned(&g, half, b.edges(), PartitionScheme::TwoWay);
        verify::assert_maximum(&g, half, &m);
    }
}

#[test]
fn local_phase_never_exceeds_maximum() {
    let mut rng = StdRng::seed_from_u64(0x10c4);
    for _ in 0..48 {
        let half = rng.gen_range(2usize..24);
        let density = rng.gen_range(0.05f64..0.4);
        let seed = rng.next_u64();
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let oracle = hopcroft_karp(&g, half).size;
        let (m, stats) = find_matching_partitioned(&g, half, b.edges(), PartitionScheme::Contiguous(2));
        assert!(stats.local_matched <= oracle, "half={half} density={density} seed={seed}");
        assert_eq!(m.size, oracle, "half={half} density={density} seed={seed}");
    }
}
