//! Property tests: all matching implementations agree and every result
//! carries a König maximality certificate.

use cachegraph_graph::{generators, AdjacencyArray};
use cachegraph_matching::{
    find_matching, find_matching_partitioned, hopcroft_karp, maxflow, verify, Matching,
    PartitionScheme,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_implementations_agree(
        half in 2usize..40,
        density in 0.02f64..0.4,
        seed in any::<u64>(),
    ) {
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let ap = find_matching(&g, half, Matching::empty(n));
        let hk = hopcroft_karp(&g, half);
        let flow = maxflow::matching_by_flow(n, half, b.edges());
        prop_assert_eq!(ap.size, hk.size);
        prop_assert_eq!(ap.size as u64, flow);
    }

    #[test]
    fn partitioned_is_maximum_with_konig_certificate(
        half in 2usize..32,
        density in 0.02f64..0.4,
        parts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let (m, _) = find_matching_partitioned(&g, half, b.edges(), PartitionScheme::Contiguous(parts));
        verify::assert_maximum(&g, half, &m);
    }

    #[test]
    fn two_way_scheme_is_maximum(
        half in 2usize..32,
        density in 0.02f64..0.4,
        seed in any::<u64>(),
    ) {
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let (m, _) = find_matching_partitioned(&g, half, b.edges(), PartitionScheme::TwoWay);
        verify::assert_maximum(&g, half, &m);
    }

    #[test]
    fn local_phase_never_exceeds_maximum(
        half in 2usize..24,
        density in 0.05f64..0.4,
        seed in any::<u64>(),
    ) {
        let n = 2 * half;
        let b = generators::random_bipartite(n, density, seed);
        let g = AdjacencyArray::from_edges(n, b.edges());
        let oracle = hopcroft_karp(&g, half).size;
        let (m, stats) = find_matching_partitioned(&g, half, b.edges(), PartitionScheme::Contiguous(2));
        prop_assert!(stats.local_matched <= oracle);
        prop_assert_eq!(m.size, oracle);
    }
}
