//! Seeded property matrix for the parallel partitioned matching driver:
//! every (threads, scheme, shape) cell must produce a `mate` array and
//! statistics bit-identical to the serial partitioned driver, and reach
//! the Hopcroft-Karp maximum. Every assertion prints the seed so a
//! failure replays deterministically.

use cachegraph_graph::{generators, AdjacencyArray, Edge};
use cachegraph_matching::{
    find_matching_partitioned, find_matching_partitioned_parallel, hopcroft_karp, PartitionScheme,
};

const THREADS: &[usize] = &[1, 2, 4];

/// Assert the full matrix property for one graph under one seed label.
fn assert_matrix(n: usize, edges: &[Edge], schemes: &[PartitionScheme], seed: u64, label: &str) {
    let g = AdjacencyArray::from_edges(n, edges);
    let n_left = n / 2;
    let oracle = hopcroft_karp(&g, n_left);
    for &scheme in schemes {
        let (serial, sstats) = find_matching_partitioned(&g, n_left, edges, scheme);
        assert_eq!(
            serial.size, oracle.size,
            "seed {seed:#x} {label} {scheme:?}: serial driver is not maximum"
        );
        for &threads in THREADS {
            let (par, pstats) =
                find_matching_partitioned_parallel(&g, n_left, edges, scheme, threads);
            assert_eq!(
                par.mate, serial.mate,
                "seed {seed:#x} {label} {scheme:?} threads {threads}: mate diverged"
            );
            assert_eq!(
                par.size, serial.size,
                "seed {seed:#x} {label} {scheme:?} threads {threads}: size diverged"
            );
            assert_eq!(
                pstats, sstats,
                "seed {seed:#x} {label} {scheme:?} threads {threads}: stats diverged"
            );
        }
    }
}

#[test]
fn two_vertices() {
    // The smallest bipartite graph: one left, one right, one edge.
    let edges = [Edge::new(0, 1, 1), Edge::new(1, 0, 1)];
    assert_matrix(2, &edges, &[PartitionScheme::Contiguous(1)], 0, "n=2");
}

#[test]
fn empty_edge_list() {
    for parts in [1, 2, 4] {
        assert_matrix(8, &[], &[PartitionScheme::Contiguous(parts)], 0, "empty");
    }
}

#[test]
fn ragged_partitions() {
    // Part counts that do not divide the sides evenly, including more
    // parts than left vertices (so some parts are empty).
    for seed in [0x5eed, 0xace0, 0xbeef] {
        let b = generators::random_bipartite(14, 0.25, seed);
        let schemes: Vec<PartitionScheme> =
            [3, 5, 6, 11].into_iter().map(PartitionScheme::Contiguous).collect();
        assert_matrix(14, b.edges(), &schemes, seed, "ragged");
    }
}

#[test]
fn disconnected_components() {
    for seed in [0x5eed, 0xace0] {
        // Left 0..8 pairs with right 16..24 only; left 8..16 with right
        // 24..32 only. Partitions cut across the component boundary.
        let mut edges = Vec::new();
        let half = generators::random_bipartite(16, 0.3, seed);
        for e in half.edges() {
            let (f, t) = (e.from, e.to);
            // Remap 0..8 left / 8..16 right into the two components.
            let shift = |v: u32| if v < 8 { v } else { v + 8 };
            edges.push(Edge::new(shift(f), shift(t), 1));
            edges.push(Edge::new(shift(f) + 8, shift(t) + 8, 1));
        }
        let schemes =
            [PartitionScheme::Contiguous(2), PartitionScheme::Contiguous(3), PartitionScheme::TwoWay];
        assert_matrix(32, &edges, &schemes, seed, "disconnected");
    }
}

#[test]
fn random_graph_sweep() {
    for seed in [0x5eed, 0xace0, 0xbeef, 0xcafe] {
        let b = generators::random_bipartite(32, 0.12, seed);
        let schemes = [
            PartitionScheme::Contiguous(1),
            PartitionScheme::Contiguous(4),
            PartitionScheme::TwoWay,
        ];
        assert_matrix(32, b.edges(), &schemes, seed, "random");
    }
}

#[test]
fn best_and_worst_case_structures() {
    for seed in [0x5eed, 0xace0] {
        let best = generators::matching_best_case(24, 4, 0.1, seed);
        assert_matrix(24, best.edges(), &[PartitionScheme::Contiguous(4)], seed, "best-case");
        let worst = generators::matching_worst_case(24, 4, 0.5, seed);
        assert_matrix(24, worst.edges(), &[PartitionScheme::Contiguous(4)], seed, "worst-case");
    }
}

#[test]
fn more_threads_than_parts() {
    for seed in [0x5eed] {
        let b = generators::random_bipartite(16, 0.2, seed);
        let g = AdjacencyArray::from_edges(16, b.edges());
        let (serial, _) =
            find_matching_partitioned(&g, 8, b.edges(), PartitionScheme::Contiguous(2));
        for threads in [8, 16] {
            let (par, _) = find_matching_partitioned_parallel(
                &g,
                8,
                b.edges(),
                PartitionScheme::Contiguous(2),
                threads,
            );
            assert_eq!(
                par.mate, serial.mate,
                "seed {seed:#x} threads {threads}: oversubscribed run diverged"
            );
        }
    }
}
