//! Differential test: every `.rs` file in the workspace is lexed through
//! the old path (the masking lexer, [`cachegraph_lex::mask::lex`]) and the
//! new path (the tokenizer, [`cachegraph_lex::token::masked_via_tokens`]),
//! and both the masked source and the collected comments must agree
//! byte-for-byte. Raw strings, nested block comments and char-literal
//! edge cases are exactly where the two scanners could drift apart; this
//! pins them together on the full corpus, lint fixtures included.

use std::path::{Path, PathBuf};

use cachegraph_lex::{mask, token};

/// Walk up from the test binary's cwd to the workspace root (the
/// directory whose `Cargo.toml` declares `[workspace]`).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "no workspace root above the test cwd");
    }
}

/// All `.rs` files under `dir`, skipping build output and VCS internals.
/// Lint fixtures are deliberately *included*: they exercise deliberately
/// odd corners of the grammar.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn tokenizer_agrees_with_masking_lexer_on_every_workspace_file() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    files.sort();
    assert!(
        files.len() > 100,
        "expected the whole workspace, found only {} files under {}",
        files.len(),
        root.display()
    );
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let old = mask::lex(&src);
        let new = token::masked_via_tokens(&src);
        if old.masked != new.masked {
            // Locate the first diverging line for a readable failure.
            let (mut line_no, mut detail) = (0, String::new());
            for (i, (a, b)) in old.masked.lines().zip(new.masked.lines()).enumerate() {
                if a != b {
                    line_no = i + 1;
                    detail = format!("lexer: {a:?}\ntokens: {b:?}");
                    break;
                }
            }
            panic!("masked divergence in {} at line {line_no}:\n{detail}", path.display());
        }
        assert_eq!(
            old.comments,
            new.comments,
            "comment divergence in {}",
            path.display()
        );
    }
}

#[test]
fn token_spans_tile_the_source() {
    // Spans must be in order, non-overlapping, and separated only by
    // whitespace — the property masked reconstruction relies on.
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    for path in files {
        let src = std::fs::read_to_string(&path).expect("readable source");
        let toks = token::tokenize(&src);
        let mut prev_end = 0usize;
        for t in &toks {
            assert!(t.start >= prev_end, "overlapping spans in {}", path.display());
            assert!(t.end > t.start, "empty span in {}", path.display());
            assert!(
                src[prev_end..t.start].chars().all(char::is_whitespace),
                "non-whitespace gap before offset {} in {}",
                t.start,
                path.display()
            );
            prev_end = t.end;
        }
        assert!(
            src[prev_end..].chars().all(char::is_whitespace),
            "non-whitespace tail in {}",
            path.display()
        );
    }
}
