//! A span-carrying tokenizer over the same lexical grammar as [`crate::mask`].
//!
//! Produces a flat stream of [`Token`]s — identifiers, lifetimes, numeric
//! and string/char literals, comments, and *joined* operator punctuation
//! (`::`, `->`, `..=`, `<<=`, …) — each with its byte span and 1-based
//! start line. Whitespace is not represented; the gaps between spans are
//! whitespace by construction.
//!
//! The literal boundary decisions (raw-string delimiters, char-vs-lifetime
//! disambiguation, escape handling) are shared with the masking lexer, and
//! [`masked_via_tokens`] reconstructs the masking lexer's exact output from
//! the token stream so a differential test can prove the two paths agree
//! on every file in the workspace.

use crate::mask::{self, Comment, Lexed};

/// Lexical class of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the parser distinguishes keywords).
    Ident,
    /// A lifetime such as `'a` or `'_` (not a char literal).
    Lifetime,
    /// Integer literal, including base prefixes, underscores and suffixes.
    Int,
    /// Float literal such as `1.0`, `0.3` or `2e9` is *not* produced as a
    /// unit unless the fraction is present; `1.max(2)` lexes as
    /// `1` `.` `max` … exactly like rustc.
    Float,
    /// String literal (cooked or raw, optionally byte-prefixed).
    Str {
        /// Raw literal (`r"…"`, `br#"…"#`)?
        raw: bool,
        /// Did the literal close before end of input?
        terminated: bool,
    },
    /// Char literal `'x'` / `'\n'`.
    Char {
        /// Did the literal close before end of input?
        terminated: bool,
    },
    /// Line or block comment (doc comments included).
    Comment {
        /// `/* … */` (possibly nested) rather than `// …`.
        block: bool,
    },
    /// Operator or punctuation, maximal-munch joined (`<<=` is one token).
    Punct,
    /// A byte the tokenizer has no class for (kept verbatim in the mask).
    Unknown,
}

/// One token: classification plus byte span and start line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Multi-character operators, longest first (maximal munch).
const PUNCT3: &[&str] = &["<<=", ">>=", "..="];
const PUNCT2: &[&str] = &[
    "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails: unclassifiable bytes come out as
/// [`TokenKind::Unknown`] single-byte tokens, and literals cut off by end
/// of input are flagged `terminated: false`.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Comments.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            i += 2;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            toks.push(Token { kind: TokenKind::Comment { block: false }, start, end: i, line: start_line });
            continue;
        }
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1u32;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Token { kind: TokenKind::Comment { block: true }, start, end: i, line: start_line });
            continue;
        }
        // Raw (byte) strings — must be checked before identifiers, since
        // they start with `r` / `b`.
        if let Some((hashes, delim)) = mask::raw_string_start(&bytes[i..]) {
            i += delim;
            let mut terminated = false;
            while i < bytes.len() {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if bytes[i] == b'"' && mask::closes_raw_string(&bytes[i + 1..], hashes) {
                    i += 1 + hashes as usize;
                    terminated = true;
                    break;
                }
                i += 1;
            }
            toks.push(Token {
                kind: TokenKind::Str { raw: true, terminated },
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Cooked strings, optionally byte-prefixed.
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            i += if b == b'b' { 2 } else { 1 };
            let mut terminated = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        if bytes.get(i + 1) == Some(&b'\n') {
                            line += 1;
                        }
                        i = (i + 2).min(bytes.len());
                    }
                    b'"' => {
                        i += 1;
                        terminated = true;
                        break;
                    }
                    c => {
                        if c == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            toks.push(Token {
                kind: TokenKind::Str { raw: false, terminated },
                start,
                end: i,
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            if mask::is_char_literal(&bytes[i..]) {
                i += 1;
                let mut terminated = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i = (i + 2).min(bytes.len()),
                        b'\'' => {
                            i += 1;
                            terminated = true;
                            break;
                        }
                        c => {
                            if c == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                }
                toks.push(Token { kind: TokenKind::Char { terminated }, start, end: i, line: start_line });
            } else {
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                toks.push(Token { kind: TokenKind::Lifetime, start, end: i, line: start_line });
            }
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(b) {
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            toks.push(Token { kind: TokenKind::Ident, start, end: i, line: start_line });
            continue;
        }
        // Numbers. The integer part munches alphanumerics (covers `0xff`,
        // `1_000`, `42u64`); a fraction is taken only when `.` is followed
        // by a digit, so `0..n` and `1.max(2)` stay separate tokens.
        if b.is_ascii_digit() {
            while i < bytes.len() && (is_ident_continue(bytes[i])) {
                i += 1;
            }
            let mut kind = TokenKind::Int;
            if bytes.get(i) == Some(&b'.')
                && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
            {
                kind = TokenKind::Float;
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                // Exponent with an explicit sign: `1.5e-3`.
                if i > 0
                    && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
                    && matches!(bytes.get(i), Some(b'+') | Some(b'-'))
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                }
            }
            toks.push(Token { kind, start, end: i, line: start_line });
            continue;
        }
        // Punctuation, maximal munch.
        let rest = &src[i..];
        if let Some(p) = PUNCT3.iter().find(|p| rest.starts_with(**p)) {
            i += p.len();
            toks.push(Token { kind: TokenKind::Punct, start, end: i, line: start_line });
            continue;
        }
        if let Some(p) = PUNCT2.iter().find(|p| rest.starts_with(**p)) {
            i += p.len();
            toks.push(Token { kind: TokenKind::Punct, start, end: i, line: start_line });
            continue;
        }
        if b.is_ascii_punctuation() {
            i += 1;
            toks.push(Token { kind: TokenKind::Punct, start, end: i, line: start_line });
            continue;
        }
        i += 1;
        toks.push(Token { kind: TokenKind::Unknown, start, end: i, line: start_line });
    }
    toks
}

/// Rebuild the masking lexer's output ([`mask::lex`]) from the token
/// stream: literal and comment bodies blanked with the same
/// quirk-for-quirk visibility rules (opening quote of a cooked string
/// visible, only the closing quote of a raw string visible, char quotes
/// visible), comments collected with their start lines.
///
/// Exists for the differential test that pins the tokenizer to the
/// masking lexer on every `.rs` file in the workspace.
pub fn masked_via_tokens(src: &str) -> Lexed {
    let toks = tokenize(src);
    let mut m: Vec<u8> = src.as_bytes().to_vec();
    let mut comments = Vec::new();
    fn blank(m: &mut [u8], start: usize, end: usize) {
        for b in m.get_mut(start..end).unwrap_or(&mut []) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    for t in &toks {
        match t.kind {
            TokenKind::Comment { .. } => {
                comments.push(Comment { line: t.line, text: t.text(src).to_string() });
                blank(&mut m, t.start, t.end);
            }
            TokenKind::Str { raw: false, terminated } => {
                // The opening `"` (after an optional `b` prefix, which is
                // blanked) and the closing `"` stay visible.
                let open = if src.as_bytes().get(t.start) == Some(&b'b') { t.start + 1 } else { t.start };
                blank(&mut m, t.start, t.end);
                if let Some(q) = m.get_mut(open) {
                    *q = b'"';
                }
                if terminated {
                    if let Some(q) = m.get_mut(t.end - 1) {
                        *q = b'"';
                    }
                }
            }
            TokenKind::Str { raw: true, terminated } => {
                // The whole opening delimiter is blanked; of the closing
                // delimiter only the `"` stays visible.
                blank(&mut m, t.start, t.end);
                if terminated {
                    let hashes = mask::raw_string_start(&src.as_bytes()[t.start..])
                        .map(|(h, _)| h as usize)
                        .unwrap_or(0);
                    if let Some(q) = m.get_mut(t.end - 1 - hashes) {
                        *q = b'"';
                    }
                }
            }
            TokenKind::Char { terminated } => {
                blank(&mut m, t.start + 1, if terminated { t.end - 1 } else { t.end });
            }
            _ => {}
        }
    }
    Lexed { masked: String::from_utf8_lossy(&m).into_owned(), comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn joins_multichar_operators() {
        assert_eq!(texts("a <<= b >>= c ..= d"), vec!["a", "<<=", "b", ">>=", "c", "..=", "d"]);
        assert_eq!(texts("x::y->z=>w"), vec!["x", "::", "y", "->", "z", "=>", "w"]);
    }

    #[test]
    fn ranges_do_not_become_floats() {
        assert_eq!(texts("0..size"), vec!["0", "..", "size"]);
        assert_eq!(texts("1..=n"), vec!["1", "..=", "n"]);
        assert_eq!(texts("0.5"), vec!["0.5"]);
        assert_eq!(kinds("0.5")[0], TokenKind::Float);
    }

    #[test]
    fn suffixed_and_based_ints_are_single_tokens() {
        assert_eq!(texts("0xffff_u64 42usize 0b1010"), vec!["0xffff_u64", "42usize", "0b1010"]);
        assert!(kinds("0xffff_u64").iter().all(|k| *k == TokenKind::Int));
    }

    #[test]
    fn tuple_field_access_is_dot_int() {
        assert_eq!(texts("self.0"), vec!["self", ".", "0"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) { let c = 'u'; }");
        assert!(t.contains(&"'a".to_string()));
        assert!(t.contains(&"'u'".to_string()));
        let k = kinds("'a 'u'");
        assert_eq!(k[0], TokenKind::Lifetime);
        assert_eq!(k[1], TokenKind::Char { terminated: true });
    }

    #[test]
    fn raw_strings_span_to_closing_hashes() {
        let src = r##"let s = r#"body "quoted" here"#; x"##;
        let toks = tokenize(src);
        let s = toks.iter().find(|t| matches!(t.kind, TokenKind::Str { raw: true, .. })).unwrap();
        assert!(s.text(src).ends_with("\"#"));
        assert_eq!(toks.last().unwrap().text(src), "x");
    }

    #[test]
    fn line_numbers_track_newlines_inside_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1; // note\n";
        let toks = tokenize(src);
        let b = toks.iter().find(|t| t.text(src) == "b").unwrap();
        assert_eq!(b.line, 3);
        let c = toks.iter().find(|t| matches!(t.kind, TokenKind::Comment { .. })).unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn masked_via_tokens_matches_mask_lexer_on_tricky_input() {
        let src = concat!(
            "//! doc\n",
            "fn f<'a>(s: &'a str) -> usize {\n",
            "    let c = '\\'';\n",
            "    let r = r#\"raw \"x\" body\"#;\n",
            "    let b = b\"bytes\\\"esc\";\n",
            "    /* block /* nested */ end */\n",
            "    s.len() // trailing\n",
            "}\n",
        );
        let a = mask::lex(src);
        let b = masked_via_tokens(src);
        assert_eq!(a.masked, b.masked);
        assert_eq!(a.comments, b.comments);
    }
}
