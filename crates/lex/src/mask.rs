//! A small Rust source lexer: separates code from comments, string
//! literals and char literals, so lint rules never fire on text inside a
//! literal or a comment.
//!
//! The output is a *masked* copy of the source in which the bodies of
//! comments and string/char literals are replaced by spaces (newlines are
//! preserved, so byte offsets and line numbers still line up with the
//! original), plus the list of comments with their line numbers (rules
//! that look for `// SAFETY:` justifications or `tidy:` waiver/marker
//! comments read those).
//!
//! Handled: line comments, (nested) block comments, doc comments, string
//! literals with escapes, raw strings `r#"…"#` with any number of hashes,
//! byte and byte-raw strings, char literals, and the char-vs-lifetime
//! ambiguity (`'a'` vs `'a`).

/// One comment in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output for one file.
#[derive(Clone, Debug)]
pub struct Lexed {
    /// Source with comment and literal *bodies* blanked to spaces.
    /// Newlines are kept, so `masked` has the same line structure as the
    /// input and the same length in bytes.
    pub masked: String,
    /// All comments, in order of appearance.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Lines of the masked source (0-indexed; line `i` is source line `i + 1`).
    pub fn masked_lines(&self) -> Vec<&str> {
        self.masked.lines().collect()
    }

    /// All comments on a given 1-based line (a comment spanning lines is
    /// reported on its first line only).
    pub fn comments_on_line(&self, line: usize) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
    /// String literal; `raw_hashes` is `None` for a normal string.
    Str { raw_hashes: Option<u32> },
    CharLit,
}

/// Convert accumulated comment bytes to text. The source is valid UTF-8,
/// so for well-formed input this is a lossless copy (the byte-wise
/// accumulation exists because the scanner walks bytes, not chars).
fn comment_text(buf: &[u8]) -> String {
    String::from_utf8_lossy(buf).into_owned()
}

/// Lex `src`, blanking comment and literal bodies.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut masked = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut state = State::Code;
    let mut line = 1usize;
    let mut comment_start_line = 0usize;
    let mut comment_buf: Vec<u8> = Vec::new();
    let mut i = 0usize;

    // Push `b` to the mask, blanking it unless it is a newline.
    fn blank(masked: &mut Vec<u8>, b: u8) {
        masked.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
        }
        match state {
            State::Code => {
                if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    state = State::LineComment;
                    comment_start_line = line;
                    comment_buf.clear();
                    comment_buf.extend_from_slice(b"//");
                    blank(&mut masked, b'/');
                    blank(&mut masked, b'/');
                    i += 2;
                    continue;
                }
                if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    state = State::BlockComment(1);
                    comment_start_line = line;
                    comment_buf.clear();
                    comment_buf.extend_from_slice(b"/*");
                    blank(&mut masked, b'/');
                    blank(&mut masked, b'*');
                    i += 2;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b", br#"…
                if let Some((hashes, len)) = raw_string_start(&bytes[i..]) {
                    state = State::Str { raw_hashes: Some(hashes) };
                    // Keep the opening delimiter visible in the mask so the
                    // code structure (an expression here) remains apparent.
                    for _ in 0..len {
                        blank(&mut masked, bytes[i]);
                        i += 1;
                    }
                    continue;
                }
                if b == b'"' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
                    if b == b'b' {
                        blank(&mut masked, b'b');
                        i += 1;
                    }
                    masked.push(b'"');
                    i += 1;
                    state = State::Str { raw_hashes: None };
                    continue;
                }
                if b == b'\'' && is_char_literal(&bytes[i..]) {
                    masked.push(b'\'');
                    i += 1;
                    state = State::CharLit;
                    continue;
                }
                masked.push(b);
                i += 1;
            }
            State::LineComment => {
                if b == b'\n' {
                    masked.push(b'\n');
                    comments
                        .push(Comment { line: comment_start_line, text: comment_text(&comment_buf) });
                    state = State::Code;
                } else {
                    comment_buf.push(b);
                    blank(&mut masked, b);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    comment_buf.extend_from_slice(b"*/");
                    blank(&mut masked, b'*');
                    blank(&mut masked, b'/');
                    i += 2;
                    if depth == 1 {
                        comments.push(Comment {
                            line: comment_start_line,
                            text: comment_text(&comment_buf),
                        });
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    continue;
                }
                if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    comment_buf.extend_from_slice(b"/*");
                    blank(&mut masked, b'/');
                    blank(&mut masked, b'*');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                comment_buf.push(b);
                blank(&mut masked, b);
                i += 1;
            }
            State::Str { raw_hashes: None } => {
                if b == b'\\' && i + 1 < bytes.len() {
                    if bytes[i + 1] == b'\n' {
                        line += 1;
                    }
                    blank(&mut masked, b);
                    blank(&mut masked, bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if b == b'"' {
                    masked.push(b'"');
                    state = State::Code;
                } else {
                    blank(&mut masked, b);
                }
                i += 1;
            }
            State::Str { raw_hashes: Some(hashes) } => {
                if b == b'"' && closes_raw_string(&bytes[i + 1..], hashes) {
                    masked.push(b'"');
                    i += 1;
                    for _ in 0..hashes {
                        blank(&mut masked, b'#');
                        i += 1;
                    }
                    state = State::Code;
                    continue;
                }
                blank(&mut masked, b);
                i += 1;
            }
            State::CharLit => {
                if b == b'\\' && i + 1 < bytes.len() {
                    blank(&mut masked, b);
                    blank(&mut masked, bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if b == b'\'' {
                    masked.push(b'\'');
                    state = State::Code;
                } else {
                    blank(&mut masked, b);
                }
                i += 1;
            }
        }
    }
    // Close a trailing line comment at EOF.
    if matches!(state, State::LineComment | State::BlockComment(_)) {
        comments.push(Comment { line: comment_start_line, text: comment_text(&comment_buf) });
    }
    Lexed {
        // The mask only ever replaces bytes with ASCII spaces, so it stays
        // valid UTF-8 (multi-byte chars are blanked byte-by-byte).
        masked: String::from_utf8_lossy(&masked).into_owned(),
        comments,
    }
}

/// Does `s` start a raw (byte) string? Returns (hash count, delimiter length).
pub(crate) fn raw_string_start(s: &[u8]) -> Option<(u32, usize)> {
    let mut j = 0;
    if s.first() == Some(&b'b') {
        j += 1;
    }
    if s.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while s.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if s.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// After a closing `"` inside a raw string, are the required hashes present?
pub(crate) fn closes_raw_string(rest: &[u8], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&b'#'))
}

/// Distinguish `'a'` / `'\n'` char literals from `'a` lifetimes: a char
/// literal closes with a `'` within a couple of characters (or starts with
/// a backslash escape).
pub(crate) fn is_char_literal(s: &[u8]) -> bool {
    debug_assert_eq!(s.first(), Some(&b'\''));
    match s.get(1) {
        Some(b'\\') => true,
        // `''` is not valid Rust; treat defensively as a literal.
        Some(b'\'') => true,
        Some(&first) => {
            // Multi-byte UTF-8 chars: find the end of the first char.
            let tail = &s[1..];
            tail.get(utf8_len(first)) == Some(&b'\'')
        }
        None => false,
    }
}

pub(crate) fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_string_contents() {
        let l = lex(r#"let s = "unsafe { panic!() }"; x();"#);
        assert!(!l.masked.contains("unsafe"));
        assert!(!l.masked.contains("panic"));
        assert!(l.masked.contains("let s ="));
        assert!(l.masked.contains("x();"));
        assert_eq!(l.masked.len(), r#"let s = "unsafe { panic!() }"; x();"#.len());
    }

    #[test]
    fn collects_comments_with_lines() {
        let src = "fn f() {}\n// SAFETY: fine\nunsafe {}\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.contains("SAFETY"));
        assert!(l.masked.contains("unsafe {}"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still */ b");
        assert!(l.masked.starts_with('a'));
        assert!(l.masked.trim_end().ends_with('b'));
        assert!(!l.masked.contains("inner"));
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r##"let s = r#"has "quotes" and unwrap()"#; done();"##);
        assert!(!l.masked.contains("unwrap"));
        assert!(l.masked.contains("done();"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = '\\''; let q = 'u'; g(x) }");
        // The lifetime must not start a literal that swallows code.
        assert!(l.masked.contains("str"));
        assert!(l.masked.contains("g(x)"));
        assert!(!l.masked.contains("'u'") || l.masked.contains("' '"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let l = lex("/// # Safety\n/// caller checks\npub unsafe fn f() {}\n");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("# Safety"));
        assert!(l.masked.contains("pub unsafe fn f()"));
    }

    #[test]
    fn byte_strings_and_escapes() {
        let l = lex(r#"const M: &[u8; 2] = b"\"x"; next();"#);
        assert!(l.masked.contains("next();"));
    }

    #[test]
    fn mask_preserves_line_count() {
        let src = "a\n\"two\nlines\"\n/* c\nc */\nb\n";
        let l = lex(src);
        assert_eq!(l.masked.lines().count(), src.lines().count());
    }

    #[test]
    fn non_ascii_comment_text_survives() {
        // Doc comments in this workspace use `≤` and `−`; the collected
        // comment text must be real UTF-8, not byte-wise mojibake.
        let src = "// bound: k−1 ≤ k′\nfn f() {}\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("k−1 ≤ k′"));
    }
}
