//! Shared Rust-source lexing for the workspace's static-analysis tools.
//!
//! Two views of the same lexical structure live here:
//!
//! * [`mask`] — the literal-aware *masking* lexer originally grown inside
//!   `cachegraph-tidy`: it blanks comment and literal bodies so line-based
//!   lint rules never fire on text inside a string or a comment, and
//!   collects the comments (for `// SAFETY:` and `tidy:` markers).
//! * [`token`] — a span-carrying *tokenizer* producing a flat token
//!   stream (identifiers, literals, comments, joined operator punctuation)
//!   that `cachegraph-analyze`'s recursive-descent parser consumes.
//!
//! Both paths must agree on where comments and literals begin and end;
//! [`token::masked_via_tokens`] rebuilds the masking lexer's exact output
//! from the token stream, and a differential test tokenizes every `.rs`
//! file in the workspace through both paths and asserts they match, so
//! the tokenizer cannot silently drift from the battle-tested lexer.

pub mod mask;
pub mod token;

pub use mask::{lex, Comment, Lexed};
pub use token::{tokenize, Token, TokenKind};
