//! Cross-algorithm oracle tests: Dijkstra vs Bellman-Ford, Prim vs
//! Kruskal, over random graphs and all representation/queue combinations.
//! Instances are drawn from a seeded PRNG so runs are deterministic.

use cachegraph_graph::{generators, Graph, INF};
use cachegraph_pq::{DAryHeap, FibonacciHeap, IndexedBinaryHeap, PairingHeap, RadixHeap};
use cachegraph_rng::StdRng;
use cachegraph_sssp::{bellman_ford, dijkstra, kruskal, prim, NO_VERTEX};

#[test]
fn dijkstra_matches_bellman_ford() {
    let mut rng = StdRng::seed_from_u64(0xd1b4);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..80);
        let density = rng.gen_range(0.02f64..0.5);
        let seed = rng.next_u64();
        let b = generators::random_directed(n, density, 64, seed);
        let g = b.build_array();
        let bf = bellman_ford(&g, 0);
        let dj = dijkstra::<_, IndexedBinaryHeap>(&g, 0);
        assert_eq!(bf.dist, dj.dist, "n={n} density={density} seed={seed}");
    }
}

#[test]
fn dijkstra_agrees_across_queues_and_reps() {
    let mut rng = StdRng::seed_from_u64(0xd1ae);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..60);
        let density = rng.gen_range(0.05f64..0.4);
        let seed = rng.next_u64();
        let b = generators::random_directed(n, density, 64, seed);
        let arr = b.build_array();
        let list = b.build_list();
        let expect = dijkstra::<_, IndexedBinaryHeap>(&arr, 0).dist;
        assert_eq!(dijkstra::<_, DAryHeap<4>>(&arr, 0).dist, expect);
        assert_eq!(dijkstra::<_, FibonacciHeap>(&arr, 0).dist, expect);
        assert_eq!(dijkstra::<_, PairingHeap>(&arr, 0).dist, expect);
        assert_eq!(dijkstra::<_, RadixHeap>(&arr, 0).dist, expect);
        assert_eq!(dijkstra::<_, IndexedBinaryHeap>(&list, 0).dist, expect);
    }
}

#[test]
fn prim_weight_matches_kruskal() {
    let mut rng = StdRng::seed_from_u64(0x9817);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..60);
        let density = rng.gen_range(0.05f64..0.5);
        let seed = rng.next_u64();
        let mut b = generators::random_undirected(n, density, 64, seed);
        generators::connect(&mut b, 64, seed); // spanning tree must exist
        let g = b.build_array();
        let p = prim::<_, IndexedBinaryHeap>(&g, 0);
        let (kw, ktree) = kruskal(n, b.edges());
        assert_eq!(p.total_weight, kw, "n={n} density={density} seed={seed}");
        assert_eq!(p.tree_size, n);
        assert_eq!(ktree.len(), n - 1);
    }
}

#[test]
fn dijkstra_distances_satisfy_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(0x7214);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..40);
        let density = rng.gen_range(0.05f64..0.5);
        let seed = rng.next_u64();
        let g = generators::random_directed(n, density, 64, seed).build_array();
        let d = dijkstra::<_, IndexedBinaryHeap>(&g, 0).dist;
        // Every edge must be relaxed: d[v] <= d[u] + w(u, v).
        for u in 0..n as u32 {
            if d[u as usize] == INF {
                continue;
            }
            for (v, w) in g.neighbors(u) {
                assert!(d[v as usize] <= d[u as usize].saturating_add(w));
            }
        }
    }
}

#[test]
fn dijkstra_tree_edges_are_tight() {
    let mut rng = StdRng::seed_from_u64(0x7164);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..40);
        let density = rng.gen_range(0.05f64..0.5);
        let seed = rng.next_u64();
        let g = generators::random_directed(n, density, 64, seed).build_array();
        let r = dijkstra::<_, IndexedBinaryHeap>(&g, 0);
        for v in 0..n {
            let p = r.pred[v];
            if p == NO_VERTEX {
                continue;
            }
            // d[v] = d[p] + w(p, v) for the tree edge actually used.
            let w = g.neighbors(p).find(|&(x, _)| x as usize == v).map(|(_, w)| w);
            let w = w.expect("pred edge must exist");
            assert_eq!(r.dist[v], r.dist[p as usize].saturating_add(w));
        }
    }
}
