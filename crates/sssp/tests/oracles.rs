//! Cross-algorithm oracle tests: Dijkstra vs Bellman-Ford, Prim vs
//! Kruskal, over random graphs and all representation/queue combinations.

use cachegraph_graph::{generators, Graph, INF};
use cachegraph_pq::{DAryHeap, FibonacciHeap, IndexedBinaryHeap, PairingHeap, RadixHeap};
use cachegraph_sssp::{bellman_ford, dijkstra, kruskal, prim, NO_VERTEX};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_matches_bellman_ford(
        n in 2usize..80,
        density in 0.02f64..0.5,
        seed in any::<u64>(),
    ) {
        let b = generators::random_directed(n, density, 64, seed);
        let g = b.build_array();
        let bf = bellman_ford(&g, 0);
        let dj = dijkstra::<_, IndexedBinaryHeap>(&g, 0);
        prop_assert_eq!(bf.dist, dj.dist);
    }

    #[test]
    fn dijkstra_agrees_across_queues_and_reps(
        n in 2usize..60,
        density in 0.05f64..0.4,
        seed in any::<u64>(),
    ) {
        let b = generators::random_directed(n, density, 64, seed);
        let arr = b.build_array();
        let list = b.build_list();
        let expect = dijkstra::<_, IndexedBinaryHeap>(&arr, 0).dist;
        prop_assert_eq!(&dijkstra::<_, DAryHeap<4>>(&arr, 0).dist, &expect);
        prop_assert_eq!(&dijkstra::<_, FibonacciHeap>(&arr, 0).dist, &expect);
        prop_assert_eq!(&dijkstra::<_, PairingHeap>(&arr, 0).dist, &expect);
        prop_assert_eq!(&dijkstra::<_, RadixHeap>(&arr, 0).dist, &expect);
        prop_assert_eq!(&dijkstra::<_, IndexedBinaryHeap>(&list, 0).dist, &expect);
    }

    #[test]
    fn prim_weight_matches_kruskal(
        n in 2usize..60,
        density in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut b = generators::random_undirected(n, density, 64, seed);
        generators::connect(&mut b, 64, seed); // spanning tree must exist
        let g = b.build_array();
        let p = prim::<_, IndexedBinaryHeap>(&g, 0);
        let (kw, ktree) = kruskal(n, b.edges());
        prop_assert_eq!(p.total_weight, kw);
        prop_assert_eq!(p.tree_size, n);
        prop_assert_eq!(ktree.len(), n - 1);
    }

    #[test]
    fn dijkstra_distances_satisfy_triangle_inequality(
        n in 2usize..40,
        density in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let g = generators::random_directed(n, density, 64, seed).build_array();
        let d = dijkstra::<_, IndexedBinaryHeap>(&g, 0).dist;
        // Every edge must be relaxed: d[v] <= d[u] + w(u, v).
        for u in 0..n as u32 {
            if d[u as usize] == INF {
                continue;
            }
            for (v, w) in g.neighbors(u) {
                prop_assert!(d[v as usize] <= d[u as usize].saturating_add(w));
            }
        }
    }

    #[test]
    fn dijkstra_tree_edges_are_tight(
        n in 2usize..40,
        density in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let g = generators::random_directed(n, density, 64, seed).build_array();
        let r = dijkstra::<_, IndexedBinaryHeap>(&g, 0);
        for v in 0..n {
            let p = r.pred[v];
            if p == NO_VERTEX {
                continue;
            }
            // d[v] = d[p] + w(p, v) for the tree edge actually used.
            let w = g.neighbors(p).find(|&(x, _)| x as usize == v).map(|(_, w)| w);
            let w = w.expect("pred edge must exist");
            prop_assert_eq!(r.dist[v], r.dist[p as usize].saturating_add(w));
        }
    }
}
