//! Seeded property matrix for the parallel delta-stepping driver:
//! every (threads, shape) cell must produce `dist` AND `pred` arrays
//! bit-identical to the serial driver, and distances equal to
//! Dijkstra's. Every assertion prints the seed so a failure replays
//! deterministically.

use cachegraph_graph::{generators, AdjacencyArray, EdgeListBuilder, Weight, INF};
use cachegraph_sssp::{delta_stepping, delta_stepping_parallel, dijkstra_binary_heap};

const THREADS: &[usize] = &[1, 2, 4];
const DELTAS: &[Weight] = &[1, 3, 8];

/// Assert the full matrix property for one graph under one seed label.
fn assert_matrix(g: &AdjacencyArray, seed: u64, label: &str) {
    let reference = dijkstra_binary_heap(g, 0);
    for &delta in DELTAS {
        let serial = delta_stepping(g, 0, delta);
        assert_eq!(
            serial.dist, reference.dist,
            "seed {seed:#x} {label} delta {delta}: serial dist != dijkstra"
        );
        for &threads in THREADS {
            let par = delta_stepping_parallel(g, 0, delta, threads);
            assert_eq!(
                par.dist, serial.dist,
                "seed {seed:#x} {label} delta {delta} threads {threads}: dist diverged"
            );
            assert_eq!(
                par.pred, serial.pred,
                "seed {seed:#x} {label} delta {delta} threads {threads}: pred diverged"
            );
        }
    }
}

#[test]
fn single_vertex() {
    let g = EdgeListBuilder::new(1).build_array();
    assert_matrix(&g, 0, "n=1");
}

#[test]
fn disconnected_components() {
    for seed in [0x5eed, 0xace0, 0xbeef] {
        // Two random halves with no cross edges: everything in the
        // second half must stay at INF under every thread count.
        let half = generators::random_directed(10, 0.3, 9, seed);
        let mut b = EdgeListBuilder::new(20);
        for e in half.edges() {
            b.add(e.from, e.to, e.weight);
            b.add(e.from + 10, e.to + 10, e.weight);
        }
        let g = b.build_array();
        assert_matrix(&g, seed, "disconnected");
        let serial = delta_stepping(&g, 0, 3);
        assert!(
            serial.dist[10..].iter().all(|&d| d == INF),
            "seed {seed:#x}: unreachable component got a finite distance"
        );
    }
}

#[test]
fn zero_weight_edges() {
    for seed in [0x5eed, 0xace0] {
        // A zero-weight cycle plus random weighted chords: zero-weight
        // relaxations stay in the current bucket and must terminate.
        let n = 12u32;
        let mut b = EdgeListBuilder::new(n as usize);
        for v in 0..n {
            b.add(v, (v + 1) % n, 0);
        }
        let chords = generators::random_directed(n as usize, 0.25, 7, seed);
        for e in chords.edges() {
            b.add(e.from, e.to, e.weight);
        }
        assert_matrix(&b.build_array(), seed, "zero-weight");
    }
}

#[test]
fn long_path_spanning_many_buckets() {
    let n = 40u32;
    let mut b = EdgeListBuilder::new(n as usize);
    for v in 0..n - 1 {
        b.add(v, v + 1, 1 + (v % 5));
    }
    assert_matrix(&b.build_array(), 0, "path");
}

#[test]
fn random_graph_sweep() {
    for seed in [0x5eed, 0xace0, 0xbeef, 0xcafe] {
        for (n, density) in [(16, 0.2), (48, 0.08)] {
            let g = generators::random_directed(n, density, 20, seed).build_array();
            assert_matrix(&g, seed, "random");
        }
    }
}

#[test]
fn more_threads_than_vertices() {
    for seed in [0x5eed, 0xace0] {
        let g = generators::random_directed(5, 0.4, 6, seed).build_array();
        let serial = delta_stepping(&g, 0, 2);
        for threads in [7, 16] {
            let par = delta_stepping_parallel(&g, 0, 2, threads);
            assert_eq!(
                (par.dist, par.pred),
                (serial.dist.clone(), serial.pred.clone()),
                "seed {seed:#x} threads {threads}: oversubscribed run diverged"
            );
        }
    }
}
