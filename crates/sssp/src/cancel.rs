//! Cancellable Dijkstra for deadline-propagating callers.
//!
//! The serve daemon must never let a long query hang a worker past its
//! deadline: [`dijkstra_cancellable`] is the paper-faithful
//! [`dijkstra`](crate::dijkstra) loop with two additions, neither of
//! which touches the kernel's access pattern:
//!
//! * a *cancellation check* polled every [`CANCEL_CHECK_INTERVAL`]
//!   extract-mins (the "bucket boundary" — checking per relaxation
//!   would put a branch in the hot loop for nothing, since a deadline
//!   is milliseconds and a bucket is microseconds);
//! * an optional *target* vertex: point-to-point queries stop as soon
//!   as the target is settled, since every later extraction is farther
//!   away.
//!
//! The check is a plain `FnMut() -> bool` closure, so this crate never
//! references the observability layer (the obs-purity fixture pair
//! `obs_pos_cancel.rs` / `obs_neg_cancel.rs` in `cachegraph-tidy`
//! documents exactly this seam); callers build the closure from a
//! deadline, an `AtomicBool`, or anything else. The poll cadence is
//! also the unit of the serve layer's `cancel_polls` trace tag: one
//! count per [`CANCEL_CHECK_INTERVAL`] extract-mins, so a request
//! trace exposes how often a query could have been abandoned.

use cachegraph_graph::{Graph, VertexId, Weight, INF};
use cachegraph_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

use crate::dijkstra::SsspResult;
use crate::NO_VERTEX;

/// Extract-mins between cancellation polls.
pub const CANCEL_CHECK_INTERVAL: usize = 64;

/// The query was cancelled before it finished; partial results are
/// discarded (a half-filled distance array is not an answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query cancelled at a bucket boundary")
    }
}

impl std::error::Error for Cancelled {}

/// [`dijkstra`](crate::dijkstra) with cancellation and optional early
/// exit at `target`. `cancel` is polled every
/// [`CANCEL_CHECK_INTERVAL`] extract-mins; returning `true` abandons
/// the search with [`Cancelled`]. With a target, distances of vertices
/// settled *after* the target are left `INF` — `dist[target]` and
/// everything nearer are exact.
pub fn dijkstra_cancellable<G: Graph, Q: DecreaseKeyQueue>(
    g: &G,
    source: VertexId,
    target: Option<VertexId>,
    cancel: &mut impl FnMut() -> bool,
) -> Result<SsspResult, Cancelled> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    if let Some(t) = target {
        assert!((t as usize) < n, "target out of range");
    }
    let mut dist = vec![INF; n];
    let mut pred = vec![NO_VERTEX; n];
    let mut q = Q::with_capacity(n);
    for v in 0..n as VertexId {
        q.insert(v, if v == source { 0 } else { INF });
    }
    dist[source as usize] = 0;
    let mut since_check = 0usize;
    while let Some((u, du)) = q.extract_min() {
        if du == INF {
            break; // remaining vertices unreachable
        }
        since_check += 1;
        if since_check >= CANCEL_CHECK_INTERVAL {
            since_check = 0;
            if cancel() {
                return Err(Cancelled);
            }
        }
        dist[u as usize] = du;
        if target == Some(u) {
            break; // target settled: its distance is final
        }
        for (v, w) in g.neighbors(u) {
            let nd = du.saturating_add(w);
            if q.decrease_key(v, nd) {
                pred[v as usize] = u;
            }
        }
    }
    Ok(SsspResult { dist, pred })
}

/// [`dijkstra_cancellable`] with the standard indexed binary heap.
pub fn dijkstra_to<G: Graph>(
    g: &G,
    source: VertexId,
    target: Option<VertexId>,
    cancel: &mut impl FnMut() -> bool,
) -> Result<SsspResult, Cancelled> {
    dijkstra_cancellable::<G, IndexedBinaryHeap>(g, source, target, cancel)
}

/// Shortest `source -> target` distance with cancellation (`INF` when
/// unreachable).
pub fn distance_to<G: Graph>(
    g: &G,
    source: VertexId,
    target: VertexId,
    cancel: &mut impl FnMut() -> bool,
) -> Result<Weight, Cancelled> {
    let r = dijkstra_to(g, source, Some(target), cancel)?;
    Ok(r.dist[target as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_binary_heap;
    use cachegraph_graph::generators;

    #[test]
    fn uncancelled_matches_plain_dijkstra() {
        for seed in 0..4 {
            let g = generators::random_directed(80, 0.08, 50, seed).build_array();
            let plain = dijkstra_binary_heap(&g, 0);
            let cancellable =
                dijkstra_to(&g, 0, None, &mut || false).expect("never cancelled");
            assert_eq!(plain.dist, cancellable.dist, "seed {seed}");
            assert_eq!(plain.pred, cancellable.pred, "seed {seed}");
        }
    }

    #[test]
    fn early_exit_settles_the_target_exactly() {
        let g = generators::random_directed(120, 0.06, 50, 9).build_array();
        let plain = dijkstra_binary_heap(&g, 3);
        for t in [0u32, 17, 64, 119] {
            let d = distance_to(&g, 3, t, &mut || false).expect("not cancelled");
            assert_eq!(d, plain.dist[t as usize], "target {t}");
        }
    }

    #[test]
    fn cancellation_fires_at_a_bucket_boundary() {
        // A graph big enough to cross the check interval at least once.
        let g = generators::random_directed(300, 0.05, 50, 2).build_array();
        let mut polls = 0usize;
        let result = dijkstra_to(&g, 0, None, &mut || {
            polls += 1;
            true // cancel at the first poll
        });
        assert_eq!(result, Err(Cancelled));
        assert_eq!(polls, 1, "first poll must already abandon the search");
    }

    #[test]
    fn small_searches_never_poll() {
        // Fewer extract-mins than the interval: the closure is not
        // consulted at all, so trivial queries pay zero overhead.
        let g = generators::random_directed(16, 0.3, 10, 1).build_array();
        let mut polls = 0usize;
        let r = dijkstra_to(&g, 0, None, &mut || {
            polls += 1;
            true
        });
        assert!(r.is_ok());
        assert_eq!(polls, 0);
    }

    #[test]
    fn cancelled_error_displays() {
        assert!(Cancelled.to_string().contains("bucket boundary"));
    }
}
