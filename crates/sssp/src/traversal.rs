//! Graph traversals and connectivity — the remaining extension algorithms
//! from the paper's conclusion (§5): BFS, DFS, connected components, and
//! strongly connected components, all of which stream the representation
//! and therefore inherit the adjacency-array optimization.

use cachegraph_graph::{Graph, VertexId};
use std::collections::VecDeque;

use crate::NO_VERTEX;

/// BFS tree from a source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// Hop count from the source, `u32::MAX` if unreachable.
    pub hops: Vec<u32>,
    /// BFS tree parent, [`NO_VERTEX`] for the source / unreachable.
    pub pred: Vec<VertexId>,
    /// Vertices in visit order.
    pub order: Vec<VertexId>,
}

/// Breadth-first search from `source`.
pub fn bfs<G: Graph>(g: &G, source: VertexId) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut hops = vec![u32::MAX; n];
    let mut pred = vec![NO_VERTEX; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    hops[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _) in g.neighbors(u) {
            if hops[v as usize] == u32::MAX {
                hops[v as usize] = hops[u as usize] + 1;
                pred[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    BfsResult { hops, pred, order }
}

/// Iterative depth-first search; returns vertices in preorder.
pub fn dfs_preorder<G: Graph>(g: &G, source: VertexId) -> Vec<VertexId> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if seen[u as usize] {
            continue;
        }
        seen[u as usize] = true;
        order.push(u);
        // Push in reverse so the first neighbour is visited first.
        let mut nbrs: Vec<VertexId> = g.neighbors(u).map(|(v, _)| v).collect();
        nbrs.reverse();
        for v in nbrs {
            if !seen[v as usize] {
                stack.push(v);
            }
        }
    }
    order
}

/// Connected-component labels for an undirected graph (both arcs present).
/// Returns `(labels, count)`; labels are dense in `0..count`.
pub fn connected_components<G: Graph>(g: &G) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in 0..n as VertexId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = count;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for (v, _) in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Strongly connected components of a directed graph (iterative Tarjan).
/// Returns `(labels, count)`; labels are in reverse topological order of
/// the condensation.
pub fn scc<G: Graph>(g: &G) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<VertexId> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frames: (vertex, neighbour iterator position).
    struct Frame {
        v: VertexId,
        nbrs: Vec<VertexId>,
        pos: usize,
    }

    for root in 0..n as VertexId {
        if index[root as usize] != UNSET {
            continue;
        }
        let mut frames = vec![Frame {
            v: root,
            nbrs: g.neighbors(root).map(|(w, _)| w).collect(),
            pos: 0,
        }];
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(frame) = frames.last_mut() {
            let v = frame.v;
            if frame.pos < frame.nbrs.len() {
                let w = frame.nbrs[frame.pos];
                frame.pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push(Frame {
                        v: w,
                        nbrs: g.neighbors(w).map(|(x, _)| x).collect(),
                        pos: 0,
                    });
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // Post-visit: close the component if v is a root.
                if lowlink[v as usize] == index[v as usize] {
                    // v is on the stack by the Tarjan invariant, so the
                    // loop always terminates at w == v.
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        comp[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.v;
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
            }
        }
    }
    (comp, count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegraph_graph::{generators, EdgeListBuilder};

    #[test]
    fn bfs_hops_on_grid() {
        let g = generators::grid_graph(3, 3).build_array();
        let r = bfs(&g, 0);
        assert_eq!(r.hops[0], 0);
        assert_eq!(r.hops[8], 4); // Manhattan distance corner to corner
        assert_eq!(r.order.len(), 9);
    }

    #[test]
    fn dfs_preorder_visits_all_reachable() {
        let g = generators::grid_graph(2, 4).build_array();
        let order = dfs_preorder(&g, 0);
        assert_eq!(order.len(), 8);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn components_of_disjoint_paths() {
        let mut b = EdgeListBuilder::new(6);
        b.add_undirected(0, 1, 1).add_undirected(1, 2, 1).add_undirected(3, 4, 1);
        let (labels, count) = connected_components(&b.build_array());
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
    }

    #[test]
    fn scc_of_two_cycles_and_bridge() {
        // Cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3.
        let mut b = EdgeListBuilder::new(5);
        b.add(0, 1, 1).add(1, 2, 1).add(2, 0, 1).add(2, 3, 1).add(3, 4, 1).add(4, 3, 1);
        let (comp, count) = scc(&b.build_array());
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        // Reverse topological order: the sink component {3,4} closes first.
        assert!(comp[3] < comp[0]);
    }

    #[test]
    fn scc_dag_has_singleton_components() {
        let mut b = EdgeListBuilder::new(4);
        b.add(0, 1, 1).add(1, 2, 1).add(0, 2, 1).add(2, 3, 1);
        let (comp, count) = scc(&b.build_array());
        assert_eq!(count, 4);
        let mut c = comp.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn scc_self_loop_single_vertex() {
        let mut b = EdgeListBuilder::new(1);
        b.add(0, 0, 1);
        let (comp, count) = scc(&b.build_array());
        assert_eq!(count, 1);
        assert_eq!(comp[0], 0);
    }

    #[test]
    fn bfs_pred_forms_shortest_hop_tree() {
        let g = generators::grid_graph(4, 4).build_array();
        let r = bfs(&g, 5);
        for v in 0..16u32 {
            if v != 5 {
                let p = r.pred[v as usize];
                assert_eq!(r.hops[v as usize], r.hops[p as usize] + 1);
            }
        }
    }
}
