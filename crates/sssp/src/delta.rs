//! Delta-stepping SSSP — the bucketed relaxation scheme the paper's
//! conclusion points at for parallel shortest paths — built on the
//! shared [`cachegraph_plan`] TaskGraph runtime.
//!
//! Vertices are grouped into buckets of width `delta` by tentative
//! distance. One *inner iteration* takes the current bucket's frontier
//! and runs two phases with declared, disjoint footprints:
//!
//! * **gather** — the frontier is split into contiguous chunks, one task
//!   per worker. Each task scans its frontier vertices' out-edges and
//!   appends *proposals* (`(v, dist, pred, slot)`) to a private vector.
//!   Tasks read the distance array and write only their own slot range
//!   (slot = position of the edge in the frontier's concatenated edge
//!   list), so writes are disjoint by construction.
//! * **scatter** — the vertex range `0..n` is split into fixed contiguous
//!   *owned* ranges, one task per worker. Each task scans **all**
//!   proposals in gather-task order and applies the strict-min update to
//!   the vertices it owns. Writes are confined to the owned range, so
//!   again disjoint by construction.
//!
//! Determinism: every scatter task applies proposals in the same global
//! slot order with a strict `<` comparison, and bucket pushes are merged
//! coordinator-side in owned-range order (ascending vertex id). The
//! result — `dist` *and* `pred` — is therefore bit-identical for every
//! thread count, and [`delta_stepping`] is literally the parallel driver
//! at `threads = 1` (where [`run_tasks_mut`] degrades to an inline loop
//! and spawns nothing).
//!
//! Footprint domain: unit `v` (for `v < n`) is vertex `v`'s dist/pred
//! entry; unit `n + j` is proposal slot `j` of the current iteration.
//! `cachegraph-check`'s delta driver proves the declared footprints
//! disjoint, replays both phases against shadow memory over every (or a
//! sampled set of) worker interleavings, and verifies the canonical
//! result against Dijkstra.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

use cachegraph_graph::{Graph, VertexId, Weight, INF};
use cachegraph_plan::{run_tasks_mut, NoSink, TaskFootprint, TaskGraph, UnitSink};

use crate::cancel::Cancelled;
use crate::dijkstra::SsspResult;
use crate::NO_VERTEX;

/// A relaxation candidate produced by the gather phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Proposal {
    /// Target vertex.
    pub v: VertexId,
    /// Proposed tentative distance.
    pub dist: Weight,
    /// Proposing vertex (the predecessor if this proposal wins).
    pub pred: VertexId,
    /// Global slot index of the edge that produced this proposal.
    pub slot: u32,
}

/// The task plan of one inner iteration: which worker gathers which
/// frontier chunk, which slot range it may write, and which vertex range
/// each scatter task owns.
#[derive(Clone, Debug)]
pub struct DeltaPhasePlan {
    /// Number of vertices (vertex units are `0..n`).
    pub n: usize,
    /// The deduplicated frontier of the current bucket.
    pub frontier: Vec<VertexId>,
    /// Index ranges into `frontier`, one per gather task.
    pub gather_chunks: Vec<Range<usize>>,
    /// `slot_of[p]` = first slot of frontier position `p`'s out-edges;
    /// the last entry is the total slot count.
    pub slot_of: Vec<usize>,
    /// Contiguous vertex ranges, one per scatter task, covering `0..n`.
    pub owned: Vec<Range<usize>>,
}

fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    if len == 0 {
        return out;
    }
    let workers = threads.min(len).max(1);
    let chunk = len.div_ceil(workers);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

impl DeltaPhasePlan {
    /// Plan one inner iteration over `frontier` for `threads` workers.
    pub fn new<G: Graph>(g: &G, frontier: Vec<VertexId>, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let n = g.num_vertices();
        let mut slot_of = Vec::with_capacity(frontier.len() + 1);
        let mut total = 0usize;
        slot_of.push(0);
        for &u in &frontier {
            total += g.neighbors(u).count();
            slot_of.push(total);
        }
        let gather_chunks = chunk_ranges(frontier.len(), threads);
        let owned = chunk_ranges(n, threads);
        Self { n, frontier, gather_chunks, slot_of, owned }
    }

    /// Total proposal slots of this iteration (= frontier out-degree sum).
    pub fn total_slots(&self) -> usize {
        *self.slot_of.last().unwrap_or(&0)
    }

    /// Footprint unit of proposal slot `j`.
    pub fn slot_unit(&self, j: usize) -> u64 {
        (self.n + j) as u64
    }

    /// Declared footprint of gather task `t`: reads the dist entries of
    /// its frontier vertices and their edge targets, writes its slot
    /// range (the actual writes — improving proposals only — are a
    /// subset).
    pub fn gather_footprint<G: Graph>(&self, g: &G, t: usize) -> TaskFootprint {
        let mut fp = TaskFootprint::default();
        let chunk = self.gather_chunks[t].clone();
        for p in chunk.clone() {
            let u = self.frontier[p];
            fp.reads.insert(u as u64);
            for (v, _) in g.neighbors(u) {
                fp.reads.insert(v as u64);
            }
        }
        for j in self.slot_of[chunk.start]..self.slot_of[chunk.end] {
            fp.writes.insert(self.slot_unit(j));
        }
        fp
    }

    /// Declared footprint of scatter task `t`: reads every proposal slot
    /// plus its owned dist entries, writes only the owned entries.
    pub fn scatter_footprint(&self, t: usize) -> TaskFootprint {
        let mut fp = TaskFootprint::default();
        for j in 0..self.total_slots() {
            fp.reads.insert(self.slot_unit(j));
        }
        for v in self.owned[t].clone() {
            fp.reads.insert(v as u64);
            fp.writes.insert(v as u64);
        }
        fp
    }

    /// The two-phase [`TaskGraph`] of this iteration.
    pub fn task_graph<G: Graph>(&self, g: &G) -> TaskGraph {
        let mut tg = TaskGraph::new("delta");
        tg.push_phase(
            "gather",
            (0..self.gather_chunks.len()).map(|t| self.gather_footprint(g, t)).collect(),
        );
        tg.push_phase(
            "scatter",
            (0..self.owned.len()).map(|t| self.scatter_footprint(t)).collect(),
        );
        tg
    }
}

/// Gather task body: scan the frontier chunk's out-edges against the
/// (phase-stable) distance array and append improving proposals in slot
/// order. Generic over the access sink so the differential footprint
/// test can record exactly what it touches.
pub fn gather_task<G: Graph, S: UnitSink>(
    g: &G,
    plan: &DeltaPhasePlan,
    t: usize,
    dist: &[Weight],
    out: &mut Vec<Proposal>,
    sink: &mut S,
) {
    for p in plan.gather_chunks[t].clone() {
        let u = plan.frontier[p];
        sink.read(u as u64);
        let du = dist[u as usize];
        for (e, (v, w)) in g.neighbors(u).enumerate() {
            sink.read(v as u64);
            let nd = du.saturating_add(w);
            if nd < dist[v as usize] {
                let slot = plan.slot_of[p] + e;
                sink.write(plan.slot_unit(slot));
                out.push(Proposal { v, dist: nd, pred: u, slot: slot as u32 });
            }
        }
    }
}

/// Scatter task body: apply every proposal owned by task `t` in global
/// slot order with a strict-min comparison. `dist`/`pred`/`improved`
/// are the owned sub-slices (index `v - owned[t].start`).
pub fn scatter_task<S: UnitSink>(
    plan: &DeltaPhasePlan,
    t: usize,
    proposals: &[&[Proposal]],
    dist: &mut [Weight],
    pred: &mut [VertexId],
    improved: &mut [bool],
    sink: &mut S,
) {
    let range = plan.owned[t].clone();
    for props in proposals {
        for pr in props.iter() {
            sink.read(plan.slot_unit(pr.slot as usize));
            let v = pr.v as usize;
            if range.contains(&v) {
                sink.read(v as u64);
                let i = v - range.start;
                if pr.dist < dist[i] {
                    sink.write(v as u64);
                    dist[i] = pr.dist;
                    pred[i] = pr.pred;
                    improved[i] = true;
                }
            }
        }
    }
}

/// Serial delta-stepping: the parallel driver at one thread (inline
/// loops, no spawns). Distances match Dijkstra exactly; `pred` is the
/// delta-stepping tree (first strict improvement in slot order).
pub fn delta_stepping<G: Graph + Sync>(g: &G, source: VertexId, delta: Weight) -> SsspResult {
    delta_stepping_parallel(g, source, delta, 1)
}

/// Parallel delta-stepping on `threads` scoped workers. Bit-identical
/// to [`delta_stepping`] for every thread count.
pub fn delta_stepping_parallel<G: Graph + Sync>(
    g: &G,
    source: VertexId,
    delta: Weight,
    threads: usize,
) -> SsspResult {
    match delta_stepping_parallel_cancellable(g, source, delta, threads, &|| false) {
        Ok(r) => r,
        // tidy: allow(panic-policy) — the never-cancelling hook makes Err unreachable.
        Err(Cancelled) => unreachable!("delta-stepping cancelled without a cancel hook"),
    }
}

/// [`delta_stepping_parallel`] with deadline propagation: `cancel` is
/// polled by the coordinator at every bucket boundary and by every
/// worker before each gather/scatter task. On `Err` the partial
/// distance array is dropped — it is not an answer.
pub fn delta_stepping_parallel_cancellable<G: Graph + Sync>(
    g: &G,
    source: VertexId,
    delta: Weight,
    threads: usize,
    cancel: &(impl Fn() -> bool + Sync),
) -> Result<SsspResult, Cancelled> {
    assert!(delta >= 1, "bucket width must be at least 1");
    assert!(threads >= 1, "need at least one thread");
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut pred = vec![NO_VERTEX; n];
    dist[source as usize] = 0;
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![source]];
    let mut in_frontier = vec![false; n];
    let cancelled = AtomicBool::new(false);
    let mut cur = 0usize;
    while cur < buckets.len() {
        while !buckets[cur].is_empty() {
            if cancel() {
                return Err(Cancelled);
            }
            // Deduplicate the bucket and drop stale entries (vertices
            // whose distance has since improved into another bucket).
            let raw = std::mem::take(&mut buckets[cur]);
            let mut frontier: Vec<VertexId> = Vec::with_capacity(raw.len());
            for v in raw {
                let vi = v as usize;
                if !in_frontier[vi] && dist[vi] != INF && (dist[vi] / delta) as usize == cur {
                    in_frontier[vi] = true;
                    frontier.push(v);
                }
            }
            for &v in &frontier {
                in_frontier[v as usize] = false;
            }
            if frontier.is_empty() {
                continue;
            }
            let plan = DeltaPhasePlan::new(g, frontier, threads);

            // Phase 1: gather proposals into per-task private vectors.
            let mut gathers: Vec<(usize, Vec<Proposal>)> =
                (0..plan.gather_chunks.len()).map(|t| (t, Vec::new())).collect();
            {
                let dist_ref: &[Weight] = &dist;
                let plan_ref = &plan;
                run_tasks_mut(&mut gathers, threads, |_, (t, out)| {
                    if cancel() {
                        cancelled.store(true, Ordering::Relaxed);
                        return;
                    }
                    gather_task(g, plan_ref, *t, dist_ref, out, &mut NoSink);
                });
            }
            if cancelled.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }
            let proposals: Vec<&[Proposal]> = gathers.iter().map(|(_, v)| v.as_slice()).collect();

            // Phase 2: scatter over disjoint owned vertex ranges.
            struct Owned<'a> {
                t: usize,
                dist: &'a mut [Weight],
                pred: &'a mut [VertexId],
                improved: Vec<bool>,
            }
            let mut tasks: Vec<Owned<'_>> = Vec::with_capacity(plan.owned.len());
            {
                let mut drest: &mut [Weight] = &mut dist;
                let mut prest: &mut [VertexId] = &mut pred;
                for (t, r) in plan.owned.iter().enumerate() {
                    let len = r.end - r.start;
                    let (d, dnext) = drest.split_at_mut(len);
                    let (p, pnext) = prest.split_at_mut(len);
                    drest = dnext;
                    prest = pnext;
                    tasks.push(Owned { t, dist: d, pred: p, improved: vec![false; len] });
                }
            }
            {
                let plan_ref = &plan;
                let proposals_ref: &[&[Proposal]] = &proposals;
                run_tasks_mut(&mut tasks, threads, |_, s| {
                    if cancel() {
                        cancelled.store(true, Ordering::Relaxed);
                        return;
                    }
                    scatter_task(
                        plan_ref,
                        s.t,
                        proposals_ref,
                        s.dist,
                        s.pred,
                        &mut s.improved,
                        &mut NoSink,
                    );
                });
            }
            if cancelled.load(Ordering::Relaxed) {
                return Err(Cancelled);
            }

            // Merge bucket pushes in owned-range order: globally
            // ascending vertex id, independent of thread count.
            for (task, r) in tasks.iter().zip(&plan.owned) {
                for (i, &imp) in task.improved.iter().enumerate() {
                    if imp {
                        let b = (task.dist[i] / delta) as usize;
                        if b >= buckets.len() {
                            buckets.resize(b + 1, Vec::new());
                        }
                        buckets[b].push((r.start + i) as VertexId);
                    }
                }
            }
        }
        cur += 1;
    }
    Ok(SsspResult { dist, pred })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_binary_heap;
    use cachegraph_graph::generators;

    #[test]
    fn distances_match_dijkstra() {
        for seed in 0..4 {
            let g = generators::random_directed(90, 0.06, 50, seed).build_array();
            let base = dijkstra_binary_heap(&g, 0);
            for delta in [1, 7, 16, 1000] {
                let r = delta_stepping(&g, 0, delta);
                assert_eq!(r.dist, base.dist, "seed {seed} delta {delta}");
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        for seed in 0..3 {
            let g = generators::random_directed(120, 0.05, 30, 40 + seed).build_array();
            let serial = delta_stepping(&g, 2, 8);
            for threads in [2, 3, 4, 9] {
                let par = delta_stepping_parallel(&g, 2, 8, threads);
                assert_eq!(par.dist, serial.dist, "seed {seed} threads {threads}");
                assert_eq!(par.pred, serial.pred, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn pred_forms_a_valid_shortest_path_tree() {
        let g = generators::random_directed(80, 0.08, 20, 5).build_array();
        let r = delta_stepping_parallel(&g, 0, 4, 4);
        for v in 0..80usize {
            if v != 0 && r.dist[v] != INF {
                let p = r.pred[v] as usize;
                let w = g
                    .neighbors(r.pred[v])
                    .filter(|&(t, _)| t as usize == v)
                    .map(|(_, w)| w)
                    .min()
                    .expect("pred edge must exist");
                assert_eq!(r.dist[p].saturating_add(w), r.dist[v], "v {v}");
            }
        }
    }

    #[test]
    fn plan_footprints_are_disjoint() {
        let g = generators::random_directed(40, 0.15, 10, 6).build_array();
        let frontier: Vec<VertexId> = vec![3, 11, 17, 20, 35];
        for threads in [1, 2, 4, 8] {
            let plan = DeltaPhasePlan::new(&g, frontier.clone(), threads);
            let tg = plan.task_graph(&g);
            let v = tg.check_disjoint();
            assert!(v.is_empty(), "threads {threads}: {}", v[0]);
        }
    }

    #[test]
    fn cancellation_returns_err_and_all_workers_poll() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let g = generators::random_directed(400, 0.03, 50, 13).build_array();
        let seen = Mutex::new(HashSet::new());
        let threads = 4;
        let r = delta_stepping_parallel_cancellable(&g, 0, 4, threads, &|| {
            let mut ids = match seen.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            ids.insert(std::thread::current().id());
            ids.len() > threads // cancel once every worker has polled
        });
        assert_eq!(r, Err(Cancelled));
        let ids = match seen.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        assert!(ids.len() > threads, "coordinator + {threads} workers must all poll");
    }

    #[test]
    fn single_vertex_and_unreachable() {
        let g = generators::random_directed(1, 0.0, 1, 0).build_array();
        let r = delta_stepping(&g, 0, 4);
        assert_eq!(r.dist, vec![0]);
        let mut b = cachegraph_graph::EdgeListBuilder::new(3);
        b.add(0, 1, 2);
        let r = delta_stepping_parallel(&b.build_array(), 0, 1, 4);
        assert_eq!(r.dist, vec![0, 2, INF]);
        assert_eq!(r.pred, vec![NO_VERTEX, 0, NO_VERTEX]);
    }

    #[test]
    fn zero_weight_edges_terminate_and_agree() {
        // A zero-weight cycle: proposals keep landing in the current
        // bucket; strict-min application guarantees termination.
        let mut b = cachegraph_graph::EdgeListBuilder::new(5);
        b.add(0, 1, 0).add(1, 2, 0).add(2, 0, 0).add(2, 3, 1).add(3, 4, 0);
        let g = b.build_array();
        let base = dijkstra_binary_heap(&g, 0);
        for threads in [1, 2, 4] {
            let r = delta_stepping_parallel(&g, 0, 3, threads);
            assert_eq!(r.dist, base.dist, "threads {threads}");
        }
    }
}
