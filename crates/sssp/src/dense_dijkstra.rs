//! Dense Dijkstra: the classic `O(N²)` array-scan variant.
//!
//! For dense graphs (the high end of the paper's density sweeps) the
//! priority queue is pure overhead: scanning a flat `dist` array for the
//! minimum costs `O(N)` per extraction but is branch-predictable and
//! perfectly sequential — the cache-friendliest possible "queue". This is
//! the natural companion of the adjacency-matrix representation and an
//! instructive extra point for the queue ablation.

use cachegraph_graph::{Graph, VertexId, INF};

use crate::dijkstra::SsspResult;
use crate::NO_VERTEX;

/// Dijkstra with an `O(N)` linear scan instead of a queue. Total cost
/// `O(N² + E)` — optimal for dense graphs.
pub fn dijkstra_dense<G: Graph>(g: &G, source: VertexId) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut pred = vec![NO_VERTEX; n];
    let mut done = vec![false; n];
    dist[source as usize] = 0;
    for _ in 0..n {
        // Linear scan for the nearest unfinished vertex.
        let mut u = NO_VERTEX;
        let mut best = INF;
        for (v, (&d, &fin)) in dist.iter().zip(&done).enumerate() {
            if !fin && d < best {
                best = d;
                u = v as VertexId;
            }
        }
        if u == NO_VERTEX {
            break; // the rest is unreachable
        }
        done[u as usize] = true;
        for (v, w) in g.neighbors(u) {
            let nd = best.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = u;
            }
        }
    }
    SsspResult { dist, pred }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_binary_heap;
    use cachegraph_graph::{generators, EdgeListBuilder};

    #[test]
    fn agrees_with_heap_dijkstra() {
        for seed in 0..6 {
            let b = generators::random_directed(100, 0.2, 50, seed);
            let arr = b.build_array();
            assert_eq!(
                dijkstra_dense(&arr, 0).dist,
                dijkstra_binary_heap(&arr, 0).dist,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn works_on_adjacency_matrix() {
        let b = generators::random_directed(60, 0.3, 50, 9);
        let mat = b.build_matrix();
        let arr = b.build_array();
        assert_eq!(dijkstra_dense(&mat, 0).dist, dijkstra_binary_heap(&arr, 0).dist);
    }

    #[test]
    fn unreachable_and_trivial() {
        let b = EdgeListBuilder::new(3);
        let r = dijkstra_dense(&b.build_array(), 2);
        assert_eq!(r.dist, vec![INF, INF, 0]);
    }
}
