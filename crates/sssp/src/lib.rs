//! Single-source shortest paths, minimum spanning trees, and traversals
//! over cache-friendly graph representations (paper §3.2 and §5).
//!
//! [`dijkstra`] and [`prim`] are generic over both the graph representation
//! (`cachegraph-graph`) and the priority queue (`cachegraph-pq`), so the
//! paper's comparisons — adjacency list vs adjacency array, binary heap vs
//! Fibonacci heap — are single-variable experiments over identical inputs.
//!
//! The conclusion's extension algorithms are here too: [`bellman_ford`]
//! (same streaming access pattern, same representation win), [`bfs`] /
//! [`dfs`] traversals, [`connected_components`], and [`scc`] (Tarjan).
//! [`kruskal`] serves as an independent MST oracle for testing Prim.
//!
//! [`instrumented`] replays Dijkstra and Prim — graph, distance array,
//! *and* heap — through the `cachegraph-sim` hierarchy for Tables 6 and 7.
//!
//! # Example
//!
//! ```
//! use cachegraph_graph::generators;
//! use cachegraph_sssp::dijkstra_binary_heap;
//!
//! let g = generators::random_directed(64, 0.2, 100, 7).build_array();
//! let sp = dijkstra_binary_heap(&g, 0);
//! assert_eq!(sp.dist[0], 0);
//! ```

mod bellman_ford;
mod cancel;
pub mod delta;
mod dense_dijkstra;
mod dijkstra;
pub mod instrumented;
mod kruskal;
mod lazy_dijkstra;
mod prim;
mod traversal;

pub use bellman_ford::bellman_ford;
pub use cancel::{
    dijkstra_cancellable, dijkstra_to, distance_to, Cancelled, CANCEL_CHECK_INTERVAL,
};
pub use delta::{
    delta_stepping, delta_stepping_parallel, delta_stepping_parallel_cancellable, DeltaPhasePlan,
    Proposal,
};
pub use dense_dijkstra::dijkstra_dense;
pub use dijkstra::{apsp_dijkstra, dijkstra, dijkstra_binary_heap, SsspResult};
pub use lazy_dijkstra::{dijkstra_lazy, dijkstra_lazy_sequence};
pub use kruskal::{kruskal, UnionFind};
pub use prim::{prim, prim_binary_heap, MstResult};
pub use traversal::{bfs, connected_components, dfs_preorder, scc, BfsResult};

/// Sentinel for "no predecessor / not in tree".
pub const NO_VERTEX: u32 = u32::MAX;
