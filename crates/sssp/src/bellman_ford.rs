//! Bellman-Ford — the first extension algorithm named in the paper's
//! conclusion: it "visits every neighbor of a node once the node is
//! labeled", so the adjacency-array layout matches its access pattern just
//! as it does Dijkstra's.

use cachegraph_graph::{Graph, VertexId, INF};

use crate::dijkstra::SsspResult;
use crate::NO_VERTEX;

/// Bellman-Ford single-source shortest paths with early termination when a
/// full pass performs no relaxation. Weights are unsigned, so negative
/// cycles cannot occur and the result always converges within `n - 1`
/// passes.
pub fn bellman_ford<G: Graph>(g: &G, source: VertexId) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut pred = vec![NO_VERTEX; n];
    dist[source as usize] = 0;
    for _pass in 0..n {
        let mut changed = false;
        for u in 0..n as VertexId {
            let du = dist[u as usize];
            if du == INF {
                continue;
            }
            for (v, w) in g.neighbors(u) {
                let nd = du.saturating_add(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    pred[v as usize] = u;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    SsspResult { dist, pred }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_binary_heap;
    use cachegraph_graph::{generators, EdgeListBuilder};

    #[test]
    fn agrees_with_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::random_directed(60, 0.15, 50, seed).build_array();
            let bf = bellman_ford(&g, 0);
            let dj = dijkstra_binary_heap(&g, 0);
            assert_eq!(bf.dist, dj.dist, "seed {seed}");
        }
    }

    #[test]
    fn chain_distances() {
        let mut b = EdgeListBuilder::new(4);
        b.add(0, 1, 2).add(1, 2, 2).add(2, 3, 2);
        let r = bellman_ford(&b.build_array(), 0);
        assert_eq!(r.dist, vec![0, 2, 4, 6]);
    }

    #[test]
    fn unreachable_is_inf() {
        let b = EdgeListBuilder::new(2);
        let r = bellman_ford(&b.build_array(), 0);
        assert_eq!(r.dist[1], INF);
    }
}
