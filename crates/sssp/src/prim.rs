//! Prim's algorithm for minimum spanning trees (§3.2).
//!
//! Identical access pattern to Dijkstra — `N` Extract-Mins, `E` Updates,
//! one streaming pass over the representation — differing only in the key
//! used by Update: the weight of the connecting edge rather than the
//! distance from the source. Hence the same representation optimization
//! applies, which is precisely the paper's point.

use cachegraph_graph::{Graph, VertexId, INF};
use cachegraph_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

use crate::NO_VERTEX;

/// A minimum spanning tree (of the root's component).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstResult {
    /// `parent[v]` = tree parent, [`NO_VERTEX`] for the root and for
    /// vertices outside the root's component.
    pub parent: Vec<VertexId>,
    /// Sum of tree edge weights.
    pub total_weight: u64,
    /// Number of vertices in the tree (root included).
    pub tree_size: usize,
}

/// Prim's algorithm from `root` over an undirected graph (both arcs of
/// every edge present, as [`EdgeListBuilder::add_undirected`]
/// (cachegraph_graph::EdgeListBuilder::add_undirected) produces).
pub fn prim<G: Graph, Q: DecreaseKeyQueue>(g: &G, root: VertexId) -> MstResult {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let mut parent = vec![NO_VERTEX; n];
    let mut q = Q::with_capacity(n);
    for v in 0..n as VertexId {
        q.insert(v, if v == root { 0 } else { INF });
    }
    let mut total = 0u64;
    let mut tree_size = 0usize;
    while let Some((u, key)) = q.extract_min() {
        if key == INF {
            break; // rest of the graph is disconnected from the root
        }
        total += key as u64;
        tree_size += 1;
        for (v, w) in g.neighbors(u) {
            if q.decrease_key(v, w) {
                parent[v as usize] = u;
            }
        }
    }
    MstResult { parent, total_weight: total, tree_size }
}

/// [`prim`] with the standard indexed binary heap.
pub fn prim_binary_heap<G: Graph>(g: &G, root: VertexId) -> MstResult {
    prim::<G, IndexedBinaryHeap>(g, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegraph_graph::EdgeListBuilder;
    use cachegraph_pq::{FibonacciHeap, PairingHeap};

    fn square_with_diagonal() -> EdgeListBuilder {
        // 4-cycle with weights 1,2,3,4 plus diagonal 0-2 weight 5.
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 1, 1)
            .add_undirected(1, 2, 2)
            .add_undirected(2, 3, 3)
            .add_undirected(3, 0, 4)
            .add_undirected(0, 2, 5);
        b
    }

    #[test]
    fn mst_weight_of_square() {
        let g = square_with_diagonal().build_array();
        let mst = prim_binary_heap(&g, 0);
        // MST: 1 + 2 + 3 = 6 (drop the 4-edge and the 5-diagonal).
        assert_eq!(mst.total_weight, 6);
        assert_eq!(mst.tree_size, 4);
    }

    #[test]
    fn root_choice_does_not_change_weight() {
        let g = square_with_diagonal().build_array();
        for root in 0..4 {
            assert_eq!(prim_binary_heap(&g, root).total_weight, 6);
        }
    }

    #[test]
    fn queues_agree() {
        let g = square_with_diagonal().build_array();
        let a = prim::<_, IndexedBinaryHeap>(&g, 0).total_weight;
        let b = prim::<_, FibonacciHeap>(&g, 0).total_weight;
        let c = prim::<_, PairingHeap>(&g, 0).total_weight;
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn representations_agree() {
        let b = square_with_diagonal();
        assert_eq!(
            prim_binary_heap(&b.build_array(), 0).total_weight,
            prim_binary_heap(&b.build_list(), 0).total_weight,
        );
        assert_eq!(
            prim_binary_heap(&b.build_array(), 0).total_weight,
            prim_binary_heap(&b.build_matrix(), 0).total_weight,
        );
    }

    #[test]
    fn disconnected_component_excluded() {
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 1, 7); // vertices 2, 3 isolated
        let mst = prim_binary_heap(&b.build_array(), 0);
        assert_eq!(mst.total_weight, 7);
        assert_eq!(mst.tree_size, 2);
        assert_eq!(mst.parent[2], NO_VERTEX);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn radix_heap_is_rejected_by_contract() {
        // Prim's keys are raw edge weights, which are NOT monotone in
        // extraction order; the radix heap's contract assert must fire
        // rather than silently compute a wrong tree.
        let mut b = EdgeListBuilder::new(4);
        // Extract 0 (key 0), then 1 via weight 5; relaxing 1-2 with
        // weight 2 dips below the floor of 5.
        b.add_undirected(0, 1, 5).add_undirected(1, 2, 2).add_undirected(2, 3, 9);
        let _ = prim::<_, cachegraph_pq::RadixHeap>(&b.build_array(), 0);
    }

    #[test]
    fn parent_edges_form_tree() {
        let g = square_with_diagonal().build_array();
        let mst = prim_binary_heap(&g, 0);
        // n-1 parent links for a connected graph.
        let links = mst.parent.iter().filter(|&&p| p != NO_VERTEX).count();
        assert_eq!(links, 3);
    }
}
