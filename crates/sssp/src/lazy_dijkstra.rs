//! Lazy-deletion Dijkstra — the modern alternative to Update.
//!
//! The paper (§2) observes that heap literature often omits the Update
//! operation. The standard way to avoid needing it at all is lazy
//! deletion: push a fresh `(dist, vertex)` pair on every relaxation and
//! discard stale pops. The queue grows to `O(E)` but every operation is a
//! plain insert/pop, which suits cache-optimized heaps like Sanders'
//! sequence heap. Included as an extension so the decrease-key designs
//! can be measured against it.

use cachegraph_graph::{Graph, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dijkstra::SsspResult;
use crate::NO_VERTEX;

/// Dijkstra with lazy deletion over `std::collections::BinaryHeap`.
/// Produces exactly the same distances as the decrease-key variants.
pub fn dijkstra_lazy<G: Graph>(g: &G, source: VertexId) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut pred = vec![NO_VERTEX; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u as usize] {
            continue; // stale entry
        }
        done[u as usize] = true;
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    SsspResult { dist, pred }
}

/// Lazy-deletion Dijkstra over the [`cachegraph_pq::SequenceHeap`] — the
/// §2 design point the paper describes: Sanders' cache-optimized heap
/// "does support Insert and Delete-min very efficiently; however the
/// Update operation is not supported", so it must be paired with lazy
/// deletion to run Dijkstra at all.
pub fn dijkstra_lazy_sequence<G: Graph>(g: &G, source: VertexId) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut pred = vec![NO_VERTEX; n];
    let mut done = vec![false; n];
    let mut heap = cachegraph_pq::SequenceHeap::new();
    dist[source as usize] = 0;
    heap.insert(source, 0);
    while let Some((u, d)) = heap.extract_min() {
        if done[u as usize] {
            continue;
        }
        done[u as usize] = true;
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = u;
                heap.insert(v, nd);
            }
        }
    }
    SsspResult { dist, pred }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_binary_heap;
    use cachegraph_graph::{generators, EdgeListBuilder};

    #[test]
    fn agrees_with_decrease_key_dijkstra() {
        for seed in 0..6 {
            let g = generators::random_directed(120, 0.08, 60, seed).build_array();
            let lazy = dijkstra_lazy(&g, 0);
            let eager = dijkstra_binary_heap(&g, 0);
            assert_eq!(lazy.dist, eager.dist, "seed {seed}");
            let seq = dijkstra_lazy_sequence(&g, 0);
            assert_eq!(seq.dist, eager.dist, "sequence heap, seed {seed}");
        }
    }

    #[test]
    fn trivial_cases() {
        let empty = EdgeListBuilder::new(3);
        let r = dijkstra_lazy(&empty.build_array(), 1);
        assert_eq!(r.dist, vec![INF, 0, INF]);

        let mut chain = EdgeListBuilder::new(3);
        chain.add(0, 1, 4).add(1, 2, 5);
        let r = dijkstra_lazy(&chain.build_array(), 0);
        assert_eq!(r.dist, vec![0, 4, 9]);
        assert_eq!(r.pred, vec![NO_VERTEX, 0, 1]);
    }

    #[test]
    fn stale_entries_are_skipped() {
        // Many parallel-ish relaxations of the same vertex.
        let mut b = EdgeListBuilder::new(4);
        b.add(0, 1, 10).add(0, 2, 1).add(2, 1, 1).add(1, 3, 1);
        let r = dijkstra_lazy(&b.build_array(), 0);
        assert_eq!(r.dist, vec![0, 2, 1, 3]);
        assert_eq!(r.pred[1], 2);
    }
}
