//! Cache-simulated Dijkstra and Prim (Tables 6 and 7).
//!
//! The paper's simulations count *all* data accesses of the program, so
//! the instrumented runs trace every load/store of:
//!
//! * the graph representation (CSR offsets + arcs, or list heads + arena
//!   nodes — the experimental variable);
//! * the distance/key and predecessor arrays;
//! * the binary heap (slot array and position map).
//!
//! Only loop counters and scalars live outside the simulated address
//! space, mirroring register-allocated locals.

use cachegraph_graph::{AdjacencyArray, AdjacencyList, VertexId, Weight, INF};
use cachegraph_obs::Registry;
use cachegraph_sim::{
    AddressSpace, CacheProfile, HierarchyConfig, HierarchyStats, MemoryHierarchy, ProfilerOptions,
    TracedBuffer,
};

use crate::NO_VERTEX;

/// Result of one simulated run.
#[derive(Clone, Debug)]
pub struct SsspSimResult {
    /// Cache/TLB counters.
    pub stats: HierarchyStats,
    /// Final key per vertex: shortest distance (Dijkstra) or connecting
    /// edge weight (Prim); `INF` when unreached.
    pub keys: Vec<Weight>,
    /// Sum of extracted finite keys (for Prim this is the MST weight).
    pub total: u64,
    /// Span-scoped cache attribution (`init` vs `main_loop`), present
    /// only on the `*_profiled` entry points.
    pub profile: Option<CacheProfile>,
}

/// Which algorithm the shared driver runs; they differ only in the key
/// a neighbour is updated with (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Update with `dist(u) + w(u, v)`.
    Dijkstra,
    /// Update with `w(u, v)`.
    Prim,
}

const ABSENT: u32 = u32::MAX;
const CONSUMED: u32 = u32::MAX - 1;

/// An indexed binary heap whose storage lives in the simulated address
/// space. Mirrors `cachegraph_pq::IndexedBinaryHeap` operation-for-
/// operation so the traced access pattern is the real heap's pattern.
struct TracedHeap {
    /// `(key, item)` pairs in heap order.
    slots: TracedBuffer<(Weight, VertexId)>,
    pos: TracedBuffer<u32>,
    len: usize,
}

impl TracedHeap {
    fn new(space: &mut AddressSpace, capacity: usize) -> Self {
        let slots = space.alloc_traced::<(Weight, VertexId)>(capacity);
        let mut pos = space.alloc_traced::<u32>(capacity);
        pos.as_mut_slice().fill(ABSENT);
        Self { slots, pos, len: 0 }
    }

    fn insert(&mut self, h: &mut MemoryHierarchy, item: VertexId, key: Weight) {
        debug_assert_eq!(self.pos.as_slice()[item as usize], ABSENT);
        let i = self.len;
        self.len += 1;
        self.slots.write(h, i, (key, item));
        self.pos.write(h, item as usize, i as u32);
        self.sift_up(h, i);
    }

    fn extract_min(&mut self, h: &mut MemoryHierarchy) -> Option<(VertexId, Weight)> {
        if self.len == 0 {
            return None;
        }
        let (key, item) = self.slots.read(h, 0);
        self.pos.write(h, item as usize, CONSUMED);
        self.len -= 1;
        if self.len > 0 {
            let last = self.slots.read(h, self.len);
            self.slots.write(h, 0, last);
            self.pos.write(h, last.1 as usize, 0);
            self.sift_down(h, 0);
        }
        Some((item, key))
    }

    fn decrease_key(&mut self, h: &mut MemoryHierarchy, item: VertexId, new_key: Weight) -> bool {
        let p = self.pos.read(h, item as usize);
        if p == ABSENT || p == CONSUMED {
            return false;
        }
        let i = p as usize;
        let (key, _) = self.slots.read(h, i);
        if key <= new_key {
            return false;
        }
        self.slots.write(h, i, (new_key, item));
        self.sift_up(h, i);
        true
    }

    fn sift_up(&mut self, h: &mut MemoryHierarchy, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.slots.read(h, parent);
            let iv = self.slots.read(h, i);
            if pv.0 <= iv.0 {
                break;
            }
            self.slots.write(h, i, pv);
            self.slots.write(h, parent, iv);
            self.pos.write(h, pv.1 as usize, i as u32);
            self.pos.write(h, iv.1 as usize, parent as u32);
            i = parent;
        }
    }

    fn sift_down(&mut self, h: &mut MemoryHierarchy, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            if l >= self.len {
                break;
            }
            let r = l + 1;
            let lv = self.slots.read(h, l);
            let child = if r < self.len {
                let rv = self.slots.read(h, r);
                if rv.0 < lv.0 { r } else { l }
            } else {
                l
            };
            let cv = self.slots.read(h, child);
            let iv = self.slots.read(h, i);
            if iv.0 <= cv.0 {
                break;
            }
            self.slots.write(h, i, cv);
            self.slots.write(h, child, iv);
            self.pos.write(h, cv.1 as usize, i as u32);
            self.pos.write(h, iv.1 as usize, child as u32);
            i = child;
        }
    }
}

/// Traced neighbour iteration, abstracting the two representations.
trait TracedGraph {
    fn num_vertices(&self) -> usize;
    /// Visit `(neighbour, weight)` pairs of `u`, tracing every access.
    fn for_neighbors(
        &self,
        h: &mut MemoryHierarchy,
        u: VertexId,
        f: &mut dyn FnMut(&mut MemoryHierarchy, VertexId, Weight),
    );
}

/// CSR in simulated memory: one offsets array, one packed arc array.
struct TracedArray {
    offsets: TracedBuffer<u32>,
    arcs: TracedBuffer<(u32, u32)>,
}

impl TracedArray {
    fn build(space: &mut AddressSpace, g: &AdjacencyArray) -> Self {
        let offsets = space.adopt(g.offsets().to_vec());
        let arcs = space.adopt(g.arcs().iter().map(|a| (a.to, a.weight)).collect());
        Self { offsets, arcs }
    }
}

impl TracedGraph for TracedArray {
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn for_neighbors(
        &self,
        h: &mut MemoryHierarchy,
        u: VertexId,
        f: &mut dyn FnMut(&mut MemoryHierarchy, VertexId, Weight),
    ) {
        let lo = self.offsets.read(h, u as usize) as usize;
        let hi = self.offsets.read(h, u as usize + 1) as usize;
        for i in lo..hi {
            let (to, w) = self.arcs.read(h, i);
            f(h, to, w);
        }
    }
}

/// Arena linked list in simulated memory: heads plus 12-byte nodes laid
/// out in *insertion* order — the pointer-chasing baseline.
struct TracedList {
    heads: TracedBuffer<u32>,
    /// `(to, weight, next)` — same footprint as `ListNode`.
    nodes: TracedBuffer<(u32, u32, u32)>,
}

impl TracedList {
    fn build(space: &mut AddressSpace, g: &AdjacencyList) -> Self {
        let heads = space.adopt(g.heads().to_vec());
        let nodes = space.adopt(g.nodes().iter().map(|n| (n.to, n.weight, n.next)).collect());
        Self { heads, nodes }
    }
}

impl TracedGraph for TracedList {
    fn num_vertices(&self) -> usize {
        self.heads.len()
    }

    fn for_neighbors(
        &self,
        h: &mut MemoryHierarchy,
        u: VertexId,
        f: &mut dyn FnMut(&mut MemoryHierarchy, VertexId, Weight),
    ) {
        let mut cur = self.heads.read(h, u as usize);
        while cur != cachegraph_graph::NIL {
            let (to, w, next) = self.nodes.read(h, cur as usize);
            f(h, to, w);
            cur = next;
        }
    }
}

/// Observability wiring for one simulated run: the registry spans and
/// counters report into, the root span/scope name, and — when the
/// attribution profiler should attach — its [`ProfilerOptions`]
/// (recording mode and timeline interval).
struct RunObs<'a> {
    registry: &'a Registry,
    span_name: &'a str,
    profiler: Option<ProfilerOptions>,
}

/// The shared Dijkstra/Prim driver over a traced graph. Reports into
/// `registry` under a root span named `span_name` (e.g. `dijkstra.array`)
/// with `init` / `main_loop` children and the `sssp.relaxations` /
/// `sssp.decrease_keys` / `sssp.extract_mins` counters; a disabled
/// registry reduces every instrumentation point to a branch.
fn sim_run<G: TracedGraph>(
    space: &mut AddressSpace,
    g: &G,
    source: VertexId,
    algo: Algo,
    config: HierarchyConfig,
    obs: RunObs<'_>,
) -> SsspSimResult {
    let RunObs { registry, span_name, profiler } = obs;
    let root = registry.span(span_name);
    let relaxations = registry.counter("sssp.relaxations");
    let decrease_keys = registry.counter("sssp.decrease_keys");
    let extract_mins = registry.counter("sssp.extract_mins");
    let n = g.num_vertices();
    let mut hier = MemoryHierarchy::new(config);
    // Attribution scopes mirror the span tree exactly (literal paths:
    // a disabled registry's spans carry empty paths).
    let scope = profiler.map(|opts| hier.attach_profiler_with(span_name, opts, registry));
    let _root_scope = scope.as_ref().map(|s| s.enter(span_name));
    let h = &mut hier;
    let mut keys = space.alloc_traced::<Weight>(n);
    keys.as_mut_slice().fill(INF);
    let mut pred = space.alloc_traced::<u32>(n);
    pred.as_mut_slice().fill(NO_VERTEX);
    let mut q = TracedHeap::new(space, n);
    {
        let _init = root.child("init");
        let _init_scope = scope.as_ref().map(|s| s.enter(&format!("{span_name}/init")));
        for v in 0..n as VertexId {
            q.insert(h, v, if v == source { 0 } else { INF });
        }
        keys.write(h, source as usize, 0);
    }
    let _main = root.child("main_loop");
    let _main_scope = scope.as_ref().map(|s| s.enter(&format!("{span_name}/main_loop")));
    let mut total = 0u64;
    while let Some((u, ku)) = q.extract_min(h) {
        extract_mins.incr();
        if ku == INF {
            break;
        }
        total += ku as u64;
        keys.write(h, u as usize, ku);
        g.for_neighbors(h, u, &mut |h, v, w| {
            relaxations.incr();
            let nk = match algo {
                Algo::Dijkstra => ku.saturating_add(w),
                Algo::Prim => w,
            };
            if q.decrease_key(h, v, nk) {
                decrease_keys.incr();
                pred.write(h, v as usize, u);
                keys.write(h, v as usize, nk);
            }
        });
    }
    drop(_main_scope);
    let stats = hier.stats();
    let profile = hier.take_profile();
    SsspSimResult { stats, keys: keys.into_inner(), total, profile }
}

/// Simulated Dijkstra over the adjacency array (CSR).
pub fn sim_dijkstra_adj_array(
    g: &AdjacencyArray,
    source: VertexId,
    config: HierarchyConfig,
) -> SsspSimResult {
    sim_dijkstra_adj_array_observed(g, source, config, &Registry::disabled())
}

/// [`sim_dijkstra_adj_array`] reporting spans and counters into `registry`.
pub fn sim_dijkstra_adj_array_observed(
    g: &AdjacencyArray,
    source: VertexId,
    config: HierarchyConfig,
    registry: &Registry,
) -> SsspSimResult {
    let mut space = AddressSpace::new();
    let tg = TracedArray::build(&mut space, g);
    sim_run(&mut space, &tg, source, Algo::Dijkstra, config, RunObs { registry, span_name: "dijkstra.array", profiler: None })
}

/// [`sim_dijkstra_adj_array_observed`] with span-scoped cache
/// attribution under the given [`ProfilerOptions`] (recording mode and
/// miss-rate timeline interval); the result's `profile` splits the
/// counters between the heap-building `init` scope and the `main_loop`
/// relaxation scope.
pub fn sim_dijkstra_adj_array_profiled(
    g: &AdjacencyArray,
    source: VertexId,
    config: HierarchyConfig,
    options: ProfilerOptions,
    registry: &Registry,
) -> SsspSimResult {
    let mut space = AddressSpace::new();
    let tg = TracedArray::build(&mut space, g);
    sim_run(&mut space, &tg, source, Algo::Dijkstra, config, RunObs { registry, span_name: "dijkstra.array", profiler: Some(options) })
}

/// Simulated Dijkstra over the arena adjacency list.
pub fn sim_dijkstra_adj_list(
    g: &AdjacencyList,
    source: VertexId,
    config: HierarchyConfig,
) -> SsspSimResult {
    sim_dijkstra_adj_list_observed(g, source, config, &Registry::disabled())
}

/// [`sim_dijkstra_adj_list`] reporting spans and counters into `registry`.
pub fn sim_dijkstra_adj_list_observed(
    g: &AdjacencyList,
    source: VertexId,
    config: HierarchyConfig,
    registry: &Registry,
) -> SsspSimResult {
    let mut space = AddressSpace::new();
    let tg = TracedList::build(&mut space, g);
    sim_run(&mut space, &tg, source, Algo::Dijkstra, config, RunObs { registry, span_name: "dijkstra.list", profiler: None })
}

/// [`sim_dijkstra_adj_list_observed`] with span-scoped cache attribution
/// and a miss-rate timeline (see [`sim_dijkstra_adj_array_profiled`]).
pub fn sim_dijkstra_adj_list_profiled(
    g: &AdjacencyList,
    source: VertexId,
    config: HierarchyConfig,
    options: ProfilerOptions,
    registry: &Registry,
) -> SsspSimResult {
    let mut space = AddressSpace::new();
    let tg = TracedList::build(&mut space, g);
    sim_run(&mut space, &tg, source, Algo::Dijkstra, config, RunObs { registry, span_name: "dijkstra.list", profiler: Some(options) })
}

/// Simulated Prim over the adjacency array (CSR).
pub fn sim_prim_adj_array(
    g: &AdjacencyArray,
    root: VertexId,
    config: HierarchyConfig,
) -> SsspSimResult {
    sim_prim_adj_array_observed(g, root, config, &Registry::disabled())
}

/// [`sim_prim_adj_array`] reporting spans and counters into `registry`.
pub fn sim_prim_adj_array_observed(
    g: &AdjacencyArray,
    root: VertexId,
    config: HierarchyConfig,
    registry: &Registry,
) -> SsspSimResult {
    let mut space = AddressSpace::new();
    let tg = TracedArray::build(&mut space, g);
    sim_run(&mut space, &tg, root, Algo::Prim, config, RunObs { registry, span_name: "prim.array", profiler: None })
}

/// Simulated Prim over the arena adjacency list.
pub fn sim_prim_adj_list(
    g: &AdjacencyList,
    root: VertexId,
    config: HierarchyConfig,
) -> SsspSimResult {
    sim_prim_adj_list_observed(g, root, config, &Registry::disabled())
}

/// [`sim_prim_adj_list`] reporting spans and counters into `registry`.
pub fn sim_prim_adj_list_observed(
    g: &AdjacencyList,
    root: VertexId,
    config: HierarchyConfig,
    registry: &Registry,
) -> SsspSimResult {
    let mut space = AddressSpace::new();
    let tg = TracedList::build(&mut space, g);
    sim_run(&mut space, &tg, root, Algo::Prim, config, RunObs { registry, span_name: "prim.list", profiler: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra_binary_heap, prim_binary_heap};
    use cachegraph_graph::generators;
    use cachegraph_sim::profiles;

    #[test]
    fn simulated_dijkstra_computes_real_distances() {
        let b = generators::random_directed(80, 0.15, 50, 11);
        let arr = b.build_array();
        let expect = dijkstra_binary_heap(&arr, 0).dist;
        let sim_a = sim_dijkstra_adj_array(&arr, 0, profiles::simplescalar());
        let sim_l = sim_dijkstra_adj_list(&b.build_list(), 0, profiles::simplescalar());
        assert_eq!(sim_a.keys, expect);
        assert_eq!(sim_l.keys, expect);
    }

    #[test]
    fn simulated_prim_matches_real_mst_weight() {
        let mut b = generators::random_undirected(60, 0.2, 30, 5);
        generators::connect(&mut b, 30, 5);
        let arr = b.build_array();
        let expect = prim_binary_heap(&arr, 0).total_weight;
        let sim_a = sim_prim_adj_array(&arr, 0, profiles::simplescalar());
        let sim_l = sim_prim_adj_list(&b.build_list(), 0, profiles::simplescalar());
        assert_eq!(sim_a.total, expect);
        assert_eq!(sim_l.total, expect);
    }

    #[test]
    fn observed_run_counts_relaxations_and_spans() {
        let b = generators::random_directed(120, 0.1, 50, 7);
        let arr = b.build_array();
        let reg = cachegraph_obs::Registry::new();
        let observed = sim_dijkstra_adj_array_observed(&arr, 0, profiles::simplescalar(), &reg);
        let plain = sim_dijkstra_adj_array(&arr, 0, profiles::simplescalar());
        assert_eq!(observed.keys, plain.keys, "instrumentation must not change results");

        let snap = reg.snapshot();
        let relaxations = *snap.counters.get("sssp.relaxations").expect("relaxations");
        let decreases = *snap.counters.get("sssp.decrease_keys").expect("decrease_keys");
        let extracts = *snap.counters.get("sssp.extract_mins").expect("extract_mins");
        assert!(relaxations > 0);
        assert!(decreases <= relaxations, "{decreases} decrease-keys of {relaxations} relaxations");
        assert!(extracts as usize <= b.num_vertices());
        // Spans: init and main_loop children finish before the root.
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["dijkstra.array/init", "dijkstra.array/main_loop", "dijkstra.array"]);
        // The main loop owns all the relaxation work.
        assert_eq!(snap.spans[1].counters.get("sssp.relaxations"), Some(&relaxations));
    }

    #[test]
    fn profiled_run_attributes_init_and_main_loop_exactly() {
        let b = generators::random_directed(200, 0.08, 50, 21);
        let arr = b.build_array();
        let reg = cachegraph_obs::Registry::disabled();
        let prof = sim_dijkstra_adj_array_profiled(
            &arr,
            0,
            profiles::simplescalar(),
            ProfilerOptions { sample_period_log2: 0, timeline_interval: 1024 },
            &reg,
        );
        let plain = sim_dijkstra_adj_array(&arr, 0, profiles::simplescalar());
        assert_eq!(prof.keys, plain.keys, "attribution must not change results");
        assert_eq!(prof.stats, plain.stats, "attribution must not perturb the simulation");
        assert!(plain.profile.is_none(), "unprofiled runs carry no profile");

        let profile = prof.profile.expect("profiled run has a profile");
        assert_eq!(profile.sum_self(), prof.stats);
        let paths: Vec<&str> = profile.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            ["dijkstra.array", "dijkstra.array/init", "dijkstra.array/main_loop"]
        );
        // Heap setup is a tiny fraction of the relaxation work.
        let init = profile.find("dijkstra.array/init").expect("init scope");
        let main = profile.find("dijkstra.array/main_loop").expect("main scope");
        assert!(init.self_stats.levels[0].accesses < main.self_stats.levels[0].accesses);
        // The root's subtree total covers the whole run.
        let root = profile.find("dijkstra.array").expect("root scope");
        assert_eq!(root.total_stats, prof.stats);
    }

    #[test]
    fn adjacency_array_misses_less_than_list() {
        // The headline effect of §3.2: same graph, same algorithm, same
        // heap — only the representation changes.
        let b = generators::random_directed(2000, 0.05, 50, 42);
        let arr_r = sim_dijkstra_adj_array(&b.build_array(), 0, profiles::simplescalar());
        let list_r = sim_dijkstra_adj_list(&b.build_list(), 0, profiles::simplescalar());
        assert_eq!(arr_r.keys, list_r.keys, "must compute identical results");
        let arr_misses = arr_r.stats.levels[1].misses;
        let list_misses = list_r.stats.levels[1].misses;
        assert!(
            arr_misses < list_misses,
            "adjacency array should miss less in L2: {arr_misses} vs {list_misses}"
        );
    }
}
