//! Dijkstra's algorithm (Fig. 7), generic over representation and queue.

use cachegraph_graph::{Graph, VertexId, Weight, INF};
use cachegraph_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

use crate::NO_VERTEX;

/// Distances and shortest-path tree from one source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsspResult {
    /// `dist[v]` = weight of the shortest path from the source, `INF` if
    /// unreachable.
    pub dist: Vec<Weight>,
    /// `pred[v]` = predecessor on that path, [`NO_VERTEX`] for the source
    /// and unreachable vertices.
    pub pred: Vec<VertexId>,
}

/// Dijkstra exactly as in the paper's Fig. 7: every vertex starts in the
/// queue (`Q = V[G]`), then `N` Extract-Mins and up to `E` Updates
/// (decrease-keys) are performed. The graph representation is streamed
/// once — each adjacency is touched exactly one time.
pub fn dijkstra<G: Graph, Q: DecreaseKeyQueue>(g: &G, source: VertexId) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    let mut pred = vec![NO_VERTEX; n];
    let mut q = Q::with_capacity(n);
    for v in 0..n as VertexId {
        q.insert(v, if v == source { 0 } else { INF });
    }
    dist[source as usize] = 0;
    while let Some((u, du)) = q.extract_min() {
        if du == INF {
            // Remaining vertices are unreachable.
            break;
        }
        dist[u as usize] = du;
        for (v, w) in g.neighbors(u) {
            let nd = du.saturating_add(w);
            if q.decrease_key(v, nd) {
                pred[v as usize] = u;
            }
        }
    }
    SsspResult { dist, pred }
}

/// [`dijkstra`] with the standard indexed binary heap.
pub fn dijkstra_binary_heap<G: Graph>(g: &G, source: VertexId) -> SsspResult {
    dijkstra::<G, IndexedBinaryHeap>(g, source)
}

/// All-pairs shortest paths by running Dijkstra from every source —
/// the contender against Floyd-Warshall for sparse graphs in Fig. 14.
/// Returns the row-major `n x n` distance matrix.
pub fn apsp_dijkstra<G: Graph>(g: &G) -> Vec<Weight> {
    let n = g.num_vertices();
    let mut out = Vec::with_capacity(n * n);
    for s in 0..n as VertexId {
        out.extend_from_slice(&dijkstra_binary_heap(g, s).dist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegraph_graph::EdgeListBuilder;
    use cachegraph_pq::{DAryHeap, FibonacciHeap, PairingHeap};

    fn diamond() -> EdgeListBuilder {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 2 -> 3 (1), 1 -> 3 (5).
        let mut b = EdgeListBuilder::new(4);
        b.add(0, 1, 1).add(0, 2, 4).add(1, 2, 2).add(2, 3, 1).add(1, 3, 5);
        b
    }

    #[test]
    fn shortest_paths_on_diamond() {
        let g = diamond().build_array();
        let r = dijkstra_binary_heap(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 3, 4]);
        assert_eq!(r.pred[3], 2);
        assert_eq!(r.pred[2], 1);
        assert_eq!(r.pred[0], NO_VERTEX);
    }

    #[test]
    fn all_queues_agree() {
        let g = diamond().build_array();
        let a = dijkstra::<_, IndexedBinaryHeap>(&g, 0);
        let b = dijkstra::<_, DAryHeap<4>>(&g, 0);
        let c = dijkstra::<_, FibonacciHeap>(&g, 0);
        let d = dijkstra::<_, PairingHeap>(&g, 0);
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.dist, c.dist);
        assert_eq!(a.dist, d.dist);
    }

    #[test]
    fn all_representations_agree() {
        let b = diamond();
        let arr = dijkstra_binary_heap(&b.build_array(), 0);
        let list = dijkstra_binary_heap(&b.build_list(), 0);
        let mat = dijkstra_binary_heap(&b.build_matrix(), 0);
        assert_eq!(arr.dist, list.dist);
        assert_eq!(arr.dist, mat.dist);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let mut b = EdgeListBuilder::new(3);
        b.add(0, 1, 1);
        let r = dijkstra_binary_heap(&b.build_array(), 0);
        assert_eq!(r.dist, vec![0, 1, INF]);
        assert_eq!(r.pred[2], NO_VERTEX);
    }

    #[test]
    fn apsp_matrix_diagonal_is_zero() {
        let g = diamond().build_array();
        let d = apsp_dijkstra(&g);
        for v in 0..4 {
            assert_eq!(d[v * 4 + v], 0);
        }
        assert_eq!(d[3], 4); // 0 -> 3
    }

    #[test]
    fn source_only_graph() {
        let b = EdgeListBuilder::new(1);
        let r = dijkstra_binary_heap(&b.build_array(), 0);
        assert_eq!(r.dist, vec![0]);
    }
}
