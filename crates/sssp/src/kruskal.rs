//! Kruskal's algorithm — an independent MST oracle for testing Prim.

use cachegraph_graph::{Edge, VertexId};

/// Path-compressing, union-by-rank disjoint-set forest.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// MST weight (over all components: a minimum spanning forest) from an
/// undirected edge list (each edge may appear once or as both arcs —
/// duplicates are harmless for Kruskal).
pub fn kruskal(n: usize, edges: &[Edge]) -> (u64, Vec<(VertexId, VertexId)>) {
    let mut sorted: Vec<&Edge> = edges.iter().collect();
    sorted.sort_by_key(|e| e.weight);
    let mut uf = UnionFind::new(n);
    let mut total = 0u64;
    let mut tree = Vec::new();
    for e in sorted {
        if uf.union(e.from, e.to) {
            total += e.weight as u64;
            tree.push((e.from, e.to));
        }
    }
    (total, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegraph_graph::EdgeListBuilder;

    #[test]
    fn simple_mst() {
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 1, 1)
            .add_undirected(1, 2, 2)
            .add_undirected(2, 3, 3)
            .add_undirected(3, 0, 4);
        let (w, tree) = kruskal(4, b.edges());
        assert_eq!(w, 6);
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let mut b = EdgeListBuilder::new(4);
        b.add_undirected(0, 1, 5).add_undirected(2, 3, 7);
        let (w, tree) = kruskal(4, b.edges());
        assert_eq!(w, 12);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn union_find_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.find(2), uf.find(0));
        assert_ne!(uf.find(3), uf.find(0));
    }
}
