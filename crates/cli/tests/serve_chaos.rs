//! Chaos end-to-end through the real `cachegraph` binary: a serve
//! daemon under injected panic/hang/kill faults and a 4x closed-loop
//! overload burst must never crash, must shed `BUSY` past the high
//! watermark, must answer correctly (cross-checked against direct
//! solver calls) once faults clear, and must drain within the drain
//! deadline on shutdown — leaving valid schema-v5 reports on both
//! sides of the wire, with the flight recorder's post-mortem traces
//! (including the panicked request's partial trace) in the server's
//! final report.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use cachegraph_graph::generators;
use cachegraph_obs::{Json, Report, TraceRecord};
use cachegraph_serve::{request_once, Op, Request, Response};
use cachegraph_sssp::dijkstra_binary_heap;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cachegraph")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cachegraph-cli-serve-chaos-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn cachegraph")
}

/// Spawn `cachegraph serve` and wait for its port file.
fn spawn_server(port_file: &PathBuf, metrics: &PathBuf, extra: &[&str]) -> (Child, u16) {
    std::fs::remove_file(port_file).ok();
    std::fs::remove_file(metrics).ok();
    let mut args = vec![
        "serve".to_string(),
        "--gen-n".to_string(),
        "48".to_string(),
        "--density".to_string(),
        "0.1".to_string(),
        "--seed".to_string(),
        "5".to_string(),
        "--port-file".to_string(),
        port_file.display().to_string(),
        "--metrics".to_string(),
        metrics.display().to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(bin())
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    let port = loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(p) = text.trim().parse::<u16>() {
                break p;
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote its port file");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, port)
}

/// Send `shutdown` and assert the server process drains and exits 0
/// within the drain deadline (plus slack).
fn shutdown_and_reap(mut child: Child, port: u16) {
    let resp = request_once(port, &Request::plain(Op::Shutdown), 5_000).expect("shutdown answered");
    assert_eq!(resp.status(), "OK");
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert!(status.success(), "serve must exit 0 after graceful drain, got {status:?}");
            return;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            unreachable!("serve did not drain within the deadline");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn chaos_burst_sheds_recovers_and_drains() {
    let port_file = tmp("chaos.port");
    let metrics = tmp("chaos-final.json");
    let loadgen_report = tmp("chaos-loadgen.json");
    std::fs::remove_file(&loadgen_report).ok();
    // 2 workers, queue of 3, all three fault kinds armed: an 8-client
    // closed-loop burst is a 4x overload.
    let (child, port) = spawn_server(
        &port_file,
        &metrics,
        &[
            "--workers",
            "2",
            "--queue-high",
            "3",
            "--queue-low",
            "1",
            "--hang-ms",
            "200",
            "--fault-plan",
            "panic:path,hang:reach,kill:match",
        ],
    );

    // The overload burst, retrying through every injected fault.
    let lg = run(&[
        "loadgen",
        "--port-file",
        port_file.to_str().expect("path"),
        "--clients",
        "8",
        "--requests",
        "25",
        "--seed",
        "42",
        "--max-retries",
        "40",
        "--backoff-ms",
        "1",
        "--metrics",
        loadgen_report.to_str().expect("path"),
    ]);
    let lg_out = String::from_utf8_lossy(&lg.stdout).into_owned();
    assert_eq!(
        lg.status.code(),
        Some(0),
        "retry-with-backoff must converge under chaos\nstdout: {lg_out}\nstderr: {}",
        String::from_utf8_lossy(&lg.stderr)
    );

    // The loadgen report is a valid current-schema document with nonzero shed and
    // retry counters (the burst was real) and latency percentiles.
    let report = Report::load(&loadgen_report).expect("loadgen report parses");
    let exp = report
        .experiments
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("serve.loadgen"))
        .expect("serve.loadgen experiment present");
    let field = |k: &str| exp.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(field("ok"), 200, "every request resolved: {exp:?}");
    assert!(field("shed") > 0, "4x overload must shed: {exp:?}");
    assert!(field("retries") > 0, "sheds force retries: {exp:?}");
    assert!(field("p99_ns") >= field("p50_ns"), "{exp:?}");

    // After the burst the faults have fired and cleared: answers are
    // correct, cross-checked against a direct Dijkstra on the same
    // generated graph (n 48, density 0.1, seed 5).
    let g = generators::random_directed(48, 0.1, 100, 5).build_array();
    let truth = dijkstra_binary_heap(&g, 7);
    for dst in [0u32, 13, 29, 47] {
        let resp = request_once(port, &Request::path(7, dst), 5_000).expect("post-chaos answer");
        let Response::Ok(data) = resp else { unreachable!("expected OK, got {resp:?}") };
        let got = data.get("dist").and_then(Json::as_u64);
        let want = truth.dist[dst as usize];
        if want == cachegraph_graph::INF {
            assert_eq!(got, None, "7 -> {dst}");
        } else {
            assert_eq!(got, Some(u64::from(want)), "7 -> {dst}");
        }
    }

    // The server-side report confirms each fault actually fired.
    shutdown_and_reap(child, port);
    let final_report = Report::load(&metrics).expect("final serve report parses as v5");
    let counters = final_report
        .metrics
        .as_ref()
        .and_then(|m| m.get("counters"))
        .cloned()
        .expect("counters section");
    let counter = |k: &str| counters.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert!(counter("serve.ok") >= 200, "ok = {}", counter("serve.ok"));
    assert!(counter("serve.shed") > 0, "server-side shed counter must tick");
    assert_eq!(counter("serve.panics"), 1, "panic fault fires exactly once");
    assert_eq!(counter("serve.torn_writes"), 1, "kill fault fires exactly once");

    // The flight recorder survived the panic: the poisoned request's
    // partial trace is in the final report with outcome INTERNAL, a
    // measured queue wait, and the segment-sum invariant intact.
    let traces: Vec<TraceRecord> = final_report
        .traces
        .iter()
        .map(|j| TraceRecord::from_json(j).expect("post-mortem trace parses"))
        .collect();
    assert!(!traces.is_empty(), "the final report carries the flight recorder");
    let panicked = traces
        .iter()
        .find(|t| t.outcome == "INTERNAL" && t.tag("panic") == Some(&Json::Bool(true)))
        .expect("the panicked request leaves a partial trace in the error ring");
    assert_eq!(panicked.op, "path", "panic:path poisons the first path query");
    assert!(panicked.segment_ns("queue") > 0, "queue wait is measured: {panicked:?}");
    let sum: u64 = panicked.segments.iter().map(|&(_, d)| d).sum();
    assert_eq!(sum, panicked.wall_ns, "partial traces still partition their wall time");

    // `cachegraph trace` renders that same report: a block-character
    // waterfall per trace plus the per-segment percentile table.
    let tr = run(&["trace", metrics.to_str().expect("path")]);
    assert_eq!(
        tr.status.code(),
        Some(0),
        "trace subcommand renders the chaos report\nstderr: {}",
        String::from_utf8_lossy(&tr.stderr)
    );
    let rendered = String::from_utf8_lossy(&tr.stdout).into_owned();
    assert!(rendered.contains("waterfall"), "{rendered}");
    assert!(rendered.contains("INTERNAL"), "the panicked trace is listed: {rendered}");
    assert!(
        rendered.chars().any(|c| ('\u{2581}'..='\u{2588}').contains(&c)),
        "waterfall uses block characters: {rendered}"
    );
    assert!(rendered.contains("segment percentiles over"), "{rendered}");
}

#[test]
fn query_subcommand_honours_the_exit_code_contract() {
    let port_file = tmp("query.port");
    let metrics = tmp("query-final.json");
    let (child, port) = spawn_server(&port_file, &metrics, &[]);

    // OK answer: exit 0, JSON on stdout.
    let ok = run(&["query", "--port-file", port_file.to_str().expect("path"), "--op", "path", "--src", "0", "--dst", "5"]);
    assert_eq!(ok.status.code(), Some(0), "{}", String::from_utf8_lossy(&ok.stderr));
    let line = String::from_utf8_lossy(&ok.stdout);
    assert!(line.contains("\"status\":\"OK\""), "{line}");

    // Health probe exits 0 too.
    let health = run(&["query", "--port", &port.to_string(), "--op", "health"]);
    assert_eq!(health.status.code(), Some(0));

    // A non-OK response (out-of-range vertex -> BAD_REQUEST) exits 1.
    let bad = run(&["query", "--port", &port.to_string(), "--op", "path", "--src", "0", "--dst", "9999"]);
    assert_eq!(bad.status.code(), Some(1), "non-OK response is a runtime failure");

    // Usage errors exit 2 (unknown op needs no server round-trip).
    let usage = run(&["query", "--port", &port.to_string(), "--op", "frobnicate"]);
    assert_eq!(usage.status.code(), Some(1), "bad op value is a runtime Invalid");
    let missing = run(&["query", "--op", "health"]);
    assert_eq!(missing.status.code(), Some(1), "missing port is Invalid");
    let unparsed = run(&["query", "--port"]);
    assert_eq!(unparsed.status.code(), Some(2), "dangling flag is a usage error");

    shutdown_and_reap(child, port);
}

#[test]
fn help_documents_the_serve_commands_and_exit_codes() {
    let help = run(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    let text = String::from_utf8_lossy(&help.stdout);
    for needle in ["serve", "query", "loadgen", "--fault-plan", "exit codes:", "--port-file"] {
        assert!(text.contains(needle), "--help must mention {needle}");
    }
}
