//! End-to-end fault injection through the real `cachegraph` binary:
//! kill a supervised repro mid-journal-write, resume it, and check the
//! documented exit-code contract (0 success, 1 runtime failure, 2 usage
//! error) on every degradation path.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use cachegraph_obs::journal::read_journal;
use cachegraph_obs::{Json, Report};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cachegraph")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cachegraph-cli-supervised-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn cachegraph")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Outcome string of experiment `id` in a saved report, plus its
/// `restored` flag.
fn outcome_of(report: &Report, id: &str) -> (String, bool) {
    let section = report
        .experiments
        .iter()
        .find(|e| e.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("experiment '{id}' missing from report"));
    (
        section.get("outcome").and_then(Json::as_str).expect("outcome").to_string(),
        matches!(section.get("restored"), Some(Json::Bool(true))),
    )
}

#[test]
fn kill_then_resume_completes_the_run() {
    let journal = tmp("kill-resume.jsonl");
    let metrics = tmp("kill-resume.json");
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&metrics).ok();

    // Phase 1: the fault plan tears the journal mid-write at 'matching'
    // and kills the process.
    let killed = run(&[
        "repro",
        "--quick",
        "--journal",
        journal.to_str().expect("path"),
        "--fault-plan",
        "kill:matching",
    ]);
    assert_eq!(killed.status.code(), Some(124), "kill fault must die with 124");
    let contents = read_journal(&journal).expect("journal readable after kill");
    assert!(contents.torn_tail.is_some(), "kill must leave a torn final line");
    let completed: Vec<&str> = contents
        .records
        .iter()
        .filter(|r| r.get("outcome").and_then(Json::as_str) == Some("completed"))
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    assert_eq!(completed, ["fw", "dijkstra"], "two checkpoints before the kill");

    // Phase 2: resume replays the journal, re-runs 'matching' and the
    // two parallel units that never started, and the merged report
    // holds every experiment exactly once.
    let resumed = run(&[
        "repro",
        "--quick",
        "--resume",
        journal.to_str().expect("path"),
        "--metrics",
        metrics.to_str().expect("path"),
    ]);
    assert_eq!(resumed.status.code(), Some(0), "stderr: {}", stderr(&resumed));
    let text = stdout(&resumed);
    assert!(text.contains("torn"), "resume must report the torn record: {text}");
    let progress_restored = text
        .lines()
        .filter(|l| l.starts_with("## [") && l.contains("restored from journal"))
        .count();
    assert_eq!(progress_restored, 2, "fw and dijkstra restore, the rest re-runs: {text}");

    let report = Report::load(&metrics).expect("merged report parses");
    assert_eq!(report.experiments.len(), 5);
    for (id, want_restored) in [
        ("fw", true),
        ("dijkstra", true),
        ("matching", false),
        ("parallel-dijkstra", false),
        ("parallel-matching", false),
    ] {
        let (outcome, restored) = outcome_of(&report, id);
        assert_eq!(outcome, "completed", "experiment {id}");
        assert_eq!(restored, want_restored, "experiment {id}");
    }
    // Restored fragments still carry their cache sims into the report.
    let labels: Vec<&str> = report
        .cache_sims
        .iter()
        .filter_map(|s| s.get("label").and_then(Json::as_str))
        .collect();
    for want in ["fw.iterative", "dijkstra.array", "matching.baseline"] {
        assert!(labels.contains(&want), "missing {want}: {labels:?}");
    }
}

#[test]
fn panic_and_timeout_degrade_to_recorded_outcomes() {
    let metrics = tmp("degrade.json");
    std::fs::remove_file(&metrics).ok();
    let output = run(&[
        "repro",
        "--quick",
        "--timeout-secs",
        "1",
        "--fault-plan",
        "panic:fw,hang:dijkstra",
        "--metrics",
        metrics.to_str().expect("path"),
    ]);
    // One experiment (matching) completes, so the run still succeeds.
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr(&output));
    let report = Report::load(&metrics).expect("report parses");
    assert_eq!(outcome_of(&report, "fw").0, "failed");
    assert_eq!(outcome_of(&report, "dijkstra").0, "timed_out");
    assert_eq!(outcome_of(&report, "matching").0, "completed");
    let text = stdout(&output);
    assert!(text.contains("failed: panicked"), "{text}");
    assert!(text.contains("timed out after 1 s"), "{text}");
}

#[test]
fn strict_mode_turns_any_failure_into_exit_1() {
    let output = run(&["repro", "--quick", "--strict", "--fault-plan", "panic:matching"]);
    assert_eq!(output.status.code(), Some(1));
    let err = stderr(&output);
    assert!(err.contains("error:") && err.contains("strict"), "{err}");
}

#[test]
fn corrupt_report_yields_one_line_error_and_exit_1() {
    let bad = tmp("corrupt-report.json");
    std::fs::write(&bad, b"{\"schema_version\": 2, \"name\": \"x\", truncated...").expect("write");
    let path = bad.to_str().expect("path");
    let output = run(&["compare", path, path]);
    assert_eq!(output.status.code(), Some(1));
    let err = stderr(&output);
    assert_eq!(err.lines().count(), 1, "one-line diagnostic, got: {err}");
    assert!(err.starts_with("error:"), "{err}");
}

#[test]
fn usage_errors_exit_2() {
    // Unknown subcommand.
    let output = run(&["frobnicate"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("error:"));
    // Missing required flag.
    let output = run(&["sssp"]);
    assert_eq!(output.status.code(), Some(2));
    // Flag without its value.
    let output = run(&["repro", "--journal"]);
    assert_eq!(output.status.code(), Some(2));
    // Help documents the contract.
    let output = run(&["--help"]);
    assert_eq!(output.status.code(), Some(0));
    assert!(stdout(&output).contains("exit codes:"), "--help must document exit codes");
}

#[test]
fn resume_survives_a_corrupted_journal() {
    // A journal corrupted beyond the torn-tail case must degrade to a
    // full re-run, not a crash.
    let journal = tmp("corrupt-journal.jsonl");
    std::fs::write(&journal, b"{\"type\":\"run\"}\ngarbage line\n{\"also\": \"fine\"}\n")
        .expect("write");
    let metrics = tmp("corrupt-journal.json");
    std::fs::remove_file(&metrics).ok();
    let output = run(&[
        "repro",
        "--quick",
        "--resume",
        journal.to_str().expect("path"),
        "--metrics",
        metrics.to_str().expect("path"),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("re-running everything"), "{}", stdout(&output));
    let report = Report::load(Path::new(&metrics)).expect("report parses");
    assert_eq!(report.experiments.len(), 5);
    for id in ["fw", "dijkstra", "matching", "parallel-dijkstra", "parallel-matching"] {
        let (outcome, restored) = outcome_of(&report, id);
        assert_eq!(outcome, "completed", "experiment {id}");
        assert!(!restored, "experiment {id} must have re-run");
    }
}
