//! The subcommand implementations. Each takes parsed [`Args`] and writes
//! its report to the given writer, so tests can drive them directly.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::time::Instant;

use cachegraph_fw::{fw_iterative_slice, fw_recursive, fw_tiled, transitive_closure_of, FwMatrix, INF};
use cachegraph_graph::io::{read_dimacs, write_dimacs, DimacsError};
use cachegraph_graph::{generators, EdgeListBuilder, Graph};
use cachegraph_layout::{select_block_size, BlockLayout, ZMorton};
use cachegraph_matching::{find_matching, find_matching_partitioned, Matching, PartitionScheme};
use cachegraph_pq::DAryHeap;
use cachegraph_sim::profiles;
use cachegraph_sssp::instrumented::{sim_dijkstra_adj_array, sim_dijkstra_adj_list};
use cachegraph_sssp::{
    dijkstra, dijkstra_binary_heap, dijkstra_dense, dijkstra_lazy, dijkstra_lazy_sequence,
    kruskal, prim_binary_heap,
};

use crate::args::{Args, ArgsError};

/// Errors surfaced to the binary's exit path.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgsError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Bad flag value for which parsing succeeded but the domain is wrong.
    Invalid(String),
    /// File / format problems.
    Dimacs(DimacsError),
    /// I/O problems.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            CliError::Invalid(m) => write!(f, "{m}"),
            CliError::Dimacs(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::Args(e)
    }
}

impl From<DimacsError> for CliError {
    fn from(e: DimacsError) -> Self {
        CliError::Dimacs(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Dispatch a subcommand; the report goes to `out`.
pub fn run(command: &str, args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    match command {
        "gen" => cmd_gen(args, out),
        "sssp" => cmd_sssp(args, out),
        "apsp" => cmd_apsp(args, out),
        "mst" => cmd_mst(args, out),
        "match" => cmd_match(args, out),
        "closure" => cmd_closure(args, out),
        "simulate" => cmd_simulate(args, out),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn load(args: &Args) -> Result<EdgeListBuilder, CliError> {
    let path = args.require("input")?;
    let file = File::open(path)?;
    Ok(read_dimacs(BufReader::new(file))?)
}

fn cmd_gen(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let kind = args.get_or("kind", "random");
    let seed: u64 = args.parse_or("seed", 42, "integer")?;
    let density: f64 = args.parse_or("density", 0.1, "number")?;
    let max_w: u32 = args.parse_or("max-weight", 100, "integer")?;
    let b = match kind {
        "random" => {
            let n: usize = args.parse_required("n", "integer")?;
            generators::random_directed(n, density, max_w, seed)
        }
        "undirected" => {
            let n: usize = args.parse_required("n", "integer")?;
            let mut b = generators::random_undirected(n, density, max_w, seed);
            generators::connect(&mut b, max_w, seed);
            b
        }
        "bipartite" => {
            let n: usize = args.parse_required("n", "integer")?;
            generators::random_bipartite(n, density, seed)
        }
        "grid" => {
            let rows: usize = args.parse_required("rows", "integer")?;
            let cols: usize = args.parse_required("cols", "integer")?;
            generators::grid_graph(rows, cols)
        }
        other => return Err(CliError::Invalid(format!("unknown graph kind '{other}'"))),
    };
    let path = args.require("output")?;
    let file = File::create(path)?;
    write_dimacs(BufWriter::new(file), &b)?;
    writeln!(out, "wrote {} vertices, {} arcs to {path}", b.num_vertices(), b.edges().len())?;
    Ok(())
}

fn cmd_sssp(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let source: u32 = args.parse_or("source", 0, "vertex id")?;
    if source as usize >= b.num_vertices() {
        return Err(CliError::Invalid(format!("source {source} out of range")));
    }
    let rep = args.get_or("rep", "array");
    let algo = args.get_or("algo", "binary");
    let t0 = Instant::now();
    let result = match rep {
        "array" => {
            let g = b.build_array();
            match algo {
                "binary" => dijkstra_binary_heap(&g, source),
                "dary" => dijkstra::<_, DAryHeap<4>>(&g, source),
                "lazy" => dijkstra_lazy(&g, source),
                "sequence" => dijkstra_lazy_sequence(&g, source),
                "dense" => dijkstra_dense(&g, source),
                other => return Err(CliError::Invalid(format!("unknown algo '{other}'"))),
            }
        }
        "list" => dijkstra_binary_heap(&b.build_list(), source),
        "matrix" => dijkstra_binary_heap(&b.build_matrix(), source),
        other => return Err(CliError::Invalid(format!("unknown representation '{other}'"))),
    };
    let elapsed = t0.elapsed();
    let reachable = result.dist.iter().filter(|&&d| d != INF).count();
    let far = result
        .dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INF)
        .max_by_key(|&(_, &d)| d);
    writeln!(out, "source {source} ({rep}, {algo}): {reachable}/{} reachable", result.dist.len())?;
    if let Some((v, d)) = far {
        writeln!(out, "farthest reachable vertex: {v} at distance {d}")?;
    }
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    Ok(())
}

fn cmd_apsp(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let n = b.num_vertices();
    let costs = b.build_matrix().costs().to_vec();
    let algo = args.get_or("algo", "recursive");
    let block: usize =
        args.parse_or("block", select_block_size(32 * 1024, 8, 4).estimate.min(n), "integer")?;
    let t0 = Instant::now();
    let dist = match algo {
        "iterative" => {
            let mut d = costs;
            fw_iterative_slice(&mut d, n);
            d
        }
        "recursive" => {
            let mut m = FwMatrix::from_costs(ZMorton::new(n, block), &costs);
            fw_recursive(&mut m, block);
            m.to_row_major()
        }
        "tiled" => {
            let mut m = FwMatrix::from_costs(BlockLayout::new(n, block), &costs);
            fw_tiled(&mut m, block);
            m.to_row_major()
        }
        other => return Err(CliError::Invalid(format!("unknown algo '{other}'"))),
    };
    let elapsed = t0.elapsed();
    let finite: Vec<u32> = dist.iter().copied().filter(|&d| d != INF && d > 0).collect();
    let connected_pairs = finite.len();
    let diameter = finite.iter().max().copied().unwrap_or(0);
    let avg = if finite.is_empty() {
        0.0
    } else {
        finite.iter().map(|&d| d as f64).sum::<f64>() / finite.len() as f64
    };
    writeln!(out, "APSP ({algo}, block {block}) over {n} vertices")?;
    writeln!(out, "connected ordered pairs: {connected_pairs}")?;
    writeln!(out, "diameter: {diameter}, mean finite distance: {avg:.2}")?;
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    Ok(())
}

fn cmd_mst(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let root: u32 = args.parse_or("root", 0, "vertex id")?;
    if root as usize >= b.num_vertices() {
        return Err(CliError::Invalid(format!("root {root} out of range")));
    }
    let t0 = Instant::now();
    let mst = prim_binary_heap(&b.build_array(), root);
    let elapsed = t0.elapsed();
    let (kw, _) = kruskal(b.num_vertices(), b.edges());
    writeln!(out, "Prim MST from {root}: weight {}, {} vertices in tree", mst.total_weight, mst.tree_size)?;
    if mst.tree_size == b.num_vertices() {
        writeln!(out, "Kruskal cross-check: {kw} ({})", if kw == mst.total_weight { "agrees" } else { "MISMATCH" })?;
    } else {
        writeln!(out, "graph is disconnected; Kruskal forest weight: {kw}")?;
    }
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    Ok(())
}

fn cmd_match(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let n = b.num_vertices();
    if n % 2 != 0 {
        return Err(CliError::Invalid("matching expects an even vertex count (left = first half)".into()));
    }
    let parts: usize = args.parse_or("parts", 8, "integer")?;
    let g = b.build_array();
    let t0 = Instant::now();
    let base = find_matching(&g, n / 2, Matching::empty(n));
    let t_base = t0.elapsed();
    let t0 = Instant::now();
    let (opt, stats) =
        find_matching_partitioned(&g, n / 2, b.edges(), PartitionScheme::Contiguous(parts));
    let t_opt = t0.elapsed();
    if base.size != opt.size {
        return Err(CliError::Invalid("internal error: implementations disagree".into()));
    }
    writeln!(out, "maximum matching: {} of {} possible pairs", opt.size, n / 2)?;
    writeln!(
        out,
        "baseline: {:.3} ms; partitioned ({} parts, {} matched locally): {:.3} ms",
        t_base.as_secs_f64() * 1e3,
        stats.parts,
        stats.local_matched,
        t_opt.as_secs_f64() * 1e3,
    )?;
    Ok(())
}

fn cmd_closure(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let g = b.build_array();
    let t0 = Instant::now();
    let c = transitive_closure_of(&g);
    let elapsed = t0.elapsed();
    let n = g.num_vertices();
    let mut reachable_pairs = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j && c.get(i, j) {
                reachable_pairs += 1;
            }
        }
    }
    writeln!(out, "transitive closure over {n} vertices: {reachable_pairs} reachable ordered pairs")?;
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    Ok(())
}

fn cmd_simulate(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let source: u32 = args.parse_or("source", 0, "vertex id")?;
    let machine = args.get_or("machine", "simplescalar");
    let cfg = match machine {
        "simplescalar" => profiles::simplescalar(),
        "p3" => profiles::pentium_iii(),
        "sparc" => profiles::ultrasparc_iii(),
        "alpha" => profiles::alpha_21264(),
        "mips" => profiles::mips_r12000(),
        other => return Err(CliError::Invalid(format!("unknown machine '{other}'"))),
    };
    let rep = args.get_or("rep", "array");
    let r = match rep {
        "array" => sim_dijkstra_adj_array(&b.build_array(), source, cfg),
        "list" => sim_dijkstra_adj_list(&b.build_list(), source, cfg),
        other => return Err(CliError::Invalid(format!("unknown representation '{other}'"))),
    };
    writeln!(out, "simulated Dijkstra ({rep}) on {machine}:")?;
    for l in &r.stats.levels {
        writeln!(
            out,
            "  L{}: {} accesses, {} misses ({:.2}%)",
            l.level + 1,
            l.accesses,
            l.misses,
            l.miss_rate * 100.0
        )?;
    }
    if let Some(tlb) = &r.stats.tlb {
        writeln!(out, "  TLB: {} misses / {} translations", tlb.misses, tlb.accesses)?;
    }
    writeln!(out, "  memory lines fetched: {}", r.stats.memory_lines_fetched)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).expect("args")
    }

    fn run_str(cmd: &str, a: &[&str]) -> Result<String, CliError> {
        let mut out = Vec::new();
        run(cmd, args(a), &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cachegraph-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_then_run_every_analysis() {
        let path = tmp("pipeline.gr");
        let report = run_str(
            "gen",
            &["--kind", "random", "--n", "64", "--density", "0.15", "--seed", "3", "-o", &path],
        )
        .expect("gen");
        assert!(report.contains("wrote 64 vertices"));

        let sssp = run_str("sssp", &["-i", &path, "--source", "0"]).expect("sssp");
        assert!(sssp.contains("reachable"), "{sssp}");

        let apsp = run_str("apsp", &["-i", &path, "--algo", "tiled", "--block", "16"]).expect("apsp");
        assert!(apsp.contains("diameter"), "{apsp}");

        let closure = run_str("closure", &["-i", &path]).expect("closure");
        assert!(closure.contains("reachable ordered pairs"), "{closure}");

        let sim = run_str("simulate", &["-i", &path, "--machine", "p3"]).expect("simulate");
        assert!(sim.contains("L1:"), "{sim}");
        assert!(sim.contains("TLB:"), "{sim}");
    }

    #[test]
    fn mst_on_connected_graph() {
        let path = tmp("mst.gr");
        run_str("gen", &["--kind", "undirected", "--n", "50", "--density", "0.1", "-o", &path])
            .expect("gen");
        let mst = run_str("mst", &["-i", &path]).expect("mst");
        assert!(mst.contains("agrees"), "Kruskal must confirm Prim: {mst}");
    }

    #[test]
    fn matching_on_bipartite_graph() {
        let path = tmp("match.gr");
        run_str("gen", &["--kind", "bipartite", "--n", "64", "--density", "0.2", "-o", &path])
            .expect("gen");
        let m = run_str("match", &["-i", &path, "--parts", "4"]).expect("match");
        assert!(m.contains("maximum matching"), "{m}");
    }

    #[test]
    fn sssp_algos_agree_via_reports() {
        let path = tmp("algos.gr");
        run_str("gen", &["--kind", "random", "--n", "80", "--density", "0.1", "-o", &path])
            .expect("gen");
        let lines = |s: String| s.lines().take(2).map(String::from).collect::<Vec<_>>();
        let base = lines(run_str("sssp", &["-i", &path, "--algo", "binary"]).expect("binary"));
        for algo in ["dary", "lazy", "sequence", "dense"] {
            let got = lines(run_str("sssp", &["-i", &path, "--algo", algo]).expect(algo));
            // First line differs in the algo label; the farthest-vertex
            // line must be identical.
            assert_eq!(got[1], base[1], "algo {algo}");
        }
    }

    #[test]
    fn grid_generation() {
        let path = tmp("grid.gr");
        let r = run_str("gen", &["--kind", "grid", "--rows", "4", "--cols", "5", "-o", &path])
            .expect("gen");
        assert!(r.contains("wrote 20 vertices"), "{r}");
    }

    #[test]
    fn error_paths() {
        assert!(matches!(run_str("nope", &[]), Err(CliError::UnknownCommand(_))));
        assert!(matches!(run_str("sssp", &[]), Err(CliError::Args(_))));
        assert!(matches!(
            run_str("gen", &["--kind", "weird", "--n", "4", "-o", "/tmp/x.gr"]),
            Err(CliError::Invalid(_))
        ));
        let path = tmp("err.gr");
        run_str("gen", &["--kind", "random", "--n", "8", "-o", &path]).expect("gen");
        assert!(matches!(
            run_str("sssp", &["-i", &path, "--source", "99"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            run_str("sssp", &["-i", &path, "--algo", "quantum"]),
            Err(CliError::Invalid(_))
        ));
    }
}
