//! The subcommand implementations. Each takes parsed [`Args`] and writes
//! its report to the given writer, so tests can drive them directly.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cachegraph_bench::loadgen::{run_loadgen, LoadgenConfig};
use cachegraph_bench::supervisor::{
    run_supervised, ExperimentOutcome, FaultPlan, SupervisorConfig, Unit, UnitOutput,
};
use cachegraph_serve::{
    request_once, start_on as serve_start_on, EngineConfig as ServeEngineConfig,
    FaultPlan as ServeFaultPlan, Op as ServeOp, Request as ServeRequest,
    Response as ServeResponse, ServerConfig,
};
use cachegraph_fw::instrumented::{
    sim_iterative_profiled, sim_recursive_morton_profiled, sim_tiled_bdl_profiled,
    sim_tiled_parallel_profiled,
};
use cachegraph_fw::{
    fw_iterative_observed, fw_recursive_observed, fw_tiled_observed, transitive_closure_of,
    FwMatrix, INF,
};
use cachegraph_graph::io::{read_dimacs, write_dimacs, DimacsError};
use cachegraph_graph::{generators, EdgeListBuilder, Graph};
use cachegraph_layout::{select_block_size, BlockLayout, RowMajor, ZMorton};
use cachegraph_matching::instrumented::{
    sim_find_matching_partitioned_profiled, sim_find_matching_profiled,
};
use cachegraph_matching::{
    find_matching, find_matching_partitioned, find_matching_partitioned_parallel, Matching,
    PartitionScheme,
};
use cachegraph_obs::{
    compare_reports, Json, Registry, Report, TraceConfig, TraceRecord, DEFAULT_THRESHOLD,
};
use cachegraph_pq::DAryHeap;
use cachegraph_sim::report::{profile_from_json, profile_to_json, stats_to_json};
use cachegraph_sim::{profiles, CacheProfile, ProfilerOptions, SpanCacheStats, TimelineSample};
use cachegraph_sssp::instrumented::{
    sim_dijkstra_adj_array_observed, sim_dijkstra_adj_array_profiled,
    sim_dijkstra_adj_list_observed, sim_dijkstra_adj_list_profiled,
};
use cachegraph_sssp::{
    delta_stepping, delta_stepping_parallel, dijkstra, dijkstra_binary_heap, dijkstra_dense,
    dijkstra_lazy, dijkstra_lazy_sequence, kruskal, prim_binary_heap,
};

use crate::args::{Args, ArgsError};

/// Errors surfaced to the binary's exit path.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgsError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Bad flag value for which parsing succeeded but the domain is wrong.
    Invalid(String),
    /// File / format problems.
    Dimacs(DimacsError),
    /// I/O problems.
    Io(std::io::Error),
    /// A supervised run ended without enough completed experiments.
    RunFailed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            CliError::Invalid(m) => write!(f, "{m}"),
            CliError::Dimacs(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::RunFailed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::Args(e)
    }
}

impl From<DimacsError> for CliError {
    fn from(e: DimacsError) -> Self {
        CliError::Dimacs(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Dispatch a subcommand; the report goes to `out`. Only `compare`,
/// `profile`, and `trace` take positional arguments.
pub fn run(command: &str, args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    if !matches!(command, "compare" | "profile" | "trace") {
        if let Some(p) = args.positionals().first() {
            return Err(CliError::Args(ArgsError::UnexpectedPositional(p.clone())));
        }
    }
    match command {
        "gen" => cmd_gen(args, out),
        "sssp" => cmd_sssp(args, out),
        "apsp" => cmd_apsp(args, out),
        "mst" => cmd_mst(args, out),
        "match" => cmd_match(args, out),
        "closure" => cmd_closure(args, out),
        "simulate" => cmd_simulate(args, out),
        "repro" => cmd_repro(args, out),
        "compare" => cmd_compare(args, out),
        "profile" => cmd_profile(args, out),
        "trace" => cmd_trace(args, out),
        "serve" => cmd_serve(args, out),
        "query" => cmd_query(args, out),
        "loadgen" => cmd_loadgen(args, out),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn load(args: &Args) -> Result<EdgeListBuilder, CliError> {
    let path = args.require("input")?;
    let file = File::open(path)?;
    Ok(read_dimacs(BufReader::new(file))?)
}

/// An enabled registry when `--metrics FILE` was given, else the inert
/// disabled registry (spans and counters become no-ops).
fn metrics_registry(args: &Args) -> Registry {
    if args.get("metrics").is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    }
}

/// Write the end-of-run report to the `--metrics` path, if one was given.
fn save_metrics(
    args: &Args,
    name: &str,
    registry: &Registry,
    cache_sims: Vec<Json>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let Some(path) = args.get("metrics") else {
        return Ok(());
    };
    let mut report = Report::new(name);
    report.set_metrics(&registry.snapshot());
    for sim in cache_sims {
        report.push_cache_sim(sim);
    }
    report.save(Path::new(path))?;
    writeln!(out, "metrics report written to {path}")?;
    Ok(())
}

fn cmd_gen(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let kind = args.get_or("kind", "random");
    let seed: u64 = args.parse_or("seed", 42, "integer")?;
    let density: f64 = args.parse_or("density", 0.1, "number")?;
    let max_w: u32 = args.parse_or("max-weight", 100, "integer")?;
    let b = match kind {
        "random" => {
            let n: usize = args.parse_required("n", "integer")?;
            generators::random_directed(n, density, max_w, seed)
        }
        "undirected" => {
            let n: usize = args.parse_required("n", "integer")?;
            let mut b = generators::random_undirected(n, density, max_w, seed);
            generators::connect(&mut b, max_w, seed);
            b
        }
        "bipartite" => {
            let n: usize = args.parse_required("n", "integer")?;
            generators::random_bipartite(n, density, seed)
        }
        "grid" => {
            let rows: usize = args.parse_required("rows", "integer")?;
            let cols: usize = args.parse_required("cols", "integer")?;
            generators::grid_graph(rows, cols)
        }
        other => return Err(CliError::Invalid(format!("unknown graph kind '{other}'"))),
    };
    let path = args.require("output")?;
    let file = File::create(path)?;
    write_dimacs(BufWriter::new(file), &b)?;
    writeln!(out, "wrote {} vertices, {} arcs to {path}", b.num_vertices(), b.edges().len())?;
    Ok(())
}

fn cmd_sssp(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let source: u32 = args.parse_or("source", 0, "vertex id")?;
    if source as usize >= b.num_vertices() {
        return Err(CliError::Invalid(format!("source {source} out of range")));
    }
    let rep = args.get_or("rep", "array");
    let algo = args.get_or("algo", "binary");
    let registry = metrics_registry(&args);
    let root = registry.span(&format!("cli.sssp/{rep}.{algo}"));
    let t0 = Instant::now();
    let result = match rep {
        "array" => {
            let g = b.build_array();
            match algo {
                "binary" => dijkstra_binary_heap(&g, source),
                "dary" => dijkstra::<_, DAryHeap<4>>(&g, source),
                "lazy" => dijkstra_lazy(&g, source),
                "sequence" => dijkstra_lazy_sequence(&g, source),
                "dense" => dijkstra_dense(&g, source),
                other => return Err(CliError::Invalid(format!("unknown algo '{other}'"))),
            }
        }
        "list" => dijkstra_binary_heap(&b.build_list(), source),
        "matrix" => dijkstra_binary_heap(&b.build_matrix(), source),
        other => return Err(CliError::Invalid(format!("unknown representation '{other}'"))),
    };
    let elapsed = t0.elapsed();
    drop(root);
    let reachable = result.dist.iter().filter(|&&d| d != INF).count();
    registry.gauge("sssp.reachable").set(i64::try_from(reachable).unwrap_or(i64::MAX));
    let far = result
        .dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INF)
        .max_by_key(|&(_, &d)| d);
    writeln!(out, "source {source} ({rep}, {algo}): {reachable}/{} reachable", result.dist.len())?;
    if let Some((v, d)) = far {
        writeln!(out, "farthest reachable vertex: {v} at distance {d}")?;
    }
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    save_metrics(&args, "cli-sssp", &registry, Vec::new(), out)?;
    Ok(())
}

fn cmd_apsp(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let n = b.num_vertices();
    let costs = b.build_matrix().costs().to_vec();
    let algo = args.get_or("algo", "recursive");
    let block: usize =
        args.parse_or("block", select_block_size(32 * 1024, 8, 4).estimate.min(n), "integer")?;
    let registry = metrics_registry(&args);
    let t0 = Instant::now();
    let dist = match algo {
        "iterative" => {
            let mut m = FwMatrix::from_costs(RowMajor::new(n), &costs);
            fw_iterative_observed(&mut m, &registry);
            m.to_row_major()
        }
        "recursive" => {
            let mut m = FwMatrix::from_costs(ZMorton::new(n, block), &costs);
            fw_recursive_observed(&mut m, block, &registry);
            m.to_row_major()
        }
        "tiled" => {
            let mut m = FwMatrix::from_costs(BlockLayout::new(n, block), &costs);
            fw_tiled_observed(&mut m, block, &registry);
            m.to_row_major()
        }
        other => return Err(CliError::Invalid(format!("unknown algo '{other}'"))),
    };
    let elapsed = t0.elapsed();
    let finite: Vec<u32> = dist.iter().copied().filter(|&d| d != INF && d > 0).collect();
    let connected_pairs = finite.len();
    let diameter = finite.iter().max().copied().unwrap_or(0);
    let avg = if finite.is_empty() {
        0.0
    } else {
        finite.iter().map(|&d| d as f64).sum::<f64>() / finite.len() as f64
    };
    writeln!(out, "APSP ({algo}, block {block}) over {n} vertices")?;
    writeln!(out, "connected ordered pairs: {connected_pairs}")?;
    writeln!(out, "diameter: {diameter}, mean finite distance: {avg:.2}")?;
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    save_metrics(&args, "cli-apsp", &registry, Vec::new(), out)?;
    Ok(())
}

fn cmd_mst(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let root: u32 = args.parse_or("root", 0, "vertex id")?;
    if root as usize >= b.num_vertices() {
        return Err(CliError::Invalid(format!("root {root} out of range")));
    }
    let t0 = Instant::now();
    let mst = prim_binary_heap(&b.build_array(), root);
    let elapsed = t0.elapsed();
    let (kw, _) = kruskal(b.num_vertices(), b.edges());
    writeln!(out, "Prim MST from {root}: weight {}, {} vertices in tree", mst.total_weight, mst.tree_size)?;
    if mst.tree_size == b.num_vertices() {
        writeln!(out, "Kruskal cross-check: {kw} ({})", if kw == mst.total_weight { "agrees" } else { "MISMATCH" })?;
    } else {
        writeln!(out, "graph is disconnected; Kruskal forest weight: {kw}")?;
    }
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    Ok(())
}

fn cmd_match(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let n = b.num_vertices();
    if n % 2 != 0 {
        return Err(CliError::Invalid("matching expects an even vertex count (left = first half)".into()));
    }
    let parts: usize = args.parse_or("parts", 8, "integer")?;
    let g = b.build_array();
    let registry = metrics_registry(&args);
    let root = registry.span("cli.match");
    let span = root.child("baseline");
    let t0 = Instant::now();
    let base = find_matching(&g, n / 2, Matching::empty(n));
    let t_base = t0.elapsed();
    drop(span);
    let span = root.child("partitioned");
    let t0 = Instant::now();
    let (opt, stats) =
        find_matching_partitioned(&g, n / 2, b.edges(), PartitionScheme::Contiguous(parts));
    let t_opt = t0.elapsed();
    drop(span);
    drop(root);
    registry.gauge("matching.size").set(i64::try_from(opt.size).unwrap_or(i64::MAX));
    if base.size != opt.size {
        return Err(CliError::Invalid("internal error: implementations disagree".into()));
    }
    writeln!(out, "maximum matching: {} of {} possible pairs", opt.size, n / 2)?;
    writeln!(
        out,
        "baseline: {:.3} ms; partitioned ({} parts, {} matched locally): {:.3} ms",
        t_base.as_secs_f64() * 1e3,
        stats.parts,
        stats.local_matched,
        t_opt.as_secs_f64() * 1e3,
    )?;
    save_metrics(&args, "cli-match", &registry, Vec::new(), out)?;
    Ok(())
}

fn cmd_closure(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let g = b.build_array();
    let t0 = Instant::now();
    let c = transitive_closure_of(&g);
    let elapsed = t0.elapsed();
    let n = g.num_vertices();
    let mut reachable_pairs = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j && c.get(i, j) {
                reachable_pairs += 1;
            }
        }
    }
    writeln!(out, "transitive closure over {n} vertices: {reachable_pairs} reachable ordered pairs")?;
    writeln!(out, "time: {:.3} ms", elapsed.as_secs_f64() * 1e3)?;
    Ok(())
}

fn cmd_simulate(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let b = load(&args)?;
    let source: u32 = args.parse_or("source", 0, "vertex id")?;
    let machine = args.get_or("machine", "simplescalar");
    let cfg = match machine {
        "simplescalar" => profiles::simplescalar(),
        "p3" => profiles::pentium_iii(),
        "sparc" => profiles::ultrasparc_iii(),
        "alpha" => profiles::alpha_21264(),
        "mips" => profiles::mips_r12000(),
        other => return Err(CliError::Invalid(format!("unknown machine '{other}'"))),
    };
    let rep = args.get_or("rep", "array");
    let registry = metrics_registry(&args);
    let r = match rep {
        "array" => sim_dijkstra_adj_array_observed(&b.build_array(), source, cfg, &registry),
        "list" => sim_dijkstra_adj_list_observed(&b.build_list(), source, cfg, &registry),
        other => return Err(CliError::Invalid(format!("unknown representation '{other}'"))),
    };
    writeln!(out, "simulated Dijkstra ({rep}) on {machine}:")?;
    for l in &r.stats.levels {
        writeln!(
            out,
            "  L{}: {} accesses, {} misses ({:.2}%)",
            l.level + 1,
            l.accesses,
            l.misses,
            l.miss_rate * 100.0
        )?;
    }
    if let Some(tlb) = &r.stats.tlb {
        writeln!(out, "  TLB: {} misses / {} translations", tlb.misses, tlb.accesses)?;
    }
    writeln!(out, "  memory lines fetched: {}", r.stats.memory_lines_fetched)?;
    let sims = vec![stats_to_json(&format!("dijkstra.{rep}"), machine, &r.stats)];
    save_metrics(&args, "cli-simulate", &registry, sims, out)?;
    Ok(())
}

/// Accumulates one supervised repro unit's human-readable lines and
/// cache-simulation sections, then freezes them (with the unit's own
/// registry snapshot) into the checkpoint fragment the supervisor
/// journals and the final report merges.
struct UnitReport {
    text: String,
    cache_sims: Vec<Json>,
    profiles: Vec<Json>,
}

impl UnitReport {
    fn new() -> Self {
        Self { text: String::new(), cache_sims: Vec::new(), profiles: Vec::new() }
    }

    fn line(&mut self, line: &str) {
        self.text.push_str(line);
        self.text.push('\n');
    }

    fn describe(&mut self, label: &str, machine: &str, stats: &cachegraph_sim::HierarchyStats) {
        let l1 = &stats.levels[0];
        let mut line = format!("  {label} ({machine}): L1 {}/{} misses", l1.misses, l1.accesses);
        if let Some(tlb) = &stats.tlb {
            line.push_str(&format!(", TLB {}/{}", tlb.misses, tlb.accesses));
        }
        if let Some(c) = &stats.l1_classes {
            line.push_str(&format!(", three-Cs {}/{}/{}", c.compulsory, c.capacity, c.conflict));
        }
        self.line(&line);
        self.cache_sims.push(stats_to_json(label, machine, stats));
    }

    /// [`describe`](Self::describe) plus the run's span-scoped cache
    /// attribution, which lands in the report's `profiles` section.
    fn describe_profiled(
        &mut self,
        label: &str,
        machine: &str,
        stats: &cachegraph_sim::HierarchyStats,
        profile: &CacheProfile,
    ) {
        self.describe(label, machine, stats);
        self.profiles.push(profile_to_json(profile));
    }

    fn finish(mut self, registry: &Registry) -> UnitOutput {
        let snapshot = registry.snapshot();
        if !snapshot.counters.is_empty() {
            self.line("counters:");
            for (name, value) in &snapshot.counters {
                self.line(&format!("  {name}: {value}"));
            }
        }
        UnitOutput {
            data: Json::obj()
                .field("cache_sims", Json::Arr(self.cache_sims))
                .field("profiles", Json::Arr(self.profiles))
                .field("metrics", snapshot.to_json()),
            text: self.text,
        }
    }
}

/// Profiler configuration for the repro simulations. Quick runs record
/// exactly (small problems; the report asserts self-sums match the
/// aggregates). Full runs sample one access in 64 — the counters become
/// scaled estimates, flagged `exact: false` in the report — because at
/// full problem sizes exact per-access attribution is pure overhead.
/// The timeline interval is coarse enough that a full FW run keeps its
/// timeline in the hundreds of samples, fine enough that a quick run
/// still shows phases.
fn repro_options(full: bool) -> ProfilerOptions {
    if full {
        ProfilerOptions { sample_period_log2: 6, timeline_interval: 65_536 }
    } else {
        ProfilerOptions { sample_period_log2: 0, timeline_interval: 4_096 }
    }
}

/// Floyd-Warshall unit: simulated hierarchies give the miss counts (with
/// three-Cs classification on the tiled/BDL variant); observed real runs
/// of the same variants give span durations and kernel counters.
fn repro_unit_fw(full: bool) -> Result<UnitOutput, String> {
    let scale = if full { "full" } else { "quick" };
    let registry = Registry::new();
    let mut rep = UnitReport::new();
    let (n, bsz) = if full { (256, 32) } else { (64, 16) };
    let opts = repro_options(full);
    let costs = generators::random_directed(n, 0.3, 100, 7).build_matrix().costs().to_vec();
    rep.line(&format!("repro ({scale}): Floyd-Warshall n={n}, b={bsz}"));
    let sim = sim_iterative_profiled(&costs, n, profiles::simplescalar(), opts, &registry);
    rep.describe_profiled("fw.iterative", "simplescalar", &sim.stats, &sim.profile);
    let sim = sim_tiled_bdl_profiled(&costs, n, bsz, profiles::simplescalar(), opts, &registry);
    rep.describe_profiled("fw.tiled.bdl", "simplescalar", &sim.stats, &sim.profile);
    let sim =
        sim_recursive_morton_profiled(&costs, n, bsz, profiles::simplescalar(), opts, &registry);
    rep.describe_profiled("fw.recursive.morton", "simplescalar", &sim.stats, &sim.profile);
    // Parallel FW: per-worker private hierarchies merged at join, so the
    // merged profile's self-sums still match its (merged) aggregate.
    let sim =
        sim_tiled_parallel_profiled(&costs, n, bsz, 2, profiles::simplescalar(), opts, &registry);
    rep.describe_profiled("fw.tiled.parallel", "simplescalar", &sim.stats, &sim.profile);

    let mut m = FwMatrix::from_costs(RowMajor::new(n), &costs);
    fw_iterative_observed(&mut m, &registry);
    let expect = m.to_row_major();
    let mut m = FwMatrix::from_costs(BlockLayout::new(n, bsz), &costs);
    fw_tiled_observed(&mut m, bsz, &registry);
    let tiled_ok = m.to_row_major() == expect;
    let mut m = FwMatrix::from_costs(ZMorton::new(n, bsz), &costs);
    fw_recursive_observed(&mut m, bsz, &registry);
    if !tiled_ok || m.to_row_major() != expect {
        return Err("internal error: FW variants disagree".into());
    }
    Ok(rep.finish(&registry))
}

/// Dijkstra unit: both graph representations on a TLB-modelled machine.
fn repro_unit_dijkstra(full: bool) -> Result<UnitOutput, String> {
    let scale = if full { "full" } else { "quick" };
    let registry = Registry::new();
    let mut rep = UnitReport::new();
    let dn = if full { 4096 } else { 512 };
    let opts = repro_options(full);
    let g = generators::random_directed(dn, 0.02, 100, 11);
    rep.line(&format!("repro ({scale}): Dijkstra n={dn}"));
    let sim = sim_dijkstra_adj_array_profiled(
        &g.build_array(),
        0,
        profiles::pentium_iii(),
        opts,
        &registry,
    );
    if let Some(p) = &sim.profile {
        rep.describe_profiled("dijkstra.array", "p3", &sim.stats, p);
    }
    let sim =
        sim_dijkstra_adj_list_profiled(&g.build_list(), 0, profiles::pentium_iii(), opts, &registry);
    if let Some(p) = &sim.profile {
        rep.describe_profiled("dijkstra.list", "p3", &sim.stats, p);
    }
    Ok(rep.finish(&registry))
}

/// Matching unit: baseline versus the partitioned variant.
fn repro_unit_matching(full: bool) -> Result<UnitOutput, String> {
    let scale = if full { "full" } else { "quick" };
    let registry = Registry::new();
    let mut rep = UnitReport::new();
    let mn = if full { 1024 } else { 256 };
    let opts = repro_options(full);
    let g = generators::random_bipartite(mn, 0.1, 5);
    rep.line(&format!("repro ({scale}): matching n={mn}"));
    let base =
        sim_find_matching_profiled(mn, mn / 2, g.edges(), profiles::simplescalar(), opts, &registry);
    if let Some(p) = &base.profile {
        rep.describe_profiled("matching.baseline", "simplescalar", &base.stats, p);
    }
    let part = sim_find_matching_partitioned_profiled(
        mn,
        mn / 2,
        g.edges(),
        PartitionScheme::Contiguous(8),
        profiles::simplescalar(),
        opts,
        &registry,
    );
    if let Some(p) = &part.profile {
        rep.describe_profiled("matching.partitioned", "simplescalar", &part.stats, p);
    }
    if base.size != part.size {
        return Err("internal error: matching variants disagree".into());
    }
    Ok(rep.finish(&registry))
}

/// Parallel Dijkstra unit: the delta-stepping TaskGraph driver across a
/// thread sweep, every run checked bit-identical (dist AND pred) to the
/// serial bucket loop, which itself is checked against Dijkstra. Wall
/// times land in the metrics as per-thread gauges.
fn repro_unit_parallel_dijkstra(full: bool) -> Result<UnitOutput, String> {
    let scale = if full { "full" } else { "quick" };
    let registry = Registry::new();
    let mut rep = UnitReport::new();
    let dn = if full { 4096 } else { 512 };
    let delta = 16;
    let g = generators::random_directed(dn, 0.02, 100, 11).build_array();
    rep.line(&format!("repro ({scale}): parallel Dijkstra (delta-stepping) n={dn} delta={delta}"));
    let reference = dijkstra_binary_heap(&g, 0);
    let serial = delta_stepping(&g, 0, delta);
    if serial.dist != reference.dist {
        return Err("internal error: serial delta-stepping disagrees with Dijkstra".into());
    }
    for threads in [1usize, 2, 4] {
        let t = Instant::now();
        let par = delta_stepping_parallel(&g, 0, delta, threads);
        let wall = t.elapsed();
        if par.dist != serial.dist || par.pred != serial.pred {
            return Err(format!(
                "internal error: parallel delta-stepping diverged at threads={threads}"
            ));
        }
        registry
            .gauge(&format!("sssp.parallel.threads{threads}_us"))
            .set(i64::try_from(wall.as_micros()).unwrap_or(i64::MAX));
        rep.line(&format!(
            "  delta.parallel threads={threads}: {wall:?}, dist+pred identical to serial"
        ));
    }
    Ok(rep.finish(&registry))
}

/// Parallel matching unit: the partitioned TaskGraph driver across a
/// thread sweep, every run checked bit-identical (mate array AND
/// partition statistics) to the serial partitioned driver.
fn repro_unit_parallel_matching(full: bool) -> Result<UnitOutput, String> {
    let scale = if full { "full" } else { "quick" };
    let registry = Registry::new();
    let mut rep = UnitReport::new();
    let mn = if full { 1024 } else { 256 };
    let scheme = PartitionScheme::Contiguous(8);
    let g = generators::random_bipartite(mn, 0.1, 5);
    let arr = g.build_array();
    rep.line(&format!("repro ({scale}): parallel matching n={mn} parts=8"));
    let (serial, sstats) = find_matching_partitioned(&arr, mn / 2, g.edges(), scheme);
    for threads in [1usize, 2, 4] {
        let t = Instant::now();
        let (par, pstats) =
            find_matching_partitioned_parallel(&arr, mn / 2, g.edges(), scheme, threads);
        let wall = t.elapsed();
        if par.mate != serial.mate || pstats != sstats {
            return Err(format!(
                "internal error: parallel matching diverged at threads={threads}"
            ));
        }
        registry
            .gauge(&format!("matching.parallel.threads{threads}_us"))
            .set(i64::try_from(wall.as_micros()).unwrap_or(i64::MAX));
        rep.line(&format!(
            "  matching.parallel threads={threads}: {wall:?}, size {} identical to serial",
            par.size
        ));
    }
    registry.gauge("matching.parallel.size").set(i64::try_from(serial.size).unwrap_or(i64::MAX));
    Ok(rep.finish(&registry))
}

/// Merge the `metrics` fragments of completed units into one report
/// `metrics` section (counters/gauges/histograms union, spans
/// concatenated). Unit metric names are prefixed per subsystem, so the
/// union is collision-free.
fn merge_unit_metrics(fragments: &[&Json]) -> Json {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    let mut spans = Vec::new();
    for m in fragments {
        for (section, into) in [
            ("counters", &mut counters),
            ("gauges", &mut gauges),
            ("histograms", &mut histograms),
        ] {
            if let Some(fields) = m.get(section).and_then(Json::as_obj) {
                into.extend(fields.iter().cloned());
            }
        }
        if let Some(s) = m.get("spans").and_then(Json::as_arr) {
            spans.extend(s.iter().cloned());
        }
    }
    Json::obj()
        .field("counters", Json::Obj(counters))
        .field("gauges", Json::Obj(gauges))
        .field("histograms", Json::Obj(histograms))
        .field("spans", Json::Arr(spans))
}

/// `repro`: an instrumented pass over the paper's core algorithms at a
/// quick (default, also `--quick`) or `--full` scale, run under the
/// supervisor ([`cachegraph_bench::supervisor`]): each of the five
/// experiments (`fw`, `dijkstra`, `matching`, `parallel-dijkstra`,
/// `parallel-matching`) executes isolated, a panic
/// or `--timeout-secs` overrun degrades to a structured outcome in the
/// report, `--journal FILE` streams one checkpoint record per
/// experiment, and `--resume FILE` skips experiments already completed
/// there. With `--metrics FILE` the run writes a schema-versioned report
/// holding the simulated L1/L2/TLB statistics and three-Cs miss counts
/// per workload next to the span durations and algorithm counters from
/// observed real runs, plus one `experiments` entry per outcome. The
/// command fails (exit 1) only when *no* experiment completes, or under
/// `--strict` when any does not.
fn cmd_repro(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let full = args.switch("full");
    let name = if full { "repro-full" } else { "repro-quick" };
    let mut config = SupervisorConfig { context: name.to_string(), ..Default::default() };
    config.strict = args.switch("strict");
    config.journal = args.get("journal").map(PathBuf::from);
    config.resume = args.get("resume").map(PathBuf::from);
    if let Some(s) = args.get("timeout-secs") {
        match s.parse::<u64>() {
            Ok(secs) if secs > 0 => config.timeout = Some(Duration::from_secs(secs)),
            _ => {
                return Err(CliError::Invalid(format!(
                    "--timeout-secs: '{s}' is not a positive integer"
                )))
            }
        }
    }
    if let Some(spec) = args.get("fault-plan") {
        config.fault_plan = FaultPlan::parse(spec).map_err(CliError::Invalid)?;
    }

    let units = vec![
        Unit::new("fw", move || repro_unit_fw(full)),
        Unit::new("dijkstra", move || repro_unit_dijkstra(full)),
        Unit::new("matching", move || repro_unit_matching(full)),
        Unit::new("parallel-dijkstra", move || repro_unit_parallel_dijkstra(full)),
        Unit::new("parallel-matching", move || repro_unit_parallel_matching(full)),
    ];
    let summary = run_supervised(units, &config, out)?;

    let mut report = Report::new(name);
    let mut metric_fragments = Vec::new();
    for (id, outcome) in &summary.outcomes {
        if let ExperimentOutcome::Completed { data, .. } = outcome {
            if let Some(sims) = data.get("cache_sims").and_then(Json::as_arr) {
                for sim in sims {
                    report.push_cache_sim(sim.clone());
                }
            }
            if let Some(profiles) = data.get("profiles").and_then(Json::as_arr) {
                for profile in profiles {
                    report.push_profile(profile.clone());
                }
            }
            if let Some(metrics) = data.get("metrics") {
                metric_fragments.push(metrics);
            }
        }
        report.push_experiment(outcome.to_section(id));
    }
    report.metrics = Some(merge_unit_metrics(&metric_fragments));
    if let Some(path) = args.get("metrics") {
        report.save(Path::new(path))?;
        writeln!(out, "metrics report written to {path}")?;
    }

    writeln!(out, "\n{}", summary.render_table())?;
    if !summary.succeeded(config.strict) {
        return Err(CliError::RunFailed(format!(
            "repro run did not succeed: {}/{} experiments completed{}",
            summary.completed(),
            summary.outcomes.len(),
            if config.strict { " (strict mode)" } else { "" }
        )));
    }
    Ok(())
}

/// `compare`: diff two metrics reports, flagging every metric whose
/// relative change exceeds the threshold (default 10%).
fn cmd_compare(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let [a_path, b_path] = args.positionals() else {
        return Err(CliError::Invalid("compare needs exactly two report paths".into()));
    };
    let threshold: f64 = args.parse_or("threshold", DEFAULT_THRESHOLD, "number")?;
    let load = |path: &str| {
        Report::load(Path::new(path)).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    let deltas = compare_reports(&a, &b, threshold);
    writeln!(out, "comparing '{}' -> '{}' (threshold {:.1}%)", a.name, b.name, threshold * 100.0)?;
    for d in &deltas {
        writeln!(out, "{}", d.render_line())?;
    }
    let flagged = deltas.iter().filter(|d| d.flagged).count();
    writeln!(out, "{flagged} of {} compared metrics exceed the threshold", deltas.len())?;
    Ok(())
}

/// `profile`: render the `profiles` sections of a metrics report
/// (schema v3+) as indented span trees — self/total L1 misses, self
/// miss rate, and the dominant three-Cs miss class per scope — plus a
/// terminal sparkline of each run's sampled miss-rate timeline. Sampled
/// (v4, `exact: false`) profiles render through the identical code
/// path, with one header annotation marking the counters as scaled
/// estimates.
/// `--label L` restricts the output to one profile.
fn cmd_profile(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let [path] = args.positionals() else {
        return Err(CliError::Invalid("profile needs exactly one report path".into()));
    };
    let report =
        Report::load(Path::new(path)).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    let want = args.get("label");
    let mut shown = 0usize;
    for section in &report.profiles {
        let Some(profile) = profile_from_json(section) else {
            return Err(CliError::Invalid(format!("{path}: malformed profile section")));
        };
        if want.is_some_and(|w| w != profile.label) {
            continue;
        }
        if shown > 0 {
            writeln!(out)?;
        }
        render_profile(&profile, out)?;
        shown += 1;
    }
    if shown == 0 {
        if let Some(w) = want {
            return Err(CliError::Invalid(format!("no profile labelled '{w}' in '{path}'")));
        }
        writeln!(out, "report '{}' contains no cache profiles", report.name)?;
    }
    Ok(())
}

fn render_profile(p: &CacheProfile, out: &mut dyn Write) -> Result<(), CliError> {
    if p.exact {
        writeln!(out, "profile {} (machine {})", p.label, p.machine)?;
    } else {
        writeln!(
            out,
            "profile {} (machine {}, sampled 1/{} — counters are scaled estimates)",
            p.label, p.machine, p.sample_period
        )?;
    }
    writeln!(
        out,
        "  {:<34} {:>12} {:>12} {:>7}  dominant",
        "span", "self-miss", "total-miss", "miss%"
    )?;
    for span in &p.spans {
        writeln!(out, "{}", render_span_line(span))?;
    }
    if p.interval > 0 && !p.timeline.is_empty() {
        writeln!(
            out,
            "  timeline ({} samples of {} L1 accesses): {}",
            p.timeline.len(),
            p.interval,
            sparkline(&p.timeline)
        )?;
    }
    Ok(())
}

/// One row of the span tree: indentation mirrors the `/`-separated scope
/// path, so the flat pre-ordered span list reads as a flamegraph.
fn render_span_line(span: &SpanCacheStats) -> String {
    let depth = span.path.matches('/').count();
    let name = if depth == 0 {
        span.path.as_str()
    } else {
        span.path.rsplit('/').next().unwrap_or(&span.path)
    };
    let indent = "  ".repeat(depth);
    let self_l1 = span.self_stats.levels.first();
    let self_miss = self_l1.map_or(0, |l| l.misses);
    let total_miss = span.total_stats.levels.first().map_or(0, |l| l.misses);
    let rate = self_l1.map_or(0.0, |l| l.miss_rate * 100.0);
    let dominant = span
        .self_stats
        .l1_classes
        .and_then(|c| c.dominant())
        .map_or("-", |class| class.label());
    let width = 34usize.saturating_sub(indent.len());
    format!(
        "  {indent}{name:<width$} {self_miss:>12} {total_miss:>12} {rate:>6.2}%  {dominant}"
    )
}

/// Render the delta-encoded timeline as one line of block characters,
/// each cell's height proportional to that interval's miss rate (scaled
/// to the run's peak). Long timelines are re-bucketed to at most 64
/// cells.
fn sparkline(timeline: &[TimelineSample]) -> String {
    const BLOCKS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    let chunk = timeline.len().div_ceil(64).max(1);
    let rates: Vec<f64> = timeline
        .chunks(chunk)
        .map(|c| {
            let acc: u64 = c.iter().map(|s| s.accesses).sum();
            let miss: u64 = c.iter().map(|s| s.l1_misses).sum();
            if acc == 0 {
                0.0
            } else {
                miss as f64 / acc as f64
            }
        })
        .collect();
    let peak = rates.iter().fold(0.0f64, |a, &b| a.max(b));
    rates
        .iter()
        .map(|&r| {
            if peak == 0.0 {
                BLOCKS[0]
            } else {
                let idx = ((r / peak) * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

/// `trace`: render the `traces` section of a metrics report (schema
/// v5+, written by `serve --metrics` or drained over the wire) as one
/// waterfall line per request — the bar is the request's wall time,
/// split left-to-right in segment order, each segment drawn with its
/// own block height — followed by an exact-rank p50/p90/p99 table per
/// segment. `--op OP` restricts to one operation; `--limit N` caps the
/// waterfall rows (the percentile table always covers every selected
/// trace).
fn cmd_trace(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let [path] = args.positionals() else {
        return Err(CliError::Invalid("trace needs exactly one report path".into()));
    };
    let report =
        Report::load(Path::new(path)).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    let want_op = args.get("op");
    let limit: usize = args.parse_or("limit", 32, "integer")?;
    let mut traces = Vec::new();
    for section in &report.traces {
        let t = TraceRecord::from_json(section)
            .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        if want_op.is_some_and(|w| w != t.op) {
            continue;
        }
        traces.push(t);
    }
    if traces.is_empty() {
        if let Some(w) = want_op {
            return Err(CliError::Invalid(format!("no traces for op '{w}' in '{path}'")));
        }
        writeln!(out, "report '{}' contains no traces", report.name)?;
        return Ok(());
    }
    traces.sort_by_key(|t| t.seq);

    writeln!(out, "traces from '{}' ({} records)", report.name, traces.len())?;
    let legend: Vec<String> = cachegraph_obs::SEGMENTS
        .iter()
        .enumerate()
        .map(|(i, name)| format!("{name} {}", segment_block(i)))
        .collect();
    writeln!(out, "  segments: {}", legend.join("  "))?;
    writeln!(out, "  {:<16} {:<6} {:<18} {:>10}  waterfall", "trace", "op", "outcome", "wall")?;
    for t in traces.iter().take(limit) {
        writeln!(
            out,
            "  {:<16} {:<6} {:<18} {:>10}  {}",
            t.id_hex(),
            t.op,
            t.outcome,
            fmt_us(t.wall_ns),
            trace_waterfall(t, 40),
        )?;
    }
    if traces.len() > limit {
        writeln!(out, "  ... {} more (raise --limit)", traces.len() - limit)?;
    }

    writeln!(out, "\nsegment percentiles over {} traces (exact rank):", traces.len())?;
    writeln!(out, "  {:<10} {:>10} {:>10} {:>10}", "segment", "p50", "p90", "p99")?;
    for name in cachegraph_obs::SEGMENTS {
        let mut durations: Vec<u64> = traces.iter().map(|t| t.segment_ns(name)).collect();
        durations.sort_unstable();
        writeln!(
            out,
            "  {:<10} {:>10} {:>10} {:>10}",
            name,
            fmt_us(exact_rank(&durations, 50)),
            fmt_us(exact_rank(&durations, 90)),
            fmt_us(exact_rank(&durations, 99)),
        )?;
    }
    let mut walls: Vec<u64> = traces.iter().map(|t| t.wall_ns).collect();
    walls.sort_unstable();
    writeln!(
        out,
        "  {:<10} {:>10} {:>10} {:>10}",
        "wall",
        fmt_us(exact_rank(&walls, 50)),
        fmt_us(exact_rank(&walls, 90)),
        fmt_us(exact_rank(&walls, 99)),
    )?;
    Ok(())
}

/// The block character drawn for the i-th canonical segment: heights
/// ascend in pipeline order, so a waterfall reads left-to-right as a
/// rising staircase wherever time is actually spent.
fn segment_block(index: usize) -> char {
    const BLOCKS: [char; 6] =
        ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2585}', '\u{2586}', '\u{2588}'];
    BLOCKS[index.min(BLOCKS.len() - 1)]
}

/// One trace as a `width`-cell bar: segments in first-mark order, each
/// spanning cells proportional to its share of the wall time (cumulative
/// rounding, so the cells always partition the bar exactly like the
/// segments partition the wall).
fn trace_waterfall(t: &TraceRecord, width: usize) -> String {
    if t.wall_ns == 0 {
        return String::new();
    }
    let mut bar = String::with_capacity(width * 3);
    let mut cum = 0u64;
    let mut filled = 0usize;
    for (name, dur) in &t.segments {
        cum += dur;
        let end = ((cum as f64 / t.wall_ns as f64) * width as f64).round() as usize;
        let block = cachegraph_obs::SEGMENTS
            .iter()
            .position(|s| s == name)
            .map_or('\u{2581}', segment_block);
        for _ in filled..end.min(width) {
            bar.push(block);
        }
        filled = filled.max(end.min(width));
    }
    bar
}

/// Nearest-rank percentile over an already-sorted slice.
fn exact_rank(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Nanoseconds as a human `us` figure (the request path is socket-bound;
/// microseconds is the natural unit).
fn fmt_us(ns: u64) -> String {
    format!("{:.1} us", ns as f64 / 1e3)
}

/// Resolve `--port` directly or via `--port-file` (written by `serve`).
fn resolve_port(args: &Args) -> Result<u16, CliError> {
    if let Some(p) = args.get("port") {
        return p
            .parse::<u16>()
            .map_err(|_| CliError::Invalid(format!("--port: '{p}' is not a port number")));
    }
    if let Some(path) = args.get("port-file") {
        let text = std::fs::read_to_string(path)?;
        return text
            .trim()
            .parse::<u16>()
            .map_err(|_| CliError::Invalid(format!("{path}: not a port number")));
    }
    Err(CliError::Invalid("--port or --port-file is required".into()))
}

/// `serve`: run the crash-only query daemon until a `shutdown` request
/// drains it; optionally publish the bound port and the final report.
fn cmd_serve(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let cfg = ServerConfig {
        engine: ServeEngineConfig {
            n: args.parse_or("gen-n", 256, "integer")?,
            density: args.parse_or("density", 0.05, "number")?,
            max_weight: args.parse_or("max-weight", 100, "integer")?,
            seed: args.parse_or("seed", 42, "integer")?,
            apsp_threshold: args.parse_or("apsp-threshold", 128, "integer")?,
            tile: args.parse_or("tile", 8, "integer")?,
            landmarks: args.parse_or("landmarks", 8, "integer")?,
            threads: args.parse_or("threads", 2, "integer")?,
            delta: args.parse_or("delta", 16, "integer")?,
        },
        workers: args.parse_or("workers", 4, "integer")?,
        queue_high: args.parse_or("queue-high", 64, "integer")?,
        queue_low: args.parse_or("queue-low", 32, "integer")?,
        default_deadline_ms: args.parse_or("deadline-ms", 1_000, "integer")?,
        retry_after_ms: args.parse_or("retry-after-ms", 5, "integer")?,
        read_timeout_ms: args.parse_or("read-timeout-ms", 2_000, "integer")?,
        drain_deadline_ms: args.parse_or("drain-ms", 5_000, "integer")?,
        hang_ms: args.parse_or("hang-ms", 400, "integer")?,
        cache_shards: args.parse_or("cache-shards", 8, "integer")?,
        cache_per_shard: args.parse_or("cache-per-shard", 128, "integer")?,
        trace: {
            let defaults = TraceConfig::default();
            TraceConfig {
                enabled: !args.switch("no-trace"),
                flight_len: args.parse_or("flight-len", defaults.flight_len, "integer")?,
                sample_period_log2: args.parse_or(
                    "trace-sample-log2",
                    defaults.sample_period_log2,
                    "integer",
                )?,
                seed: args.parse_or("trace-seed", defaults.seed, "integer")?,
            }
        },
    };
    let plan = match args.get("fault-plan") {
        Some(spec) => ServeFaultPlan::parse(spec).map_err(CliError::Invalid)?,
        None => ServeFaultPlan::none(),
    };
    let port = args.parse_or("port", 0u16, "port number")?;
    let handle = serve_start_on(cfg, plan, Registry::new(), port).map_err(CliError::Io)?;
    if let Some(path) = args.get("trace-log") {
        let sink = BufWriter::new(File::create(path)?);
        handle.attach_trace_sink(Box::new(sink));
        writeln!(out, "sampled trace log streaming to {path}")?;
    }
    writeln!(out, "serving on 127.0.0.1:{} (send op `shutdown` to drain)", handle.port())?;
    out.flush()?;
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, format!("{}\n", handle.port()))?;
    }
    // The final report comes from the server itself (not rebuilt here):
    // metrics plus the serve.state experiment plus the flushed flight
    // recorder, as one schema-current document.
    let (snapshot, report) = handle.join_report();
    if let Some(path) = args.get("metrics") {
        report.save(Path::new(path))?;
        writeln!(out, "final metrics report written to {path} ({} traces)", report.traces.len())?;
    }
    let count = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    writeln!(
        out,
        "drained: ok {} shed {} deadline_exceeded {} panics {} torn_writes {}",
        count("serve.ok"),
        count("serve.shed"),
        count("serve.deadline_exceeded"),
        count("serve.panics"),
        count("serve.torn_writes"),
    )?;
    Ok(())
}

/// `query`: one request against a running daemon; exit 0 only on `OK`.
fn cmd_query(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let port = resolve_port(&args)?;
    let op_name = args.get_or("op", "health");
    let Some(op) = ServeOp::parse(op_name) else {
        return Err(CliError::Invalid(format!(
            "--op: '{op_name}' is not path|reach|match|metrics|health|stats|trace|shutdown"
        )));
    };
    let mut req = ServeRequest::plain(op);
    if matches!(op, ServeOp::Path | ServeOp::Reach) {
        req.src = args.parse_required("src", "vertex id")?;
        req.dst = args.parse_required("dst", "vertex id")?;
    }
    if let Some(ms) = args.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| CliError::Invalid(format!("--deadline-ms: '{ms}' is not an integer")))?;
        req = req.with_deadline_ms(ms);
    }
    let timeout: u64 = args.parse_or("timeout-ms", 5_000, "integer")?;
    let resp = request_once(port, &req, timeout)
        .map_err(|e| CliError::RunFailed(format!("query failed: {e}")))?;
    writeln!(out, "{}", resp.to_json().render())?;
    match resp {
        ServeResponse::Ok(_) => Ok(()),
        other => Err(CliError::RunFailed(format!("server answered {}", other.status()))),
    }
}

/// `loadgen`: drive a running daemon with seeded clients; exit 0 when
/// every request converged (possibly through retries).
fn cmd_loadgen(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let port = resolve_port(&args)?;
    let cfg = LoadgenConfig {
        clients: args.parse_or("clients", 4, "integer")?,
        requests_per_client: args.parse_or("requests", 25, "integer")?,
        seed: args.parse_or("seed", 1, "integer")?,
        deadline_ms: args.parse_or("deadline-ms", 1_000, "integer")?,
        max_retries: args.parse_or("max-retries", 8, "integer")?,
        base_backoff_ms: args.parse_or("backoff-ms", 2, "integer")?,
        think_mean_ms: args.parse_or("think-ms", 0, "integer")?,
        timeout_ms: args.parse_or("timeout-ms", 2_000, "integer")?,
    };
    let result = run_loadgen(port, &cfg)
        .map_err(|e| CliError::RunFailed(format!("load generator failed: {e}")))?;
    writeln!(
        out,
        "loadgen: ok {} shed {} retries {} deadline_exceeded {} internal {} torn {} exhausted {}",
        result.ok,
        result.shed,
        result.retries,
        result.deadline_exceeded,
        result.internal,
        result.torn,
        result.exhausted,
    )?;
    writeln!(
        out,
        "latency p50 {} us  p90 {} us  p99 {} us (pow2-bucket upper bounds, <2x quantization)",
        result.p50_ns() / 1_000,
        result.p90_ns() / 1_000,
        result.p99_ns() / 1_000,
    )?;
    if let Some(path) = args.get("metrics") {
        let mut report = Report::new("loadgen");
        report.push_experiment(result.to_experiment_json(&cfg));
        report.save(Path::new(path))?;
        writeln!(out, "loadgen report written to {path}")?;
    }
    let total = (cfg.clients * cfg.requests_per_client) as u64;
    if result.ok < total {
        return Err(CliError::RunFailed(format!(
            "only {}/{} requests resolved ({} exhausted, {} bad, {} during shutdown)",
            result.ok, total, result.exhausted, result.bad_request, result.shutting_down
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).expect("args")
    }

    fn run_str(cmd: &str, a: &[&str]) -> Result<String, CliError> {
        let mut out = Vec::new();
        run(cmd, args(a), &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cachegraph-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_then_run_every_analysis() {
        let path = tmp("pipeline.gr");
        let report = run_str(
            "gen",
            &["--kind", "random", "--n", "64", "--density", "0.15", "--seed", "3", "-o", &path],
        )
        .expect("gen");
        assert!(report.contains("wrote 64 vertices"));

        let sssp = run_str("sssp", &["-i", &path, "--source", "0"]).expect("sssp");
        assert!(sssp.contains("reachable"), "{sssp}");

        let apsp = run_str("apsp", &["-i", &path, "--algo", "tiled", "--block", "16"]).expect("apsp");
        assert!(apsp.contains("diameter"), "{apsp}");

        let closure = run_str("closure", &["-i", &path]).expect("closure");
        assert!(closure.contains("reachable ordered pairs"), "{closure}");

        let sim = run_str("simulate", &["-i", &path, "--machine", "p3"]).expect("simulate");
        assert!(sim.contains("L1:"), "{sim}");
        assert!(sim.contains("TLB:"), "{sim}");
    }

    #[test]
    fn mst_on_connected_graph() {
        let path = tmp("mst.gr");
        run_str("gen", &["--kind", "undirected", "--n", "50", "--density", "0.1", "-o", &path])
            .expect("gen");
        let mst = run_str("mst", &["-i", &path]).expect("mst");
        assert!(mst.contains("agrees"), "Kruskal must confirm Prim: {mst}");
    }

    #[test]
    fn matching_on_bipartite_graph() {
        let path = tmp("match.gr");
        run_str("gen", &["--kind", "bipartite", "--n", "64", "--density", "0.2", "-o", &path])
            .expect("gen");
        let m = run_str("match", &["-i", &path, "--parts", "4"]).expect("match");
        assert!(m.contains("maximum matching"), "{m}");
    }

    #[test]
    fn sssp_algos_agree_via_reports() {
        let path = tmp("algos.gr");
        run_str("gen", &["--kind", "random", "--n", "80", "--density", "0.1", "-o", &path])
            .expect("gen");
        let lines = |s: String| s.lines().take(2).map(String::from).collect::<Vec<_>>();
        let base = lines(run_str("sssp", &["-i", &path, "--algo", "binary"]).expect("binary"));
        for algo in ["dary", "lazy", "sequence", "dense"] {
            let got = lines(run_str("sssp", &["-i", &path, "--algo", algo]).expect(algo));
            // First line differs in the algo label; the farthest-vertex
            // line must be identical.
            assert_eq!(got[1], base[1], "algo {algo}");
        }
    }

    #[test]
    fn grid_generation() {
        let path = tmp("grid.gr");
        let r = run_str("gen", &["--kind", "grid", "--rows", "4", "--cols", "5", "-o", &path])
            .expect("gen");
        assert!(r.contains("wrote 20 vertices"), "{r}");
    }

    #[test]
    fn repro_quick_writes_schema_versioned_report() {
        let path = tmp("repro_metrics.json");
        let report = run_str("repro", &["--quick", "--metrics", &path]).expect("repro");
        assert!(report.contains("Floyd-Warshall"), "{report}");
        assert!(report.contains("fw.kernel_calls:"), "{report}");
        assert!(report.contains("sssp.relaxations:"), "{report}");

        let loaded = Report::load(Path::new(&path)).expect("parse report");
        assert_eq!(loaded.name, "repro-quick");

        // Cache sections: FW iterative/tiled/recursive plus Dijkstra
        // array/list, with TLB stats on the p3 runs and three-Cs counts
        // on the tiled/BDL run.
        let labels: Vec<&str> = loaded
            .cache_sims
            .iter()
            .filter_map(|s| s.get("label").and_then(Json::as_str))
            .collect();
        for want in [
            "fw.iterative",
            "fw.tiled.bdl",
            "fw.recursive.morton",
            "dijkstra.array",
            "dijkstra.list",
        ] {
            assert!(labels.contains(&want), "missing cache sim {want}: {labels:?}");
        }
        for sim in &loaded.cache_sims {
            let label = sim.get("label").and_then(Json::as_str).unwrap_or("");
            let levels = sim.get("levels").and_then(Json::as_arr).expect("levels");
            assert!(levels.len() >= 2, "{label} must report L1 and L2");
            if label.starts_with("dijkstra.") {
                assert!(sim.get("tlb").is_some_and(|t| *t != Json::Null), "{label} TLB");
            }
            if label == "fw.tiled.bdl" {
                let classes = sim.get("l1_classes").expect("classes");
                assert!(classes.get("compulsory").is_some(), "{label} three-Cs");
            }
        }

        // Metrics: span durations and algorithm counters survive the trip.
        let metrics = loaded.metrics.as_ref().expect("metrics");
        let spans = metrics.get("spans").and_then(Json::as_arr).expect("spans");
        let paths: Vec<&str> =
            spans.iter().filter_map(|s| s.get("path").and_then(Json::as_str)).collect();
        for want in ["fw.iterative", "fw.tiled", "fw.recursive", "dijkstra.array", "dijkstra.list"]
        {
            assert!(paths.contains(&want), "missing span {want}: {paths:?}");
        }
        let counters = metrics.get("counters").and_then(Json::as_obj).expect("counters");
        for want in ["fw.kernel_calls", "sssp.relaxations", "matching.augmenting_paths"] {
            assert!(counters.iter().any(|(k, _)| k == want), "missing counter {want}");
        }
    }

    #[test]
    fn profile_renders_span_tree_consistent_with_aggregates() {
        let path = tmp("repro_profile.json");
        run_str("repro", &["--quick", "--metrics", &path]).expect("repro");

        let rendered = run_str("profile", &[&path]).expect("profile");
        assert!(rendered.contains("profile fw.tiled.bdl (machine "), "{rendered}");
        assert!(rendered.contains("tile["), "tile scopes must appear: {rendered}");
        assert!(rendered.contains("init"), "dijkstra init scope must appear: {rendered}");
        assert!(rendered.contains("timeline ("), "sparkline line must appear: {rendered}");
        assert!(rendered.chars().any(|c| ('\u{2581}'..='\u{2588}').contains(&c)), "{rendered}");

        // Acceptance: for every profiled run, the per-span self stats
        // sum to that run's aggregate HierarchyStats exactly.
        let report = Report::load(Path::new(&path)).expect("report");
        assert!(!report.profiles.is_empty(), "repro must emit profiles");
        for section in &report.profiles {
            let profile = profile_from_json(section).expect("profile parses");
            let sim = report
                .cache_sims
                .iter()
                .find(|s| s.get("label").and_then(Json::as_str) == Some(profile.label.as_str()))
                .unwrap_or_else(|| panic!("no cache_sims section for {}", profile.label));
            let (_, _, aggregate) =
                cachegraph_sim::report::stats_from_json(sim).expect("stats parse");
            assert_eq!(
                profile.sum_self(),
                aggregate,
                "{} attribution must sum to the aggregate exactly",
                profile.label
            );
        }

        // --label narrows the output to one profile.
        let only = run_str("profile", &[&path, "--label", "dijkstra.array"]).expect("filtered");
        assert!(only.contains("dijkstra.array"), "{only}");
        assert!(!only.contains("fw.tiled.bdl"), "{only}");
        assert!(matches!(
            run_str("profile", &[&path, "--label", "nope"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn sampled_profile_renders_with_scaling_annotation() {
        // A sampled (v4, exact: false) profile renders through the same
        // span-tree path as an exact one, with one header annotation.
        let registry = Registry::new();
        let costs = generators::random_directed(32, 0.3, 100, 7).build_matrix().costs().to_vec();
        let opts = ProfilerOptions { sample_period_log2: 4, timeline_interval: 1024 };
        let sim = sim_tiled_bdl_profiled(&costs, 32, 8, profiles::simplescalar(), opts, &registry);
        let mut report = Report::new("sampled-test");
        report.push_profile(profile_to_json(&sim.profile));
        let path = tmp("sampled_profile.json");
        report.save(Path::new(&path)).expect("save");

        let rendered = run_str("profile", &[&path]).expect("profile");
        assert!(
            rendered.contains("sampled 1/16 — counters are scaled estimates"),
            "sampling annotation must appear: {rendered}"
        );
        assert!(rendered.contains("tile["), "span tree still renders: {rendered}");
    }

    #[test]
    fn compare_handles_v3_report_against_v4() {
        // A v3 document (no sampling fields in its profile) compares
        // cleanly against a current report; the profile spans pair up.
        let span = Json::obj().field("path", "fw.tiled").field(
            "self",
            Json::obj().field(
                "levels",
                Json::Arr(vec![Json::obj()
                    .field("level", 1u64)
                    .field("accesses", 1_000u64)
                    .field("misses", 100u64)]),
            ),
        );
        let profile = Json::obj()
            .field("label", "fw.tiled")
            .field("machine", "simplescalar")
            .field("interval", 0u64)
            .field("spans", Json::Arr(vec![span]))
            .field("timeline", Json::Arr(Vec::new()));
        let v3_doc = Json::obj()
            .field("schema_version", 3u64)
            .field("tool", "cachegraph")
            .field("report", "old")
            .field("profiles", Json::Arr(vec![profile.clone()]));
        let a_path = tmp("compare_v3.json");
        std::fs::write(&a_path, v3_doc.render()).expect("write v3");

        let mut v4 = Report::new("new");
        v4.push_profile(profile);
        let b_path = tmp("compare_v4.json");
        v4.save(Path::new(&b_path)).expect("save v4");

        let report = run_str("compare", &[&a_path, &b_path]).expect("compare v3 vs v4");
        assert!(
            report.contains("profiles[fw.tiled]/fw.tiled/L1.misses"),
            "v3 profile spans must pair with v4: {report}"
        );
        assert!(report.contains("0 of"), "identical spans flag nothing: {report}");
    }

    #[test]
    fn compare_flags_large_miss_delta() {
        // Two fabricated reports: +30% L1 misses must be flagged, a +2%
        // counter drift must not.
        let fabricate = |misses: u64, relaxations: u64| {
            let mut r = Report::new("fab");
            r.metrics = Some(
                Json::obj()
                    .field("counters", Json::obj().field("sssp.relaxations", relaxations))
                    .field("gauges", Json::obj())
                    .field("histograms", Json::obj())
                    .field("spans", Json::Arr(Vec::new())),
            );
            r.push_cache_sim(
                Json::obj()
                    .field("label", "fw.tiled")
                    .field("machine", "simplescalar")
                    .field(
                        "levels",
                        Json::Arr(vec![Json::obj()
                            .field("level", 1u64)
                            .field("accesses", 10_000u64)
                            .field("hits", 10_000 - misses)
                            .field("misses", misses)
                            .field("writebacks", 0u64)
                            .field("prefetches", 0u64)
                            .field("miss_rate", misses as f64 / 10_000.0)]),
                    )
                    .field("tlb", Json::Null)
                    .field("l1_classes", Json::Null)
                    .field("memory_lines_fetched", misses),
            );
            r
        };
        let a_path = tmp("compare_a.json");
        let b_path = tmp("compare_b.json");
        fabricate(1000, 5000).save(Path::new(&a_path)).expect("save a");
        fabricate(1300, 5100).save(Path::new(&b_path)).expect("save b");

        let report = run_str("compare", &[&a_path, &b_path]).expect("compare");
        assert!(
            report.contains("FLAG cache_sims[fw.tiled]/L1.misses"),
            "miss delta must be flagged: {report}"
        );
        assert!(
            !report.contains("FLAG counters/sssp.relaxations"),
            "2% counter drift must not be flagged: {report}"
        );
        assert!(report.lines().any(|l| l.contains("1000 -> 1300")), "{report}");
    }

    #[test]
    fn metrics_flag_on_algorithm_subcommands() {
        let path = tmp("metrics_algos.gr");
        run_str("gen", &["--kind", "random", "--n", "48", "--density", "0.2", "-o", &path])
            .expect("gen");

        let m1 = tmp("metrics_apsp.json");
        run_str("apsp", &["-i", &path, "--algo", "tiled", "--block", "8", "--metrics", &m1])
            .expect("apsp");
        let r = Report::load(Path::new(&m1)).expect("apsp report");
        let metrics = r.metrics.expect("metrics");
        let counters = metrics.get("counters").and_then(Json::as_obj).expect("counters");
        assert!(counters.iter().any(|(k, _)| k == "fw.kernel_calls"), "{counters:?}");

        let m2 = tmp("metrics_simulate.json");
        run_str("simulate", &["-i", &path, "--machine", "p3", "--metrics", &m2])
            .expect("simulate");
        let r = Report::load(Path::new(&m2)).expect("simulate report");
        assert_eq!(r.cache_sims.len(), 1);
        assert_eq!(
            r.cache_sims[0].get("label").and_then(Json::as_str),
            Some("dijkstra.array")
        );
    }

    #[test]
    fn trace_renders_waterfall_and_percentile_table() {
        // Real records from a real tracer (not hand-built JSON), so this
        // test breaks if the schema and the renderer drift apart.
        let tracer = cachegraph_obs::Tracer::new(TraceConfig::default());
        let mut report = Report::new("trace-test");
        for (op, spin) in [("path", 50u64), ("path", 400), ("reach", 120)] {
            let mut tb = tracer.begin(op);
            tb.mark("admission");
            tb.mark("queue");
            std::thread::sleep(std::time::Duration::from_micros(spin));
            tb.mark("compute");
            tb.mark("serialize");
            tb.mark("write");
            report.push_trace(tb.finish("OK").expect("live builder").to_json());
        }
        let path = tmp("trace_render.json");
        report.save(Path::new(&path)).expect("save");

        let rendered = run_str("trace", &[&path]).expect("trace");
        assert!(rendered.contains("traces from 'trace-test' (3 records)"), "{rendered}");
        assert!(rendered.contains("waterfall"), "{rendered}");
        assert!(
            rendered.chars().any(|c| ('\u{2581}'..='\u{2588}').contains(&c)),
            "block-character waterfall must appear: {rendered}"
        );
        assert!(rendered.contains("segment percentiles over 3 traces"), "{rendered}");
        for segment in cachegraph_obs::SEGMENTS {
            assert!(rendered.contains(segment), "table must list {segment}: {rendered}");
        }
        assert!(rendered.contains("wall"), "{rendered}");

        // --op narrows; an op with no traces is an error.
        let only = run_str("trace", &[&path, "--op", "reach"]).expect("filtered");
        assert!(only.contains("(1 records)"), "{only}");
        assert!(matches!(
            run_str("trace", &[&path, "--op", "match"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn exact_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_rank(&sorted, 50), 50);
        assert_eq!(exact_rank(&sorted, 90), 90);
        assert_eq!(exact_rank(&sorted, 99), 99);
        assert_eq!(exact_rank(&[7], 99), 7);
        assert_eq!(exact_rank(&[], 50), 0);
    }

    #[test]
    fn waterfall_cells_partition_the_bar() {
        let t = TraceRecord {
            trace_id: 1,
            seq: 0,
            op: "path".into(),
            outcome: "OK".into(),
            start_ns: 0,
            wall_ns: 100,
            segments: vec![
                ("admission".into(), 25),
                ("queue".into(), 25),
                ("compute".into(), 40),
                ("write".into(), 10),
            ],
            tags: Vec::new(),
        };
        let bar = trace_waterfall(&t, 20);
        assert_eq!(bar.chars().count(), 20, "cells cover the full width: {bar}");
        assert_eq!(bar.chars().filter(|&c| c == segment_block(0)).count(), 5, "{bar}");
        assert_eq!(bar.chars().filter(|&c| c == segment_block(3)).count(), 8, "{bar}");
    }

    #[test]
    fn error_paths() {
        assert!(matches!(run_str("nope", &[]), Err(CliError::UnknownCommand(_))));
        assert!(matches!(run_str("sssp", &[]), Err(CliError::Args(_))));
        assert!(matches!(
            run_str("sssp", &["loose"]),
            Err(CliError::Args(ArgsError::UnexpectedPositional(_)))
        ));
        assert!(matches!(run_str("compare", &["only-one.json"]), Err(CliError::Invalid(_))));
        assert!(matches!(
            run_str("gen", &["--kind", "weird", "--n", "4", "-o", "/tmp/x.gr"]),
            Err(CliError::Invalid(_))
        ));
        let path = tmp("err.gr");
        run_str("gen", &["--kind", "random", "--n", "8", "-o", &path]).expect("gen");
        assert!(matches!(
            run_str("sssp", &["-i", &path, "--source", "99"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            run_str("sssp", &["-i", &path, "--algo", "quantum"]),
            Err(CliError::Invalid(_))
        ));
    }
}
