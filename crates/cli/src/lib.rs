//! Command implementations behind the `cachegraph` binary.
//!
//! ```text
//! cachegraph gen    --kind random --n 1024 --density 0.1 --seed 7 -o g.gr
//! cachegraph sssp   -i g.gr --source 0 [--rep array|list|matrix] [--algo binary|dary|lazy|dense]
//! cachegraph apsp   -i g.gr [--algo recursive|tiled|iterative] [--block B]
//! cachegraph mst    -i g.gr [--root 0]
//! cachegraph match  -i g.gr [--parts 8]
//! cachegraph closure -i g.gr
//! cachegraph simulate -i g.gr --machine simplescalar|p3|sparc|alpha|mips [--rep array|list]
//! cachegraph repro [--quick|--full] [--metrics out.json]
//! cachegraph compare a.json b.json [--threshold 0.1]
//! cachegraph profile a.json [--label fw.tiled.bdl]
//! cachegraph trace a.json [--op path] [--limit 32]
//! ```
//!
//! Graphs are exchanged in the DIMACS `sp` format
//! (`cachegraph_graph::io`). Every command prints a short plain-text
//! report; exit status is non-zero on any error. The `sssp`, `apsp`,
//! `match`, `simulate`, and `repro` commands additionally accept
//! `--metrics FILE` to write a machine-readable run report
//! (`cachegraph_obs::Report`, see EXPERIMENTS.md for the schema);
//! `compare` diffs two such reports, `profile` renders the span-scoped
//! cache attribution sections of one, and `trace` renders the
//! request-trace section a `serve` run leaves behind.

mod args;
mod commands;

pub use args::{Args, ArgsError};
pub use commands::{run, CliError};

/// Usage text for the binary.
pub const USAGE: &str = "\
usage: cachegraph <command> [options]

commands:
  gen       generate a graph        --kind random|undirected|bipartite|grid
                                    --n N [--density D] [--seed S] [--max-weight W]
                                    [--rows R --cols C]  -o FILE
  sssp      shortest paths          -i FILE [--source V] [--rep array|list|matrix]
                                    [--algo binary|dary|lazy|sequence|dense]
  apsp      all-pairs distances     -i FILE [--algo recursive|tiled|iterative]
                                    [--block B]
  mst       minimum spanning tree   -i FILE [--root V]
  match     bipartite matching      -i FILE [--parts P] (left side = first half)
  closure   transitive closure      -i FILE
  simulate  cache simulation        -i FILE [--machine simplescalar|p3|sparc|alpha|mips]
                                    [--rep array|list] [--source V]
  repro     supervised repro run    [--quick|--full] [--metrics FILE]
                                    [--journal FILE] [--resume FILE]
                                    [--timeout-secs N] [--strict]
                                    [--fault-plan panic:ID,hang:ID,kill:ID]
  compare   diff two metrics files  A.json B.json [--threshold T]
  profile   render cache profiles   A.json [--label L]
  trace     render request traces   A.json [--op OP] [--limit N]
  serve     crash-only query daemon [--port P] [--port-file FILE]
                                    [--gen-n N --density D --seed S]
                                    [--workers W --queue-high H --queue-low L]
                                    [--deadline-ms MS] [--drain-ms MS] [--hang-ms MS]
                                    [--fault-plan panic:OP,hang:OP,kill:OP]
                                    [--metrics FILE] [--trace-log FILE] [--no-trace]
                                    [--flight-len N] [--trace-sample-log2 K]
                                    [--trace-seed S]
  query     one request             --port P | --port-file FILE
                                    [--op path|reach|match|metrics|health|stats|trace|shutdown]
                                    [--src V --dst V] [--deadline-ms MS]
  loadgen   drive a running daemon  --port P | --port-file FILE
                                    [--clients C --requests R --seed S]
                                    [--max-retries N --backoff-ms MS --think-ms MS]
                                    [--deadline-ms MS] [--metrics FILE]

sssp, apsp, match, simulate, and repro accept --metrics FILE to write a
machine-readable run report (spans, counters, cache statistics).

repro's simulations run with the span-scoped cache attribution profiler
attached; profile renders the resulting span trees (self/total misses,
miss rate, dominant three-Cs class per scope) and each run's sampled
miss-rate timeline as a sparkline.

repro runs each experiment (fw, dijkstra, matching) supervised: panics
and --timeout-secs overruns become structured outcomes in the report,
--journal streams one checkpoint record per experiment, and --resume
skips experiments a previous journal already completed.

serve answers length-prefixed JSON frames on loopback with per-request
deadlines, BUSY load shedding past --queue-high, per-request panic
isolation, and graceful drain on the shutdown op; --fault-plan arms
one-shot chaos faults keyed by op name. Every admitted request is
traced across threads (admission/queue/cache/compute/serialize/write
segments summing to wall latency): the in-band stats op answers a live
load snapshot, the trace op drains the recent flight-recorder ring,
--trace-log streams sampled trace records as JSONL, and the final
--metrics report carries the flight recorder (schema v5) for the trace
subcommand to render as per-request waterfalls with per-segment
p50/p90/p99. query exits 0 only on an OK
response; loadgen exits 0 only when every request resolved (retrying
BUSY, DEADLINE_EXCEEDED, INTERNAL, and torn frames with exponential
backoff plus jitter) and reports p50/p90/p99 from pow2 histograms, per
outcome class (ok / shed / deadline) and overall.

exit codes: 0 success; 1 runtime failure (bad input file, corrupt
report, repro run with no completed experiment, any non-completion
under --strict, a query answered with a non-OK status, a loadgen run
with unresolved requests); 2 usage error (unknown command, flag, or
argument).
";
