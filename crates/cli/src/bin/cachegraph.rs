//! The `cachegraph` command-line tool. See [`cachegraph_cli::USAGE`].

use cachegraph_cli::{run, Args, CliError, USAGE};

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{USAGE}");
        return;
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = run(&command, args, &mut stdout) {
        // One-line diagnostic; exit 2 for usage errors, 1 for runtime
        // failures (the contract documented in USAGE).
        eprintln!("error: {e}");
        let code = match e {
            CliError::Args(_) | CliError::UnknownCommand(_) => 2,
            _ => 1,
        };
        std::process::exit(code);
    }
}
