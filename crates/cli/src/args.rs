//! A small `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;
use std::fmt;

/// Argument parsing errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` had no value.
    MissingValue(String),
    /// A positional argument appeared where none is accepted.
    UnexpectedPositional(String),
    /// A required flag is absent.
    MissingFlag(String),
    /// A value failed to parse.
    BadValue { flag: String, value: String, expected: &'static str },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgsError::UnexpectedPositional(arg) => write!(f, "unexpected argument '{arg}'"),
            ArgsError::MissingFlag(flag) => write!(f, "required flag {flag} is missing"),
            ArgsError::BadValue { flag, value, expected } => {
                write!(f, "flag {flag}: '{value}' is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

/// Flags that take no value; their presence simply sets them to `true`.
const SWITCHES: &[&str] = &["quick", "full", "strict", "no-trace"];

/// Parsed `--flag value` pairs (flags keyed without the dashes; `-i` and
/// `-o` are aliases for `--input` / `--output`) plus any positional
/// arguments in order. Commands that take no positionals reject them at
/// dispatch time.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parse everything after the subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut values = HashMap::new();
        let mut positionals = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let key = match arg.as_str() {
                "-i" => "input".to_string(),
                "-o" => "output".to_string(),
                s if s.starts_with("--") => s[2..].to_string(),
                other => {
                    positionals.push(other.to_string());
                    continue;
                }
            };
            if SWITCHES.contains(&key.as_str()) {
                values.insert(key, "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| ArgsError::MissingValue(format!("--{key}")))?;
            values.insert(key, value);
        }
        Ok(Self { values, positionals })
    }

    /// Positional (non-flag) arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Optional string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// True when the value-less switch `--flag` was given.
    pub fn switch(&self, flag: &str) -> bool {
        self.values.contains_key(flag)
    }

    /// Required string flag.
    pub fn require(&self, flag: &str) -> Result<&str, ArgsError> {
        self.values
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| ArgsError::MissingFlag(format!("--{flag}")))
    }

    /// Optional string flag with a default.
    pub fn get_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.values.get(flag).map(String::as_str).unwrap_or(default)
    }

    /// Parse a flag into `T`, with a default when absent.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: format!("--{flag}"),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// Required parsed flag.
    pub fn parse_required<T: std::str::FromStr>(
        &self,
        flag: &str,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        let v = self.require(flag)?;
        v.parse().map_err(|_| ArgsError::BadValue {
            flag: format!("--{flag}"),
            value: v.to_string(),
            expected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_aliases() {
        let a = args(&["--n", "100", "-i", "in.gr", "-o", "out.gr"]).expect("parse");
        assert_eq!(a.require("n").unwrap(), "100");
        assert_eq!(a.require("input").unwrap(), "in.gr");
        assert_eq!(a.require("output").unwrap(), "out.gr");
    }

    #[test]
    fn typed_access() {
        let a = args(&["--n", "64", "--density", "0.25"]).expect("parse");
        assert_eq!(a.parse_required::<usize>("n", "integer").unwrap(), 64);
        assert_eq!(a.parse_or::<f64>("density", 0.1, "number").unwrap(), 0.25);
        assert_eq!(a.parse_or::<u64>("seed", 42, "integer").unwrap(), 42);
    }

    #[test]
    fn positionals_and_switches() {
        let a = args(&["a.json", "--quick", "b.json", "--threshold", "0.2"]).expect("parse");
        assert_eq!(a.positionals(), &["a.json".to_string(), "b.json".to_string()]);
        assert!(a.switch("quick"));
        assert!(!a.switch("full"));
        assert_eq!(a.get("threshold"), Some("0.2"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn errors() {
        assert_eq!(
            args(&["--n"]).unwrap_err(),
            ArgsError::MissingValue("--n".into())
        );
        let a = args(&["--n", "abc"]).expect("parse");
        assert!(matches!(
            a.parse_required::<usize>("n", "integer"),
            Err(ArgsError::BadValue { .. })
        ));
        assert!(matches!(a.require("missing"), Err(ArgsError::MissingFlag(_))));
    }
}
