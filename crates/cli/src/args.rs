//! A small `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;
use std::fmt;

/// Argument parsing errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` had no value.
    MissingValue(String),
    /// A positional argument appeared where none is accepted.
    UnexpectedPositional(String),
    /// A required flag is absent.
    MissingFlag(String),
    /// A value failed to parse.
    BadValue { flag: String, value: String, expected: &'static str },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgsError::UnexpectedPositional(arg) => write!(f, "unexpected argument '{arg}'"),
            ArgsError::MissingFlag(flag) => write!(f, "required flag {flag} is missing"),
            ArgsError::BadValue { flag, value, expected } => {
                write!(f, "flag {flag}: '{value}' is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

/// Parsed `--flag value` pairs (flags keyed without the dashes; `-i` and
/// `-o` are aliases for `--input` / `--output`).
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse everything after the subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut values = HashMap::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let key = match arg.as_str() {
                "-i" => "input".to_string(),
                "-o" => "output".to_string(),
                s if s.starts_with("--") => s[2..].to_string(),
                other => return Err(ArgsError::UnexpectedPositional(other.to_string())),
            };
            let value = it.next().ok_or_else(|| ArgsError::MissingValue(format!("--{key}")))?;
            values.insert(key, value);
        }
        Ok(Self { values })
    }

    /// Required string flag.
    pub fn require(&self, flag: &str) -> Result<&str, ArgsError> {
        self.values
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| ArgsError::MissingFlag(format!("--{flag}")))
    }

    /// Optional string flag with a default.
    pub fn get_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.values.get(flag).map(String::as_str).unwrap_or(default)
    }

    /// Parse a flag into `T`, with a default when absent.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: format!("--{flag}"),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// Required parsed flag.
    pub fn parse_required<T: std::str::FromStr>(
        &self,
        flag: &str,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        let v = self.require(flag)?;
        v.parse().map_err(|_| ArgsError::BadValue {
            flag: format!("--{flag}"),
            value: v.to_string(),
            expected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_aliases() {
        let a = args(&["--n", "100", "-i", "in.gr", "-o", "out.gr"]).expect("parse");
        assert_eq!(a.require("n").unwrap(), "100");
        assert_eq!(a.require("input").unwrap(), "in.gr");
        assert_eq!(a.require("output").unwrap(), "out.gr");
    }

    #[test]
    fn typed_access() {
        let a = args(&["--n", "64", "--density", "0.25"]).expect("parse");
        assert_eq!(a.parse_required::<usize>("n", "integer").unwrap(), 64);
        assert_eq!(a.parse_or::<f64>("density", 0.1, "number").unwrap(), 0.25);
        assert_eq!(a.parse_or::<u64>("seed", 42, "integer").unwrap(), 42);
    }

    #[test]
    fn errors() {
        assert_eq!(
            args(&["--n"]).unwrap_err(),
            ArgsError::MissingValue("--n".into())
        );
        assert_eq!(
            args(&["loose"]).unwrap_err(),
            ArgsError::UnexpectedPositional("loose".into())
        );
        let a = args(&["--n", "abc"]).expect("parse");
        assert!(matches!(
            a.parse_required::<usize>("n", "integer"),
            Err(ArgsError::BadValue { .. })
        ));
        assert!(matches!(a.require("missing"), Err(ArgsError::MissingFlag(_))));
    }
}
