//! Deadline propagation into the parallel TaskGraph drivers: a `sssp`
//! query (parallel delta-stepping) on a 2000-vertex graph must come
//! back `DEADLINE_EXCEEDED` — never hang — and the cancellation hook
//! must be observed by *every* worker thread the driver spawns, not
//! just the coordinator.

use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use cachegraph_obs::{Json, Registry};
use cachegraph_serve::{
    request_once, start, EngineConfig, FaultPlan, Op, QueryEngine, QueryError, Request, Response,
    ServerConfig,
};

const THREADS: usize = 4;

/// A 2000-vertex engine: above the APSP threshold, so `sssp` really
/// runs the parallel delta-stepping driver at query time. One landmark
/// keeps startup cheap; it plays no part in the sssp path.
fn big_engine_config() -> EngineConfig {
    EngineConfig {
        n: 2_000,
        density: 0.005,
        seed: 9,
        landmarks: 1,
        threads: THREADS,
        delta: 8,
        ..EngineConfig::default()
    }
}

#[test]
fn every_worker_observes_the_cancel_hook() {
    let engine = QueryEngine::build(&big_engine_config());
    // The hook records which thread polled it and fires only once
    // strictly more threads than the coordinator alone have been seen:
    // the driver cannot produce this Err without every spawned worker
    // actually polling the shared hook.
    let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    let cancel = || {
        let mut ids = seen.lock().expect("no poisoning: closure never panics");
        ids.insert(std::thread::current().id());
        ids.len() > THREADS
    };
    let started = Instant::now();
    let r = engine.sssp(0, &cancel);
    assert_eq!(r, Err(QueryError::Cancelled), "hook fired, driver must bail");
    let ids = seen.lock().expect("no poisoning").len();
    assert!(
        ids > THREADS,
        "cancel hook seen by {ids} threads; need coordinator + {THREADS} workers"
    );
    // "Never hangs": bailing out is prompt, not after finishing the
    // whole tree. Generous bound — this is an anti-hang tripwire, not
    // a performance assertion.
    assert!(started.elapsed() < Duration::from_secs(30), "cancel did not bail promptly");
}

#[test]
fn already_expired_hook_cancels_before_any_work_sticks() {
    let engine = QueryEngine::build(&big_engine_config());
    assert_eq!(engine.sssp(0, &|| true), Err(QueryError::Cancelled));
    // The engine is still healthy afterwards: the cancelled run left
    // nothing behind.
    let ok = engine.sssp(0, &|| false).expect("uncancelled run completes");
    assert!(ok.get("reached").and_then(Json::as_u64).unwrap_or(0) >= 1, "source reaches itself");
}

#[test]
fn sssp_deadline_exceeded_end_to_end_never_hangs() {
    // hang:sssp stalls the worker past the 50 ms deadline before the
    // driver starts, so the outcome is deterministic in any build
    // profile: the compute-boundary deadline check fires and the
    // parallel driver is never entered with time left.
    let cfg = ServerConfig {
        engine: big_engine_config(),
        workers: 2,
        hang_ms: 200,
        ..ServerConfig::default()
    };
    let handle = start(cfg, FaultPlan::parse("hang:sssp").expect("parses"), Registry::new())
        .expect("binds");
    let started = Instant::now();
    let req = Request::sssp(0).with_deadline_ms(50);
    // The 10 s client timeout is the hang tripwire: a wedged worker
    // would surface here as a WireError, failing the expect.
    let resp = request_once(handle.port(), &req, 10_000).expect("answered, not hung");
    assert_eq!(resp.status(), "DEADLINE_EXCEEDED", "got {resp:?}");
    assert!(started.elapsed() < Duration::from_secs(10), "deadline reply was not prompt");

    // With the fault spent and a sane deadline, the same query now
    // completes through the parallel driver and is cached.
    let ok = request_once(handle.port(), &Request::sssp(0).with_deadline_ms(30_000), 30_000)
        .expect("responds");
    let Response::Ok(data) = ok else { panic!("expected OK, got {ok:?}") };
    assert!(data.get("reached").and_then(Json::as_u64).unwrap_or(0) >= 1);
    assert_eq!(data.get("threads").and_then(Json::as_u64), Some(THREADS as u64));

    // The per-op demand counter saw both requests.
    let stats = request_once(handle.port(), &Request::plain(Op::Stats), 5_000).expect("stats");
    let Response::Ok(stats) = stats else { panic!("expected OK stats, got {stats:?}") };
    assert_eq!(stats.get("op_sssp").and_then(Json::as_u64), Some(2));

    let resp = request_once(handle.port(), &Request::plain(Op::Shutdown), 5_000).expect("drains");
    assert_eq!(resp.status(), "OK");
    handle.join();
}
