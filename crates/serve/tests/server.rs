//! In-process end-to-end tests for the daemon: correctness against
//! direct solver calls, deadline propagation, watermark shedding,
//! panic isolation, torn-frame kills, and graceful drain.

use std::time::{Duration, Instant};

use cachegraph_graph::generators;
use cachegraph_obs::{Json, Registry};
use cachegraph_serve::{
    report_from_response, request_once, start, EngineConfig, FaultPlan, Op, Request, Response,
    ServerConfig, ServerHandle, WireError,
};
use cachegraph_sssp::dijkstra_binary_heap;

fn small_config() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig { n: 48, density: 0.1, seed: 5, ..EngineConfig::default() },
        workers: 2,
        hang_ms: 150,
        default_deadline_ms: 500,
        ..ServerConfig::default()
    }
}

fn shutdown_and_join(handle: ServerHandle) -> cachegraph_obs::Snapshot {
    let resp = request_once(handle.port(), &Request::plain(Op::Shutdown), 2_000)
        .expect("shutdown round-trips");
    assert_eq!(resp.status(), "OK");
    handle.join()
}

#[test]
fn answers_match_direct_dijkstra() {
    let cfg = small_config();
    let g = generators::random_directed(48, 0.1, 100, 5).build_array();
    let handle = start(cfg, FaultPlan::none(), Registry::new()).expect("binds");
    let truth = dijkstra_binary_heap(&g, 7);
    for dst in [0u32, 11, 30, 47] {
        let resp = request_once(handle.port(), &Request::path(7, dst), 2_000).expect("responds");
        let Response::Ok(data) = resp else { unreachable!("expected OK, got {resp:?}") };
        let want = truth.dist[dst as usize];
        if want == cachegraph_graph::INF {
            assert_eq!(data.get("dist"), Some(&Json::Null), "7 -> {dst}");
            assert_eq!(data.get("reachable"), Some(&Json::Bool(false)));
        } else {
            assert_eq!(data.get("dist").and_then(Json::as_u64), Some(u64::from(want)), "7 -> {dst}");
        }
    }
    shutdown_and_join(handle);
}

#[test]
fn bad_requests_get_structured_answers_and_server_survives() {
    let handle = start(small_config(), FaultPlan::none(), Registry::new()).expect("binds");
    // Out-of-range vertex.
    let resp = request_once(handle.port(), &Request::path(0, 9_999), 2_000).expect("responds");
    assert_eq!(resp.status(), "BAD_REQUEST");
    // Raw junk frame: not even a request shape.
    let mut stream = std::net::TcpStream::connect(("127.0.0.1", handle.port())).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
    cachegraph_serve::write_frame(&mut stream, &Json::obj().field("nonsense", true))
        .expect("writes");
    let answer = cachegraph_serve::read_frame(&mut stream).expect("answered");
    assert_eq!(
        Response::from_json(&answer).expect("parses").status(),
        "BAD_REQUEST",
        "junk must be answered, not dropped"
    );
    // The server still works afterwards.
    let ok = request_once(handle.port(), &Request::path(0, 1), 2_000).expect("responds");
    assert_eq!(ok.status(), "OK");
    shutdown_and_join(handle);
}

#[test]
fn tiny_deadline_returns_deadline_exceeded_not_a_hang() {
    // A graph big enough that a cold path query crosses the Dijkstra
    // cancellation interval; deadline 1 ms is unmeetable on first touch.
    let cfg = ServerConfig {
        engine: EngineConfig { n: 2_000, density: 0.01, seed: 3, ..EngineConfig::default() },
        workers: 1,
        ..ServerConfig::default()
    };
    let handle = start(cfg, FaultPlan::none(), Registry::new()).expect("binds");
    let started = Instant::now();
    let resp = request_once(handle.port(), &Request::path(0, 1_999).with_deadline_ms(1), 3_000)
        .expect("responds");
    assert!(
        matches!(resp, Response::DeadlineExceeded | Response::Ok(_)),
        "got {resp:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(2), "deadline did not bound the wait");
    // Without the crushing deadline the same query succeeds.
    let resp = request_once(handle.port(), &Request::path(0, 1_999).with_deadline_ms(5_000), 6_000)
        .expect("responds");
    assert_eq!(resp.status(), "OK");
    shutdown_and_join(handle);
}

#[test]
fn panic_fault_is_isolated_and_clears() {
    let plan = FaultPlan::parse("panic:path").expect("parses");
    let reg = Registry::new();
    let handle = start(small_config(), plan, reg).expect("binds");
    let first = request_once(handle.port(), &Request::path(1, 2), 2_000).expect("responds");
    assert_eq!(first.status(), "INTERNAL", "armed fault must fire");
    // One-shot: the identical retry succeeds, served by a live worker.
    let second = request_once(handle.port(), &Request::path(1, 2), 2_000).expect("responds");
    assert_eq!(second.status(), "OK");
    let snap = shutdown_and_join(handle);
    assert_eq!(snap.counters.get("serve.panics"), Some(&1));
}

#[test]
fn kill_fault_tears_the_frame_and_clears() {
    let plan = FaultPlan::parse("kill:reach").expect("parses");
    let handle = start(small_config(), plan, Registry::new()).expect("binds");
    let err = request_once(handle.port(), &Request::reach(0, 3), 2_000)
        .expect_err("torn frame must not parse as a response");
    assert!(err.is_retryable(), "torn frames are retryable, got {err:?}");
    assert!(matches!(err, WireError::Torn { .. } | WireError::Io(_)), "got {err:?}");
    let retry = request_once(handle.port(), &Request::reach(0, 3), 2_000).expect("responds");
    assert_eq!(retry.status(), "OK", "fault cleared after firing once");
    shutdown_and_join(handle);
}

#[test]
fn hang_fault_converts_to_deadline_exceeded() {
    let mut cfg = small_config();
    cfg.hang_ms = 300;
    cfg.default_deadline_ms = 60;
    let plan = FaultPlan::parse("hang:path").expect("parses");
    let handle = start(cfg, plan, Registry::new()).expect("binds");
    let resp = request_once(handle.port(), &Request::path(2, 3), 3_000).expect("responds");
    assert_eq!(resp.status(), "DEADLINE_EXCEEDED", "the stalled worker must notice the deadline");
    let retry = request_once(handle.port(), &Request::path(2, 3), 3_000).expect("responds");
    assert_eq!(retry.status(), "OK");
    shutdown_and_join(handle);
}

#[test]
fn overload_sheds_busy_and_recovers() {
    // 1 worker stalled by a hang fault + a queue of 2: concurrent
    // clients must see BUSY, and the server must answer again after.
    let cfg = ServerConfig {
        engine: EngineConfig { n: 48, density: 0.1, seed: 5, ..EngineConfig::default() },
        workers: 1,
        queue_high: 2,
        queue_low: 1,
        hang_ms: 400,
        default_deadline_ms: 2_000,
        ..ServerConfig::default()
    };
    let plan = FaultPlan::parse("hang:path").expect("parses");
    let reg = Registry::new();
    let handle = start(cfg, plan, reg).expect("binds");
    let port = handle.port();
    // First request arms the stall; fire it and, while the worker
    // sleeps, flood the queue.
    let mut statuses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12u32)
            .map(|i| {
                scope.spawn(move || {
                    // Stagger slightly so the hang request lands first.
                    std::thread::sleep(Duration::from_millis(u64::from(i) * 5));
                    match request_once(port, &Request::path(i % 48, (i + 1) % 48), 4_000) {
                        Ok(r) => r.status().to_string(),
                        Err(e) => format!("wire:{e}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    statuses.sort();
    assert!(
        statuses.iter().any(|s| s == "BUSY"),
        "queue_high=2 with a stalled worker must shed: {statuses:?}"
    );
    // After the burst the fault has fired and cleared: plain answers.
    let resp = request_once(port, &Request::path(4, 5), 3_000).expect("responds");
    assert_eq!(resp.status(), "OK");
    let snap = shutdown_and_join(handle);
    assert!(snap.counters.get("serve.shed").copied().unwrap_or(0) > 0);
}

#[test]
fn health_and_metrics_answer_inline_and_parse_as_v4() {
    let handle = start(small_config(), FaultPlan::none(), Registry::new()).expect("binds");
    let health = request_once(handle.port(), &Request::plain(Op::Health), 2_000).expect("responds");
    let Response::Ok(data) = &health else { unreachable!("health not OK: {health:?}") };
    assert_eq!(data.get("status").and_then(Json::as_str), Some("up"));
    assert_eq!(data.get("n").and_then(Json::as_u64), Some(48));
    // Generate some traffic so the metrics have content.
    for i in 0..5u32 {
        let _ = request_once(handle.port(), &Request::path(i, i + 1), 2_000).expect("responds");
    }
    let metrics = request_once(handle.port(), &Request::plain(Op::Metrics), 2_000).expect("responds");
    let report = report_from_response(&metrics).expect("metrics payload is a schema-v4 report");
    let metrics_json = report.metrics.as_ref().expect("metrics section present");
    assert_eq!(
        metrics_json.get("counters").and_then(|c| c.get("serve.ok")).and_then(Json::as_u64),
        Some(5)
    );
    shutdown_and_join(handle);
}

#[test]
fn graceful_shutdown_drains_and_rejects_new_work() {
    let handle = start(small_config(), FaultPlan::none(), Registry::new()).expect("binds");
    let port = handle.port();
    let _ = request_once(port, &Request::path(0, 1), 2_000).expect("responds");
    let drained_by = Instant::now();
    let snap = shutdown_and_join(handle);
    assert!(
        drained_by.elapsed() < Duration::from_secs(5),
        "drain must finish within the drain deadline"
    );
    assert!(snap.counters.get("serve.ok").copied().unwrap_or(0) >= 1);
    // The listener is gone (or answers SHUTTING_DOWN if a race keeps it
    // alive one accept longer): either way, no new work is served.
    match request_once(port, &Request::path(0, 1), 500) {
        Err(_) => {}
        Ok(resp) => assert_eq!(resp.status(), "SHUTTING_DOWN"),
    }
}

#[test]
fn result_cache_serves_repeats_and_reports_shard_stats() {
    let reg = Registry::new();
    let handle = start(small_config(), FaultPlan::none(), reg).expect("binds");
    for _ in 0..3 {
        let resp = request_once(handle.port(), &Request::path(9, 10), 2_000).expect("responds");
        assert_eq!(resp.status(), "OK");
    }
    let snap = shutdown_and_join(handle);
    let hits: i64 = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("serve.cache.shard") && k.ends_with(".hits"))
        .map(|(_, &v)| v)
        .sum();
    assert!(hits >= 2, "two repeat queries must hit the result cache (hits = {hits})");
}
