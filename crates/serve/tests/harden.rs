//! Wire-codec hardening: seeded corruption (truncation, bit flips,
//! insertions) swept through the frame decoder and the request parser.
//! Every mutant must come back as a structured [`WireError`] or a
//! valid decode — never a panic, never an allocation driven by a
//! corrupted length prefix, never a hang. Failing cases reproduce from
//! the printed seed alone.

use cachegraph_rng::corrupt::Corruptor;
use cachegraph_serve::{decode_frame, read_frame, Request, Response, WireError, MAX_FRAME};

fn pristine_frames() -> Vec<Vec<u8>> {
    vec![
        cachegraph_serve::encode_frame(&Request::path(3, 9).with_deadline_ms(250).to_json()),
        cachegraph_serve::encode_frame(&Request::reach(0, 1).to_json()),
        cachegraph_serve::encode_frame(&Request::plain(cachegraph_serve::Op::Match).to_json()),
        cachegraph_serve::encode_frame(&Response::Busy { retry_after_ms: 7 }.to_json()),
        cachegraph_serve::encode_frame(
            &Response::Ok(cachegraph_obs::Json::obj().field("dist", 12u64)).to_json(),
        ),
    ]
}

#[test]
fn seeded_corruption_never_panics_the_decoder() {
    for (which, pristine) in pristine_frames().into_iter().enumerate() {
        assert!(decode_frame(&pristine).is_ok(), "pristine frame {which} must decode");
        for seed in 0..400u64 {
            let mut bytes = pristine.clone();
            let mutations =
                Corruptor::new(seed ^ (which as u64) << 32).mutate_n(&mut bytes, 1 + (seed % 3) as usize);
            match decode_frame(&bytes) {
                Ok((json, used)) => {
                    // A surviving frame must stay in-bounds, and its
                    // request parse must itself be panic-free.
                    assert!(used <= bytes.len(), "frame {which} seed {seed}: {mutations:?}");
                    let _ = Request::from_json(&json);
                    let _ = Response::from_json(&json);
                }
                Err(e) => {
                    // Structured errors only; Display must not panic.
                    let _ = e.to_string();
                    assert!(
                        matches!(
                            e,
                            WireError::ShortPrefix { .. }
                                | WireError::FrameTooLarge { .. }
                                | WireError::Torn { .. }
                                | WireError::BadUtf8
                                | WireError::BadJson(_)
                        ),
                        "frame {which} seed {seed}: unexpected {e:?} after {mutations:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_truncation_point_is_classified() {
    let frame = cachegraph_serve::encode_frame(&Request::path(1, 2).to_json());
    for cut in 0..frame.len() {
        let slice = &frame[..cut];
        match decode_frame(slice) {
            Err(WireError::ShortPrefix { got }) => assert!(cut < 4 && got == cut, "cut {cut}"),
            Err(WireError::Torn { got, want }) => {
                assert!(cut >= 4, "cut {cut}");
                assert_eq!(got, cut - 4, "cut {cut}");
                assert_eq!(want, frame.len() - 4, "cut {cut}");
            }
            other => unreachable!("cut {cut}: {other:?}"),
        }
    }
}

#[test]
fn hostile_length_prefixes_never_allocate() {
    // Prefix claims from just-over-cap up to u32::MAX: the decoder must
    // reject on the prefix alone, before touching (or allocating) the
    // payload.
    for claimed in [MAX_FRAME as u32 + 1, 1 << 24, u32::MAX / 2, u32::MAX] {
        let mut bytes = claimed.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"{}");
        assert!(
            matches!(decode_frame(&bytes), Err(WireError::FrameTooLarge { .. })),
            "claimed {claimed}"
        );
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(
            matches!(read_frame(&mut cursor), Err(WireError::FrameTooLarge { .. })),
            "claimed {claimed} (stream)"
        );
    }
    // Exactly at the cap with a short body: torn, not oversized.
    let mut at_cap = (MAX_FRAME as u32).to_be_bytes().to_vec();
    at_cap.extend_from_slice(b"x");
    assert!(matches!(decode_frame(&at_cap), Err(WireError::Torn { .. })));
}

#[test]
fn corrupted_request_payloads_become_bad_shape_not_panics() {
    // Sweep bit flips through the JSON payload (prefix kept intact, so
    // the decoder always reaches the shape-validation layer).
    let pristine = Request::path(5, 6).with_deadline_ms(100).to_json().render().into_bytes();
    for seed in 0..300u64 {
        let mut body = pristine.clone();
        let mut corruptor = Corruptor::new(seed);
        let mutations = corruptor.mutate_n(&mut body, 1 + (seed % 2) as usize);
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&body);
        match decode_frame(&frame) {
            Ok((json, _)) => {
                // Shape errors are the structured outcome; panics fail
                // the test with the seed printed.
                if let Err(e) = Request::from_json(&json) {
                    assert!(
                        matches!(e, WireError::BadShape(_)),
                        "seed {seed}: {e:?} after {mutations:?}"
                    );
                }
            }
            Err(e) => {
                assert!(
                    matches!(e, WireError::BadUtf8 | WireError::BadJson(_)),
                    "seed {seed}: {e:?} after {mutations:?}"
                );
            }
        }
    }
}
