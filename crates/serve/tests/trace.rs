//! In-process tests for request-scoped tracing: the segment-sum
//! invariant (the PR's acceptance criterion), trace capture for shed
//! and expired requests, the in-band `stats` / `trace` ops, and the
//! flight-recorder flush into the final v5 report.

use std::time::Duration;

use cachegraph_obs::{Json, Registry, TraceRecord, SCHEMA_VERSION, SEGMENTS};
use cachegraph_serve::{
    request_once, start, EngineConfig, FaultPlan, Op, Request, Response, ServerConfig,
    ServerHandle,
};

fn small_config() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig { n: 48, density: 0.1, seed: 5, ..EngineConfig::default() },
        workers: 2,
        hang_ms: 150,
        default_deadline_ms: 500,
        ..ServerConfig::default()
    }
}

fn shutdown(handle: &ServerHandle) {
    let resp = request_once(handle.port(), &Request::plain(Op::Shutdown), 2_000)
        .expect("shutdown round-trips");
    assert_eq!(resp.status(), "OK");
}

fn report_traces(report: &cachegraph_obs::Report) -> Vec<TraceRecord> {
    report.traces.iter().map(|j| TraceRecord::from_json(j).expect("trace parses")).collect()
}

#[test]
fn segment_durations_sum_to_wall_latency_for_every_completed_request() {
    let handle = start(small_config(), FaultPlan::none(), Registry::new()).expect("binds");
    let mut wall_by_request = Vec::new();
    for (src, dst) in [(0u32, 7u32), (3, 11), (0, 7), (9, 40), (12, 12)] {
        let started = std::time::Instant::now();
        let resp = request_once(handle.port(), &Request::path(src, dst), 2_000).expect("responds");
        let client_wall = started.elapsed();
        assert_eq!(resp.status(), "OK");
        wall_by_request.push(client_wall);
    }
    shutdown(&handle);
    let (_, report) = handle.join_report();
    let traces = report_traces(&report);
    assert_eq!(traces.len(), 5, "every request is in the flight recorder");
    for trace in &traces {
        let sum: u64 = trace.segments.iter().map(|&(_, d)| d).sum();
        // The invariant is exact by construction (telescoping marks);
        // the acceptance criterion allows 5%, asserted tighter here.
        assert_eq!(sum, trace.wall_ns, "segments partition wall for {}", trace.id_hex());
        for (name, _) in &trace.segments {
            assert!(SEGMENTS.contains(&name.as_str()), "unknown segment `{name}`");
        }
        assert!(trace.segment_ns("admission") > 0, "admission covers the frame read");
        assert!(trace.segment_ns("write") > 0, "write covers the response write");
    }
    // Server-side wall is within the client-observed wall: the trace
    // never claims more time than the client actually waited.
    for (trace, client_wall) in traces.iter().zip(&wall_by_request) {
        assert!(
            trace.wall_ns <= client_wall.as_nanos() as u64,
            "server wall {} must not exceed client wall {}",
            trace.wall_ns,
            client_wall.as_nanos()
        );
    }
    // The repeated (0, 7) query hit the result cache: its trace says so
    // and has no compute segment.
    let hits: Vec<_> =
        traces.iter().filter(|t| t.tag("cache") == Some(&Json::Str("hit".to_string()))).collect();
    assert_eq!(hits.len(), 1, "exactly one repeat -> one cache hit");
    assert_eq!(hits[0].segment_ns("compute"), 0, "a cache hit skips compute");
    // Cold queries carry the solver's cancel-poll count.
    let miss = traces
        .iter()
        .find(|t| t.tag("cache") == Some(&Json::Str("miss".to_string())))
        .expect("cold query");
    assert!(miss.tag("cancel_polls").is_some(), "compute traces carry cancel_polls");
}

#[test]
fn trace_ids_are_reproducible_across_identical_runs() {
    let run = || {
        let handle = start(small_config(), FaultPlan::none(), Registry::new()).expect("binds");
        for (src, dst) in [(0u32, 7u32), (3, 11)] {
            request_once(handle.port(), &Request::path(src, dst), 2_000).expect("responds");
        }
        shutdown(&handle);
        let (_, report) = handle.join_report();
        report_traces(&report).iter().map(|t| t.trace_id).collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed + same request sequence -> same trace ids");
}

#[test]
fn shed_requests_are_traced_as_busy() {
    // queue_high 1 / workers 1 with a hang fault: the first request
    // stalls the only worker, a concurrent burst piles up and sheds.
    let cfg = ServerConfig {
        queue_high: 1,
        queue_low: 0,
        workers: 1,
        hang_ms: 300,
        ..small_config()
    };
    let handle = start(cfg, FaultPlan::parse("hang:path").expect("plan"), Registry::new())
        .expect("binds");
    let port = handle.port();
    let burst: Vec<_> = (0..8u32)
        .map(|dst| {
            std::thread::spawn(move || {
                request_once(port, &Request::path(0, dst), 2_000).expect("responds")
            })
        })
        .collect();
    let saw_busy = burst
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .any(|resp| matches!(resp, Response::Busy { .. }));
    std::thread::sleep(Duration::from_millis(400)); // let the hang drain
    shutdown(&handle);
    let (_, report) = handle.join_report();
    assert!(saw_busy, "the burst must shed at least once");
    let traces = report_traces(&report);
    let busy: Vec<_> = traces.iter().filter(|t| t.outcome == "BUSY").collect();
    assert!(!busy.is_empty(), "shed requests leave traces");
    for t in &busy {
        assert!(t.segment_ns("admission") > 0, "a shed trace still has admission time");
        assert_eq!(t.segment_ns("compute"), 0, "a shed request never computes");
    }
}

#[test]
fn stats_op_answers_inline_with_live_gauges_and_percentiles() {
    let handle = start(small_config(), FaultPlan::none(), Registry::new()).expect("binds");
    for dst in [1u32, 2, 3] {
        assert_eq!(
            request_once(handle.port(), &Request::path(0, dst), 2_000).expect("responds").status(),
            "OK"
        );
    }
    let resp = request_once(handle.port(), &Request::plain(Op::Stats), 2_000).expect("responds");
    let Response::Ok(stats) = resp else { unreachable!("expected OK, got {resp:?}") };
    assert_eq!(stats.get("ok").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("op_path").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("op_match").and_then(Json::as_u64), Some(0));
    assert!(stats.get("queue_high_watermark").and_then(Json::as_u64).is_some());
    assert!(stats.get("workers").and_then(Json::as_u64) == Some(2));
    let latency = stats.get("latency").expect("latency object");
    assert!(
        latency.get("p50_ns").and_then(Json::as_u64).unwrap_or(0) > 0,
        "three completions give a nonzero p50"
    );
    shutdown(&handle);
    handle.join();
}

#[test]
fn trace_op_drains_recent_but_final_report_keeps_errors() {
    let handle = start(small_config(), FaultPlan::parse("panic:reach").expect("plan"), Registry::new())
        .expect("binds");
    // One poisoned request, one healthy one.
    let poisoned = request_once(handle.port(), &Request::reach(0, 1), 2_000).expect("responds");
    assert_eq!(poisoned.status(), "INTERNAL");
    assert_eq!(
        request_once(handle.port(), &Request::path(0, 1), 2_000).expect("responds").status(),
        "OK"
    );
    // The response frame is written *before* the trace is filed (the
    // `write` segment must be measured), so give the workers a moment
    // to file both records before draining the ring over the wire.
    std::thread::sleep(Duration::from_millis(100));
    let resp = request_once(handle.port(), &Request::plain(Op::Trace), 2_000).expect("responds");
    let Response::Ok(data) = resp else { unreachable!("expected OK, got {resp:?}") };
    let drained = data.get("traces").and_then(Json::as_arr).expect("traces array");
    assert_eq!(data.get("count").and_then(Json::as_u64), Some(drained.len() as u64));
    assert_eq!(drained.len(), 2, "both completed requests were in the recent ring");
    for j in drained {
        TraceRecord::from_json(j).expect("wire trace parses");
    }
    // A second drain is empty (the ring was drained)...
    let resp = request_once(handle.port(), &Request::plain(Op::Trace), 2_000).expect("responds");
    let Response::Ok(data) = resp else { unreachable!("expected OK, got {resp:?}") };
    assert_eq!(data.get("count").and_then(Json::as_u64), Some(0));
    // ...but the final report still carries the INTERNAL trace: the
    // error ring survives live introspection.
    shutdown(&handle);
    let (snapshot, report) = handle.join_report();
    assert_eq!(snapshot.counters["serve.panics"], 1);
    let traces = report_traces(&report);
    let internal = traces.iter().find(|t| t.outcome == "INTERNAL").expect("post-mortem trace");
    assert_eq!(internal.op, "reach");
    assert_eq!(internal.tag("panic"), Some(&Json::Bool(true)));
    assert!(internal.wall_ns > 0);
    // And the report is a well-formed current-schema document.
    let rendered = report.render();
    assert!(rendered.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
    cachegraph_obs::Report::load_str(&rendered).expect("v5 report round-trips");
}

#[test]
fn disabled_tracing_serves_identically_with_empty_traces() {
    let cfg = ServerConfig {
        trace: cachegraph_obs::TraceConfig { enabled: false, ..Default::default() },
        ..small_config()
    };
    let handle = start(cfg, FaultPlan::none(), Registry::new()).expect("binds");
    assert_eq!(
        request_once(handle.port(), &Request::path(0, 1), 2_000).expect("responds").status(),
        "OK"
    );
    let resp = request_once(handle.port(), &Request::plain(Op::Trace), 2_000).expect("responds");
    let Response::Ok(data) = resp else { unreachable!("expected OK, got {resp:?}") };
    assert_eq!(data.get("count").and_then(Json::as_u64), Some(0), "nothing recorded");
    shutdown(&handle);
    let (snapshot, report) = handle.join_report();
    assert_eq!(snapshot.counters["serve.ok"], 1, "serving is unaffected");
    assert!(report.traces.is_empty());
}

#[test]
fn expired_in_queue_traces_attribute_the_wait() {
    // One worker, hang long enough that the queued request's 80 ms
    // deadline expires while it waits.
    let cfg = ServerConfig {
        workers: 1,
        hang_ms: 250,
        ..small_config()
    };
    let handle = start(cfg, FaultPlan::parse("hang:match").expect("plan"), Registry::new())
        .expect("binds");
    let port = handle.port();
    let slow = std::thread::spawn(move || {
        request_once(port, &Request::plain(Op::Match).with_deadline_ms(2_000), 4_000)
    });
    std::thread::sleep(Duration::from_millis(40)); // let the hang start
    let fast = request_once(port, &Request::path(0, 1).with_deadline_ms(80), 2_000)
        .expect("responds");
    assert_eq!(fast.status(), "DEADLINE_EXCEEDED", "expired while queued behind the hang");
    slow.join().expect("thread").expect("slow request answers");
    shutdown(&handle);
    let (_, report) = handle.join_report();
    let traces = report_traces(&report);
    let expired = traces
        .iter()
        .find(|t| t.outcome == "DEADLINE_EXCEEDED")
        .expect("expired trace captured (non-OK is always kept)");
    assert_eq!(expired.tag("expired_in_queue"), Some(&Json::Bool(true)));
    assert!(
        expired.segment_ns("queue") >= Duration::from_millis(40).as_nanos() as u64,
        "queue wait dominates an in-queue expiry, got {} ns",
        expired.segment_ns("queue")
    );
}
