//! Concurrency stress for the sharded LRU result cache, under
//! `std::thread::scope`: per-shard capacity is never exceeded, the
//! padded per-shard hit/miss counters sum exactly to the operations
//! performed, and eviction order stays LRU per shard. Seeded —
//! every assertion prints the seed it failed under.

use cachegraph_rng::StdRng;
use cachegraph_serve::ShardedLru;

#[test]
fn capacity_and_stat_sums_hold_under_contention() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 4_000;
    const SHARDS: usize = 4;
    const PER_SHARD: usize = 16;
    for seed in [11u64, 42] {
        let cache: ShardedLru<u64> = ShardedLru::new(SHARDS, PER_SHARD);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(t as u64));
                    for _ in 0..OPS_PER_THREAD {
                        let key = rng.gen_range(0u64..200);
                        if rng.gen_bool(0.5) {
                            let _ = cache.get(key);
                        } else {
                            cache.put(key, key.wrapping_mul(7));
                        }
                        // Capacity invariant holds at every instant,
                        // not just at the end.
                        let s = cache.shard_stats(cache.shard_of(key));
                        assert!(
                            s.len <= PER_SHARD,
                            "seed {seed}: shard over capacity ({} > {PER_SHARD})",
                            s.len
                        );
                    }
                });
            }
        });
        // Lookups = hits + misses, summed across the padded per-shard
        // counters, must equal exactly the gets performed. gen_bool(0.5)
        // is seed-deterministic per thread, so recompute the split.
        let mut expected_gets = 0u64;
        for t in 0..THREADS {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(t as u64));
            for _ in 0..OPS_PER_THREAD {
                let _ = rng.gen_range(0u64..200);
                if rng.gen_bool(0.5) {
                    expected_gets += 1;
                }
            }
        }
        let stats = cache.stats();
        let lookups: u64 = stats.iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(lookups, expected_gets, "seed {seed}: stats lost or double-counted");
        let resident: usize = stats.iter().map(|s| s.len).sum();
        assert!(resident <= SHARDS * PER_SHARD, "seed {seed}");
        // Values never tear: every cached value is its key's transform.
        for key in 0u64..200 {
            if let Some(v) = cache.get(key) {
                assert_eq!(v, key.wrapping_mul(7), "seed {seed}: torn value for {key}");
            }
        }
    }
}

#[test]
fn eviction_order_is_lru_under_a_serial_reference_model() {
    // One shard, seeded op stream, checked against a straightforward
    // reference implementation after every operation.
    for seed in [5u64, 77] {
        const CAP: usize = 8;
        let cache: ShardedLru<u64> = ShardedLru::new(1, CAP);
        let mut reference: Vec<u64> = Vec::new(); // MRU-first key list
        let mut rng = StdRng::seed_from_u64(seed);
        for op in 0..5_000usize {
            let key = rng.gen_range(0u64..32);
            if rng.gen_bool(0.4) {
                let hit = cache.get(key).is_some();
                let ref_hit = reference.contains(&key);
                assert_eq!(hit, ref_hit, "seed {seed} op {op}: hit disagreement on {key}");
                if ref_hit {
                    reference.retain(|&k| k != key);
                    reference.insert(0, key);
                }
            } else {
                cache.put(key, key);
                reference.retain(|&k| k != key);
                while reference.len() >= CAP {
                    reference.pop();
                }
                reference.insert(0, key);
            }
            assert_eq!(
                cache.shard_keys(0),
                reference,
                "seed {seed} op {op}: recency order diverged"
            );
        }
        let s = cache.shard_stats(0);
        assert!(s.len <= CAP, "seed {seed}");
        assert!(s.hits + s.misses > 0, "seed {seed}: reference model never looked anything up");
    }
}

#[test]
fn concurrent_readers_of_one_hot_key_all_see_the_value() {
    let cache: ShardedLru<u64> = ShardedLru::new(2, 4);
    cache.put(1, 99);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let cache = &cache;
            scope.spawn(move || {
                for _ in 0..10_000 {
                    assert_eq!(cache.get(1), Some(99));
                }
            });
        }
    });
    let hits: u64 = cache.stats().iter().map(|s| s.hits).sum();
    assert_eq!(hits, 60_000);
}
