//! A sharded, cache-line-aligned LRU result cache.
//!
//! Queries hash to one of `shards` independent shards, so concurrent
//! workers rarely contend on the same lock. Each [`Shard`] is
//! `#[repr(align(64))]` — one shard per cache line, so a worker
//! hammering shard 3's lock never invalidates the line holding shard
//! 4's, and the per-shard hit/miss counters are padded apart the same
//! way (the `PaddedAtomicUsize` idea: stats that are written from
//! different threads must not share a line).
//!
//! Within a shard, entries are kept in most-recently-used-first order in
//! a small vector: per-shard capacities are tens of entries, where a
//! move-to-front vector beats a linked structure on every metric that
//! matters here (it *is* the cache-friendly representation). Eviction
//! drops the true LRU tail, which `tests/cache_stress.rs` asserts under
//! `std::thread::scope` contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock helper that survives poisoning: a panicking request handler
/// must not take the shared cache down with it (crash-only discipline —
/// the entry it was writing is simply absent).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One shard: an LRU list behind its own lock, plus padded stats.
/// The 64-byte alignment keeps neighbouring shards off this line.
#[repr(align(64))]
struct Shard<V> {
    /// MRU-first entry list.
    entries: Mutex<Vec<(u64, V)>>,
    /// Lookups that found the key.
    hits: AtomicU64,
    /// Lookups that missed.
    misses: AtomicU64,
    /// Entries evicted to respect the capacity.
    evictions: AtomicU64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

/// Per-shard statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted at capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// The sharded LRU cache. Values are cloned out on hit, so `V` is
/// typically a small answer struct or a `Json` payload.
pub struct ShardedLru<V> {
    shards: Vec<Shard<V>>,
    per_shard_capacity: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache with `shards` shards of `per_shard_capacity` entries
    /// each. Both are clamped to at least 1.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard capacity.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_capacity
    }

    /// Which shard a key lives in (Fibonacci multiplicative hash: keys
    /// are often sequential `(src, dst)` packs, and low bits alone
    /// would pile them into one shard).
    pub fn shard_of(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Map the high bits onto the shard count without modulo bias
        // mattering (shard count is small).
        ((mixed >> 32) as usize) % self.shards.len()
    }

    /// Look `key` up, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let shard = &self.shards[self.shard_of(key)];
        let mut entries = lock(&shard.entries);
        match entries.iter().position(|(k, _)| *k == key) {
            Some(pos) => {
                // Move to front: O(pos) shift over a few dozen entries.
                let entry = entries.remove(pos);
                let value = entry.1.clone();
                entries.insert(0, entry);
                drop(entries);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(entries);
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's LRU tail when at
    /// capacity.
    pub fn put(&self, key: u64, value: V) {
        let shard = &self.shards[self.shard_of(key)];
        let mut entries = lock(&shard.entries);
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            entries.remove(pos);
        }
        let mut evicted = 0u64;
        while entries.len() >= self.per_shard_capacity {
            entries.pop();
            evicted += 1;
        }
        entries.insert(0, (key, value));
        drop(entries);
        if evicted > 0 {
            shard.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Stats for one shard.
    pub fn shard_stats(&self, shard: usize) -> ShardStats {
        let s = &self.shards[shard];
        ShardStats {
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            evictions: s.evictions.load(Ordering::Relaxed),
            len: lock(&s.entries).len(),
        }
    }

    /// Stats for every shard, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        (0..self.shards.len()).map(|i| self.shard_stats(i)).collect()
    }

    /// Aggregate hit ratio over all shards (0.0 when nothing was asked).
    pub fn hit_ratio(&self) -> f64 {
        let (mut hits, mut total) = (0u64, 0u64);
        for s in self.stats() {
            hits += s.hits;
            total += s.hits + s.misses;
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Keys of one shard in MRU-to-LRU order (for the eviction-order
    /// assertions of the stress suite).
    pub fn shard_keys(&self, shard: usize) -> Vec<u64> {
        lock(&self.shards[shard].entries).iter().map(|(k, _)| *k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_hit_miss_accounting() {
        let cache: ShardedLru<u64> = ShardedLru::new(4, 8);
        assert_eq!(cache.get(1), None);
        cache.put(1, 100);
        assert_eq!(cache.get(1), Some(100));
        let total: u64 = cache.stats().iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(total, 2);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_per_shard() {
        // One shard isolates the order logic from hashing.
        let cache: ShardedLru<u64> = ShardedLru::new(1, 3);
        for k in [1, 2, 3] {
            cache.put(k, k * 10);
        }
        // Touch 1 so 2 becomes the LRU tail.
        assert_eq!(cache.get(1), Some(10));
        cache.put(4, 40);
        assert_eq!(cache.get(2), None, "LRU entry 2 must have been evicted");
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(3), Some(30));
        assert_eq!(cache.get(4), Some(40));
        assert_eq!(cache.shard_stats(0).evictions, 1);
    }

    #[test]
    fn put_refreshes_existing_key_without_growth() {
        let cache: ShardedLru<u64> = ShardedLru::new(1, 2);
        cache.put(7, 1);
        cache.put(7, 2);
        assert_eq!(cache.shard_stats(0).len, 1);
        assert_eq!(cache.get(7), Some(2));
    }

    #[test]
    fn shard_selection_is_stable_and_in_range() {
        let cache: ShardedLru<u64> = ShardedLru::new(8, 4);
        for key in 0..1000u64 {
            let s = cache.shard_of(key);
            assert!(s < 8);
            assert_eq!(s, cache.shard_of(key), "stable per key");
        }
        // Sequential keys spread across shards rather than piling up.
        let mut seen = [false; 8];
        for key in 0..64u64 {
            seen[cache.shard_of(key)] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 4, "{seen:?}");
    }

    #[test]
    fn shard_alignment_is_a_cache_line() {
        assert_eq!(std::mem::align_of::<Shard<u64>>(), 64);
        assert!(std::mem::size_of::<Shard<u64>>() >= 64);
    }
}
