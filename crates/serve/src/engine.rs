//! The query engine: a loaded graph plus precomputed cache-friendly
//! artifacts, answering point-to-point queries with deadline
//! propagation.
//!
//! At startup the engine builds (paper §2–§3 machinery end-to-end):
//!
//! * the graph as a CSR adjacency array (the cache-friendly
//!   representation of §3.2);
//! * for small instances (`n ≤ apsp_threshold`) an exact APSP table via
//!   the BDL-tiled Floyd-Warshall of §3.1 — point-to-point distance
//!   becomes one array read;
//! * otherwise *landmark sketches*: forward and reverse Dijkstra trees
//!   from a few evenly spaced landmarks, giving a triangle-inequality
//!   upper bound per query. Sketches are advisory — queries are still
//!   answered exactly by a target-pruned cancellable Dijkstra — but the
//!   bound ships in the answer so clients can see how tight it was;
//! * for small instances, an exact reachability matrix via the
//!   *parallel* tiled boolean closure — `reach` becomes one bit read;
//! * a companion bipartite graph for the `match` op, solved once (and
//!   cached) by the parallel partitioned Fig. 9 matcher.
//!
//! The `sssp` op runs the parallel delta-stepping driver at query time:
//! a full single-source tree is exactly the shape where the TaskGraph
//! parallelism pays, unlike point queries, which a target-pruned serial
//! Dijkstra answers with less work.
//!
//! Every potentially long computation takes the caller's cancellation
//! closure; the engine itself never looks at clocks or the
//! observability layer — deadlines are the server's business,
//! propagated down as a `Fn() -> bool + Sync` hook that parallel
//! drivers poll from every worker.

use cachegraph_fw::{
    fw_tiled_cancellable, transitive_closure_tiled_parallel, BitMatrix, FwMatrix,
};
use cachegraph_graph::{
    generators, AdjacencyArray, Edge, EdgeListBuilder, VertexId, Weight, INF,
};
use cachegraph_layout::BlockLayout;
use cachegraph_matching::{find_matching_partitioned_parallel_cancellable, PartitionScheme};
use cachegraph_obs::Json;
use cachegraph_sssp::{delta_stepping_parallel_cancellable, dijkstra_to};
use std::sync::Mutex;
use std::sync::{MutexGuard, PoisonError};

/// Survive a poisoned matching cache (a panicked worker must not take
/// the engine down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How the engine's graph and artifacts are built.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of vertices in the generated graph.
    pub n: usize,
    /// Edge density of the generated graph.
    pub density: f64,
    /// Maximum edge weight.
    pub max_weight: Weight,
    /// Generator seed (the bipartite companion uses `seed + 1`).
    pub seed: u64,
    /// At or below this size, precompute the full APSP table with the
    /// tiled Floyd-Warshall; above it, build landmark sketches instead.
    pub apsp_threshold: usize,
    /// Tile size for the APSP precompute.
    pub tile: usize,
    /// Number of landmarks when sketching.
    pub landmarks: usize,
    /// Worker threads for the parallel TaskGraph drivers (delta-stepping
    /// `sssp`, partitioned `match`, closure precompute).
    pub threads: usize,
    /// Bucket width for the delta-stepping `sssp` op.
    pub delta: Weight,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            n: 256,
            density: 0.05,
            max_weight: 100,
            seed: 42,
            apsp_threshold: 128,
            tile: 8,
            landmarks: 8,
            threads: 2,
            delta: 16,
        }
    }
}

/// A vertex argument outside `0..n`, or the query's deadline expired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The deadline expired; the partial computation was discarded.
    Cancelled,
    /// A vertex id is out of range.
    BadVertex {
        /// The offending id.
        v: VertexId,
        /// The graph size it must be below.
        n: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Cancelled => write!(f, "query cancelled"),
            Self::BadVertex { v, n } => write!(f, "vertex {v} out of range (n = {n})"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One landmark's precomputed distance sketches.
struct Landmark {
    /// `from[v]` = d(landmark -> v) in the original graph.
    from: Vec<Weight>,
    /// `to[v]` = d(v -> landmark), computed on the reversed graph.
    to: Vec<Weight>,
}

/// The loaded graph and its precomputed artifacts. Shared across the
/// worker pool behind an `Arc`; all query methods take `&self`.
pub struct QueryEngine {
    graph: AdjacencyArray,
    n: usize,
    /// Row-major exact APSP distances (small instances only).
    apsp: Option<Vec<Weight>>,
    /// Exact reachability bits (small instances only), built by the
    /// parallel tiled boolean closure.
    closure: Option<BitMatrix>,
    landmarks: Vec<Landmark>,
    bipartite: AdjacencyArray,
    /// The companion graph's edge list, kept for the partitioned
    /// parallel matcher (partitioning needs the edges, not the CSR).
    bip_edges: Vec<Edge>,
    n_left: usize,
    /// Memoised maximum-matching size for the companion graph.
    matching_size: Mutex<Option<usize>>,
    threads: usize,
    delta: Weight,
}

impl QueryEngine {
    /// Build the engine: generate the graph, then precompute either the
    /// APSP table (tiled FW, cancellable with a never-firing closure —
    /// startup has no deadline) or landmark sketches.
    pub fn build(cfg: &EngineConfig) -> Self {
        let threads = cfg.threads.max(1);
        let builder = generators::random_directed(cfg.n, cfg.density, cfg.max_weight, cfg.seed);
        let graph = builder.build_array();
        let (apsp, closure, landmarks) = if cfg.n <= cfg.apsp_threshold {
            let reach = transitive_closure_tiled_parallel(
                BitMatrix::from_graph(&graph),
                cfg.tile.max(1),
                threads,
            );
            (Some(Self::apsp_table(&builder, cfg)), Some(reach), Vec::new())
        } else {
            (None, None, Self::sketch(&builder, &graph, cfg))
        };
        let bip = generators::random_bipartite(cfg.n, cfg.density.max(0.02), cfg.seed + 1);
        let bip_edges = bip.edges().to_vec();
        Self {
            graph,
            n: cfg.n,
            apsp,
            closure,
            landmarks,
            bipartite: bip.build_array(),
            bip_edges,
            n_left: cfg.n / 2,
            matching_size: Mutex::new(None),
            threads,
            delta: cfg.delta.max(1),
        }
    }

    /// Exact APSP via the tiled Floyd-Warshall on a block layout.
    fn apsp_table(builder: &EdgeListBuilder, cfg: &EngineConfig) -> Vec<Weight> {
        let n = cfg.n;
        let mut costs = vec![INF; n * n];
        for i in 0..n {
            costs[i * n + i] = 0;
        }
        for e in builder.edges() {
            let cell = &mut costs[e.from as usize * n + e.to as usize];
            *cell = (*cell).min(e.weight);
        }
        let mut m = FwMatrix::from_costs(BlockLayout::new(n, cfg.tile), &costs);
        fw_tiled_cancellable(&mut m, cfg.tile, &mut || false)
            // tidy: allow(panic-policy) -- a never-firing closure cannot cancel
            .expect("uncancellable precompute cannot be cancelled");
        m.to_row_major()
    }

    /// Landmark sketches: forward trees on the graph, reverse trees on
    /// the transposed graph, from `landmarks` evenly spaced vertices.
    fn sketch(builder: &EdgeListBuilder, graph: &AdjacencyArray, cfg: &EngineConfig) -> Vec<Landmark> {
        let n = cfg.n;
        let k = cfg.landmarks.clamp(1, n);
        let mut reversed = EdgeListBuilder::new(n);
        for e in builder.edges() {
            reversed.add(e.to, e.from, e.weight);
        }
        let rgraph = reversed.build_array();
        let mut never = || false;
        (0..k)
            .map(|i| {
                let l = (i * n / k) as VertexId;
                // tidy: allow(panic-policy) -- never-firing closures cannot cancel
                let from = dijkstra_to(graph, l, None, &mut never).expect("uncancellable").dist;
                // tidy: allow(panic-policy) -- never-firing closures cannot cancel
                let to = dijkstra_to(&rgraph, l, None, &mut never).expect("uncancellable").dist;
                Landmark { from, to }
            })
            .collect()
    }

    /// Number of vertices served.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// True when the exact APSP table was precomputed.
    pub fn has_apsp(&self) -> bool {
        self.apsp.is_some()
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), QueryError> {
        if (v as usize) < self.n {
            Ok(())
        } else {
            Err(QueryError::BadVertex { v, n: self.n })
        }
    }

    /// Triangle-inequality upper bound from the sketches (`INF` when no
    /// landmark connects the pair, or when no sketches were built).
    fn estimate(&self, src: VertexId, dst: VertexId) -> Weight {
        self.landmarks
            .iter()
            .map(|l| l.to[src as usize].saturating_add(l.from[dst as usize]))
            .min()
            .unwrap_or(INF)
    }

    /// Exact `src -> dst` distance: one table read when the APSP table
    /// exists, otherwise a target-pruned cancellable Dijkstra.
    pub fn distance(
        &self,
        src: VertexId,
        dst: VertexId,
        cancel: &(impl Fn() -> bool + Sync),
    ) -> Result<Weight, QueryError> {
        self.check_vertex(src)?;
        self.check_vertex(dst)?;
        if let Some(apsp) = &self.apsp {
            return Ok(apsp[src as usize * self.n + dst as usize]);
        }
        let mut poll = || cancel();
        let r = dijkstra_to(&self.graph, src, Some(dst), &mut poll)
            .map_err(|_| QueryError::Cancelled)?;
        Ok(r.dist[dst as usize])
    }

    /// The `path` answer payload: exact distance, reachability, and the
    /// sketch estimate (so clients can see the bound's slack).
    pub fn path(
        &self,
        src: VertexId,
        dst: VertexId,
        cancel: &(impl Fn() -> bool + Sync),
    ) -> Result<Json, QueryError> {
        let d = self.distance(src, dst, cancel)?;
        let mut json = Json::obj().field("reachable", d != INF);
        json = if d == INF { json.field("dist", Json::Null) } else { json.field("dist", u64::from(d)) };
        if !self.landmarks.is_empty() {
            let est = self.estimate(src, dst);
            json = if est == INF {
                json.field("estimate", Json::Null)
            } else {
                json.field("estimate", u64::from(est))
            };
        }
        Ok(json)
    }

    /// The `reach` answer payload: one bit read when the closure matrix
    /// was precomputed, otherwise derived from the exact distance.
    pub fn reach(
        &self,
        src: VertexId,
        dst: VertexId,
        cancel: &(impl Fn() -> bool + Sync),
    ) -> Result<Json, QueryError> {
        if let Some(closure) = &self.closure {
            self.check_vertex(src)?;
            self.check_vertex(dst)?;
            return Ok(Json::obj().field("reachable", closure.get(src as usize, dst as usize)));
        }
        let d = self.distance(src, dst, cancel)?;
        Ok(Json::obj().field("reachable", d != INF))
    }

    /// The `sssp` answer payload: a full single-source shortest-path
    /// tree from `src`, computed by the parallel delta-stepping driver
    /// under the caller's cancellation, summarised as the number of
    /// reached vertices and the tree's eccentricity.
    pub fn sssp(
        &self,
        src: VertexId,
        cancel: &(impl Fn() -> bool + Sync),
    ) -> Result<Json, QueryError> {
        self.check_vertex(src)?;
        let r = delta_stepping_parallel_cancellable(&self.graph, src, self.delta, self.threads, cancel)
            .map_err(|_| QueryError::Cancelled)?;
        let reached = r.dist.iter().filter(|&&d| d != INF).count();
        let eccentricity = r.dist.iter().filter(|&&d| d != INF).max().copied().unwrap_or(0);
        Ok(Json::obj()
            .field("src", u64::from(src))
            .field("reached", reached as u64)
            .field("eccentricity", u64::from(eccentricity))
            .field("threads", self.threads as u64))
    }

    /// The `match` answer payload: maximum-matching size on the
    /// companion bipartite graph, computed once by the parallel
    /// partitioned matcher under the caller's cancellation, then
    /// memoised. Partitioning can only shrink the augmenting work, not
    /// the answer: the size of a maximum matching is unique.
    pub fn matching(&self, cancel: &(impl Fn() -> bool + Sync)) -> Result<Json, QueryError> {
        if let Some(size) = *lock(&self.matching_size) {
            return Ok(Self::match_json(size, self.n_left));
        }
        let scheme = PartitionScheme::Contiguous(self.threads.max(2));
        let (m, _) = find_matching_partitioned_parallel_cancellable(
            &self.bipartite,
            self.n_left,
            &self.bip_edges,
            scheme,
            self.threads,
            cancel,
        )
        .map_err(|_| QueryError::Cancelled)?;
        *lock(&self.matching_size) = Some(m.size);
        Ok(Self::match_json(m.size, self.n_left))
    }

    fn match_json(size: usize, n_left: usize) -> Json {
        Json::obj().field("matching_size", size as u64).field("n_left", n_left as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegraph_matching::{find_matching, Matching};
    use cachegraph_sssp::dijkstra_binary_heap;

    fn small_cfg() -> EngineConfig {
        EngineConfig { n: 48, density: 0.08, seed: 7, ..EngineConfig::default() }
    }

    fn large_cfg() -> EngineConfig {
        EngineConfig { n: 200, density: 0.04, seed: 7, apsp_threshold: 128, ..EngineConfig::default() }
    }

    #[test]
    fn small_engine_uses_apsp_and_matches_dijkstra() {
        let cfg = small_cfg();
        let e = QueryEngine::build(&cfg);
        assert!(e.has_apsp());
        let g = generators::random_directed(cfg.n, cfg.density, cfg.max_weight, cfg.seed)
            .build_array();
        for src in [0u32, 5, 17] {
            let plain = dijkstra_binary_heap(&g, src);
            for dst in 0..cfg.n as u32 {
                let d = e.distance(src, dst, &|| false).expect("not cancelled");
                assert_eq!(d, plain.dist[dst as usize], "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn large_engine_answers_exactly_with_sketch_upper_bound() {
        let cfg = large_cfg();
        let e = QueryEngine::build(&cfg);
        assert!(!e.has_apsp());
        let g = generators::random_directed(cfg.n, cfg.density, cfg.max_weight, cfg.seed)
            .build_array();
        let plain = dijkstra_binary_heap(&g, 3);
        for dst in [0u32, 50, 120, 199] {
            let d = e.distance(3, dst, &|| false).expect("not cancelled");
            assert_eq!(d, plain.dist[dst as usize], "3 -> {dst}");
            // The sketch estimate is an upper bound on the true distance.
            let est = e.estimate(3, dst);
            assert!(est >= d, "estimate {est} below true distance {d}");
        }
    }

    #[test]
    fn cancellation_propagates_from_distance_queries() {
        let cfg = large_cfg();
        let e = QueryEngine::build(&cfg);
        let r = e.distance(0, 199, &|| true);
        assert_eq!(r, Err(QueryError::Cancelled));
    }

    #[test]
    fn bad_vertices_are_rejected_not_panicked() {
        let e = QueryEngine::build(&small_cfg());
        let r = e.distance(0, 9999, &|| false);
        assert_eq!(r, Err(QueryError::BadVertex { v: 9999, n: 48 }));
        assert!(r.unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn matching_is_memoised_and_agrees_with_direct_solver() {
        let cfg = small_cfg();
        let e = QueryEngine::build(&cfg);
        let b = generators::random_bipartite(cfg.n, cfg.density.max(0.02), cfg.seed + 1);
        let g = b.build_array();
        let direct = find_matching(&g, cfg.n / 2, Matching::empty(cfg.n));
        let first = e.matching(&|| false).expect("not cancelled");
        assert_eq!(first.get("matching_size").and_then(Json::as_u64), Some(direct.size as u64));
        // Second call hits the memo: a cancel-everything closure cannot
        // touch it any more.
        let second = e.matching(&|| true).expect("memoised");
        assert_eq!(second.get("matching_size"), first.get("matching_size"));
    }

    #[test]
    fn path_payload_shape() {
        let e = QueryEngine::build(&small_cfg());
        let p = e.path(0, 1, &|| false).expect("ok");
        assert!(p.get("reachable").is_some());
        assert!(p.get("dist").is_some());
    }

    #[test]
    fn sssp_payload_matches_serial_delta_stepping() {
        let cfg = EngineConfig { threads: 4, ..small_cfg() };
        let e = QueryEngine::build(&cfg);
        let g = generators::random_directed(cfg.n, cfg.density, cfg.max_weight, cfg.seed)
            .build_array();
        let serial = cachegraph_sssp::delta_stepping(&g, 5, cfg.delta);
        let reached = serial.dist.iter().filter(|&&d| d != INF).count() as u64;
        let ecc = u64::from(serial.dist.iter().filter(|&&d| d != INF).max().copied().unwrap_or(0));
        let json = e.sssp(5, &|| false).expect("not cancelled");
        assert_eq!(json.get("reached").and_then(Json::as_u64), Some(reached));
        assert_eq!(json.get("eccentricity").and_then(Json::as_u64), Some(ecc));
        assert_eq!(e.sssp(9999, &|| false), Err(QueryError::BadVertex { v: 9999, n: cfg.n }));
    }

    #[test]
    fn reach_reads_closure_bits_and_agrees_with_distance() {
        let e = QueryEngine::build(&small_cfg());
        assert!(e.closure.is_some(), "small instance should precompute the closure");
        for (s, d) in [(0u32, 1u32), (3, 40), (7, 7), (19, 2)] {
            let bit = e.reach(s, d, &|| false).expect("ok");
            let dist = e.distance(s, d, &|| false).expect("ok");
            assert_eq!(
                bit.get("reachable"),
                Some(&Json::Bool(dist != INF)),
                "{s} -> {d}: closure bit disagrees with distance"
            );
        }
    }
}
