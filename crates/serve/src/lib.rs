//! # cachegraph-serve
//!
//! A crash-only graph-query daemon over plain `std::net`: load a
//! graph, precompute cache-friendly artifacts (the tiled-APSP table of
//! paper §3.1 for small instances, landmark Dijkstra sketches
//! otherwise), and answer point-to-point `path` / `reach` / `match`
//! queries through a fixed worker pool fronted by a sharded,
//! cache-line-aligned LRU result cache.
//!
//! The robustness layer is the point (this is where "optimised for
//! cache" meets "keeps running"):
//!
//! * **wire protocol** ([`protocol`]) — 4-byte length-prefixed JSON
//!   frames, size-capped before allocation; every corruption decodes to
//!   a structured [`WireError`], never a panic or a hang;
//! * **deadlines** — per-request, measured from admission, propagated
//!   into the query engine as a plain `FnMut() -> bool` closure checked
//!   at Dijkstra bucket boundaries / FW tile boundaries / matching
//!   augmentation rounds; an expired query answers
//!   `DEADLINE_EXCEEDED`, never hangs a worker;
//! * **load shedding** — a bounded admission queue with high/low
//!   watermark hysteresis answering `BUSY { retry_after_ms }` under
//!   overload;
//! * **panic isolation** — `catch_unwind` per request: a poisoned
//!   request answers `INTERNAL` and the server lives;
//! * **graceful shutdown** — stop accepting, drain in-flight work under
//!   a drain deadline, leave a final schema-v5 metrics report;
//! * **chaos** ([`FaultPlan`]) — one-shot `panic:OP,hang:OP,kill:OP`
//!   injections (the PR 3 supervisor grammar) so the whole taxonomy is
//!   testable from a real client;
//! * **request tracing** — every admitted request carries a
//!   `cachegraph_obs::trace` wide event across threads (admission →
//!   queue → cache → compute → serialize → write; segment durations sum
//!   to wall latency by construction), landing in a flight recorder
//!   drained by the in-band `trace` op and flushed into the final
//!   report; the `stats` op answers a live load snapshot inline, so it
//!   works even while the queue sheds.
//!
//! ```no_run
//! use cachegraph_serve::{start, request_once, FaultPlan, Request, Response, ServerConfig};
//! use cachegraph_obs::Registry;
//!
//! let handle = start(ServerConfig::default(), FaultPlan::none(), Registry::new()).unwrap();
//! let resp = request_once(handle.port(), &Request::path(0, 5), 1_000).unwrap();
//! assert_eq!(resp.status(), "OK");
//! let _ = request_once(handle.port(), &Request::plain(cachegraph_serve::Op::Shutdown), 1_000);
//! let snapshot = handle.join();
//! assert!(snapshot.counters["serve.ok"] >= 1);
//! ```

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod server;

pub use cache::{ShardStats, ShardedLru};
pub use engine::{EngineConfig, QueryEngine, QueryError};
pub use protocol::{
    decode_frame, encode_frame, read_frame, write_frame, Op, Request, Response, WireError,
    MAX_FRAME,
};
pub use server::{
    report_from_response, request_once, start, start_on, Fault, FaultPlan, ServerConfig,
    ServerHandle,
};
