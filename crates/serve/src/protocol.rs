//! The wire protocol: length-prefixed JSON frames and the request /
//! response vocabulary.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON (the same hand-rolled [`Json`] the report schema
//! uses). The length prefix is capped at [`MAX_FRAME`]: a peer claiming
//! more is rejected *before* any allocation, so a hostile or corrupted
//! prefix can neither balloon memory nor stall a worker. Every
//! malformed input — truncation, bit flips, bad UTF-8, junk JSON,
//! unknown ops — decodes to a structured [`WireError`] / `BAD_REQUEST`,
//! never a panic or a hang (see `tests/harden.rs` for the seeded
//! corruption sweep).

use std::io::{Read, Write};

use cachegraph_obs::{parse_json, Json};

/// Hard cap on a frame's payload length (1 MiB). Chosen far above any
/// legitimate request or response this protocol produces.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read, written, or decoded. Every variant is
/// a protocol-level fact the client can act on (retry, re-frame, give
/// up) — corruption is data, not a crash.
#[derive(Debug)]
pub enum WireError {
    /// The 4-byte length prefix itself was cut short.
    ShortPrefix {
        /// Bytes actually present.
        got: usize,
    },
    /// The prefix claims more than [`MAX_FRAME`] bytes.
    FrameTooLarge {
        /// Claimed payload length.
        claimed: usize,
    },
    /// The payload ended before the prefix said it would (a torn frame:
    /// the peer died or the connection was cut mid-response).
    Torn {
        /// Bytes actually present after the prefix.
        got: usize,
        /// Bytes the prefix promised.
        want: usize,
    },
    /// Payload bytes are not valid UTF-8.
    BadUtf8,
    /// Payload text is not valid JSON.
    BadJson(String),
    /// The JSON document is not a valid request/response shape.
    BadShape(String),
    /// The socket read or write failed (includes read timeouts).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShortPrefix { got } => write!(f, "length prefix truncated ({got}/4 bytes)"),
            Self::FrameTooLarge { claimed } => {
                write!(f, "frame claims {claimed} bytes (cap {MAX_FRAME})")
            }
            Self::Torn { got, want } => write!(f, "torn frame: {got}/{want} payload bytes"),
            Self::BadUtf8 => write!(f, "frame payload is not UTF-8"),
            Self::BadJson(e) => write!(f, "frame payload is not JSON: {e}"),
            Self::BadShape(e) => write!(f, "malformed message: {e}"),
            Self::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True when a client should retry the request on a fresh
    /// connection: the response was cut mid-frame (server killed the
    /// stream) or the socket failed outright.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::Torn { .. } | Self::ShortPrefix { .. } | Self::Io(_))
    }
}

/// Encode `payload` as one frame (prefix + JSON bytes).
pub fn encode_frame(payload: &Json) -> Vec<u8> {
    let body = payload.render().into_bytes();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode one frame from the front of `bytes`, returning the payload
/// and the number of bytes consumed. Pure — this is the function the
/// corruption suite sweeps.
pub fn decode_frame(bytes: &[u8]) -> Result<(Json, usize), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::ShortPrefix { got: bytes.len() });
    }
    let claimed = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if claimed > MAX_FRAME {
        return Err(WireError::FrameTooLarge { claimed });
    }
    let body = &bytes[4..];
    if body.len() < claimed {
        return Err(WireError::Torn { got: body.len(), want: claimed });
    }
    let text = std::str::from_utf8(&body[..claimed]).map_err(|_| WireError::BadUtf8)?;
    let json = parse_json(text).map_err(|e| WireError::BadJson(e.to_string()))?;
    Ok((json, 4 + claimed))
}

/// Read one frame from `r`. The length prefix is validated against
/// [`MAX_FRAME`] before the payload buffer is allocated; a read timeout
/// set on the socket surfaces as `WireError::Io(TimedOut/WouldBlock)`,
/// so a stalled peer can never hang a worker forever.
pub fn read_frame(r: &mut impl Read) -> Result<Json, WireError> {
    let mut prefix = [0u8; 4];
    read_exact_counted(r, &mut prefix).map_err(|got| match got {
        Ok(n) => WireError::ShortPrefix { got: n },
        Err(kind) => WireError::Io(kind),
    })?;
    let claimed = u32::from_be_bytes(prefix) as usize;
    if claimed > MAX_FRAME {
        return Err(WireError::FrameTooLarge { claimed });
    }
    let mut body = vec![0u8; claimed];
    read_exact_counted(r, &mut body).map_err(|got| match got {
        Ok(n) => WireError::Torn { got: n, want: claimed },
        Err(kind) => WireError::Io(kind),
    })?;
    let text = std::str::from_utf8(&body).map_err(|_| WireError::BadUtf8)?;
    parse_json(text).map_err(|e| WireError::BadJson(e.to_string()))
}

/// `read_exact` that reports how many bytes arrived before EOF, so a
/// torn frame can say `got/want` instead of a generic error. Timeouts
/// and other socket errors pass through as their `ErrorKind`.
fn read_exact_counted(
    r: &mut impl Read,
    buf: &mut [u8],
) -> Result<(), Result<usize, std::io::ErrorKind>> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(Ok(filled)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Err(e.kind())),
        }
    }
    Ok(())
}

/// Write one frame to `w`.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> Result<(), WireError> {
    let bytes = encode_frame(payload);
    w.write_all(&bytes).map_err(|e| WireError::Io(e.kind()))?;
    w.flush().map_err(|e| WireError::Io(e.kind()))
}

/// The query vocabulary. Fault plans key on [`Op::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Point-to-point shortest path: `src`, `dst`.
    Path,
    /// Point-to-point reachability: `src`, `dst`.
    Reach,
    /// Full single-source shortest-path tree summary from `src`,
    /// computed by the parallel delta-stepping driver.
    Sssp,
    /// Maximum bipartite matching size on the companion bipartite graph.
    Match,
    /// Metrics snapshot as a schema-versioned report document.
    Metrics,
    /// Liveness / readiness probe.
    Health,
    /// Live introspection: queue depth / watermark, shed counts, cache
    /// hit rate, worker busy gauges, latency percentiles.
    Stats,
    /// Drain the flight recorder's recent ring: the last N completed
    /// request traces, as schema-v5 trace objects.
    Trace,
    /// Graceful shutdown: stop accepting, drain, flush final report.
    Shutdown,
}

impl Op {
    /// Wire / fault-plan name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Path => "path",
            Self::Reach => "reach",
            Self::Sssp => "sssp",
            Self::Match => "match",
            Self::Metrics => "metrics",
            Self::Health => "health",
            Self::Stats => "stats",
            Self::Trace => "trace",
            Self::Shutdown => "shutdown",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "path" => Some(Self::Path),
            "reach" => Some(Self::Reach),
            "sssp" => Some(Self::Sssp),
            "match" => Some(Self::Match),
            "metrics" => Some(Self::Metrics),
            "health" => Some(Self::Health),
            "stats" => Some(Self::Stats),
            "trace" => Some(Self::Trace),
            "shutdown" => Some(Self::Shutdown),
            _ => None,
        }
    }
}

/// One request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// Source vertex (path / reach).
    pub src: u32,
    /// Destination vertex (path / reach).
    pub dst: u32,
    /// Per-request deadline in milliseconds, measured from admission;
    /// `None` uses the server default.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A path query.
    pub fn path(src: u32, dst: u32) -> Self {
        Self { op: Op::Path, src, dst, deadline_ms: None }
    }

    /// A reachability query.
    pub fn reach(src: u32, dst: u32) -> Self {
        Self { op: Op::Reach, src, dst, deadline_ms: None }
    }

    /// A single-source shortest-path tree query (parallel driver).
    pub fn sssp(src: u32) -> Self {
        Self { op: Op::Sssp, src, dst: 0, deadline_ms: None }
    }

    /// An operation without vertex arguments.
    pub fn plain(op: Op) -> Self {
        Self { op, src: 0, dst: 0, deadline_ms: None }
    }

    /// Attach an explicit deadline.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// The request as a frame payload.
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj().field("op", self.op.name());
        if matches!(self.op, Op::Path | Op::Reach) {
            json = json.field("src", u64::from(self.src)).field("dst", u64::from(self.dst));
        } else if self.op == Op::Sssp {
            json = json.field("src", u64::from(self.src));
        }
        if let Some(ms) = self.deadline_ms {
            json = json.field("deadline_ms", ms);
        }
        json
    }

    /// Parse a frame payload back into a request. Any missing or
    /// out-of-range field is a [`WireError::BadShape`] — the server
    /// answers `BAD_REQUEST` and stays up.
    pub fn from_json(json: &Json) -> Result<Self, WireError> {
        let op_name = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::BadShape("missing `op`".to_string()))?;
        let op = Op::parse(op_name)
            .ok_or_else(|| WireError::BadShape(format!("unknown op '{op_name}'")))?;
        let vertex = |key: &str| -> Result<u32, WireError> {
            let v = json
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| WireError::BadShape(format!("missing `{key}`")))?;
            u32::try_from(v).map_err(|_| WireError::BadShape(format!("`{key}` out of range")))
        };
        let (src, dst) = if matches!(op, Op::Path | Op::Reach) {
            (vertex("src")?, vertex("dst")?)
        } else if op == Op::Sssp {
            (vertex("src")?, 0)
        } else {
            (0, 0)
        };
        let deadline_ms = match json.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64().ok_or_else(|| WireError::BadShape("bad `deadline_ms`".to_string()))?,
            ),
        };
        Ok(Self { op, src, dst, deadline_ms })
    }
}

/// One response frame. The `status` field is the taxonomy the chaos
/// suite asserts on; `OK` carries an op-specific `data` object.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Success, with the answer payload.
    Ok(Json),
    /// Shed at admission: the queue is past its high watermark. Retry
    /// after the hinted backoff.
    Busy {
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The deadline expired before (or while) the query ran.
    DeadlineExceeded,
    /// The handler panicked; the request is poisoned, the server lives.
    Internal(String),
    /// The request frame did not parse into a valid request.
    BadRequest(String),
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl Response {
    /// Wire status string.
    pub fn status(&self) -> &'static str {
        match self {
            Self::Ok(_) => "OK",
            Self::Busy { .. } => "BUSY",
            Self::DeadlineExceeded => "DEADLINE_EXCEEDED",
            Self::Internal(_) => "INTERNAL",
            Self::BadRequest(_) => "BAD_REQUEST",
            Self::ShuttingDown => "SHUTTING_DOWN",
        }
    }

    /// The response as a frame payload.
    pub fn to_json(&self) -> Json {
        let json = Json::obj().field("status", self.status());
        match self {
            Self::Ok(data) => json.field("data", data.clone()),
            Self::Busy { retry_after_ms } => json.field("retry_after_ms", *retry_after_ms),
            Self::Internal(reason) | Self::BadRequest(reason) => {
                json.field("reason", reason.as_str())
            }
            Self::DeadlineExceeded | Self::ShuttingDown => json,
        }
    }

    /// Parse a frame payload back into a response.
    pub fn from_json(json: &Json) -> Result<Self, WireError> {
        let status = json
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::BadShape("missing `status`".to_string()))?;
        let reason = || {
            json.get("reason").and_then(Json::as_str).unwrap_or("(no reason given)").to_string()
        };
        match status {
            "OK" => Ok(Self::Ok(json.get("data").cloned().unwrap_or_else(Json::obj))),
            "BUSY" => Ok(Self::Busy {
                retry_after_ms: json.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(1),
            }),
            "DEADLINE_EXCEEDED" => Ok(Self::DeadlineExceeded),
            "INTERNAL" => Ok(Self::Internal(reason())),
            "BAD_REQUEST" => Ok(Self::BadRequest(reason())),
            "SHUTTING_DOWN" => Ok(Self::ShuttingDown),
            other => Err(WireError::BadShape(format!("unknown status '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = Request::path(3, 9).with_deadline_ms(250).to_json();
        let bytes = encode_frame(&payload);
        let (back, used) = decode_frame(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(Request::from_json(&back).expect("request"), Request::path(3, 9).with_deadline_ms(250));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Json::obj());
        bytes[0] = 0xFF; // claim ~4 GiB
        assert!(matches!(decode_frame(&bytes), Err(WireError::FrameTooLarge { .. })));
        // The streaming reader agrees.
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn torn_frame_reports_got_and_want() {
        let bytes = encode_frame(&Request::plain(Op::Health).to_json());
        let cut = &bytes[..bytes.len() - 3];
        match decode_frame(cut) {
            Err(WireError::Torn { got, want }) => assert_eq!(got + 3, want),
            other => unreachable!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn every_op_round_trips() {
        for op in [
            Op::Path,
            Op::Reach,
            Op::Sssp,
            Op::Match,
            Op::Metrics,
            Op::Health,
            Op::Stats,
            Op::Trace,
            Op::Shutdown,
        ] {
            assert_eq!(Op::parse(op.name()), Some(op));
            let req = if matches!(op, Op::Path | Op::Reach) {
                Request { op, src: 1, dst: 2, deadline_ms: Some(9) }
            } else if op == Op::Sssp {
                Request::sssp(1).with_deadline_ms(9)
            } else {
                Request::plain(op)
            };
            let back = Request::from_json(&req.to_json()).expect("round trip");
            assert_eq!(back, req);
        }
        assert_eq!(Op::parse("frobnicate"), None);
    }

    #[test]
    fn every_response_round_trips() {
        let responses = [
            Response::Ok(Json::obj().field("dist", 7u64)),
            Response::Busy { retry_after_ms: 12 },
            Response::DeadlineExceeded,
            Response::Internal("handler panicked".to_string()),
            Response::BadRequest("missing `op`".to_string()),
            Response::ShuttingDown,
        ];
        for resp in responses {
            let back = Response::from_json(&resp.to_json()).expect("round trip");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn bad_shapes_are_structured_errors() {
        for text in [
            "{}",
            r#"{"op": "warp"}"#,
            r#"{"op": "path"}"#,
            r#"{"op": "path", "src": 1, "dst": 99999999999}"#,
            r#"{"op": "path", "src": 1, "dst": 2, "deadline_ms": "soon"}"#,
        ] {
            let json = cachegraph_obs::parse_json(text).expect("valid JSON");
            assert!(matches!(Request::from_json(&json), Err(WireError::BadShape(_))), "{text}");
        }
        let no_status = cachegraph_obs::parse_json("{}").expect("json");
        assert!(matches!(Response::from_json(&no_status), Err(WireError::BadShape(_))));
    }

    #[test]
    fn retryable_classification() {
        assert!(WireError::Torn { got: 0, want: 4 }.is_retryable());
        assert!(WireError::Io(std::io::ErrorKind::ConnectionReset).is_retryable());
        assert!(!WireError::BadJson("x".to_string()).is_retryable());
        assert!(!WireError::FrameTooLarge { claimed: usize::MAX }.is_retryable());
    }
}
