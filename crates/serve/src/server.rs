//! The crash-only query daemon: admission control, a fixed worker
//! pool, deadline propagation, panic isolation, and graceful drain.
//!
//! # Threading model
//!
//! One *acceptor* thread blocks in `accept`. Each accepted connection
//! is handed to a short-lived *admission* thread that reads exactly one
//! request frame (under the socket read timeout, so a silent peer can
//! never wedge it) and then either answers inline (`health`, `metrics`,
//! `shutdown`, all shed-proof by construction), sheds (`BUSY` past the
//! high watermark), or enqueues a job for the fixed *worker pool*.
//! Workers pop jobs, re-check the deadline, run the query through the
//! engine with a deadline-derived cancellation closure, and write the
//! response frame. One request per connection: shedding is then a
//! per-request decision and a torn connection poisons exactly one
//! request.
//!
//! # Crash-only invariants
//!
//! * a panicking handler is caught per-request (`catch_unwind`); the
//!   client gets `INTERNAL`, the worker survives, the counter
//!   `serve.panics` ticks;
//! * deadlines are measured from *admission* and re-checked at dequeue
//!   and inside long queries (Dijkstra bucket boundaries) — an
//!   overloaded queue converts waiting into `DEADLINE_EXCEEDED`, never
//!   into a hang;
//! * the admission queue sheds `BUSY { retry_after_ms }` above the high
//!   watermark and re-admits below the low watermark (hysteresis, so
//!   the server does not flap at the boundary);
//! * graceful shutdown stops accepting, drains in-flight work under the
//!   drain deadline, and leaves a final metrics snapshot.
//!
//! # Fault injection
//!
//! [`FaultPlan`] reuses the supervisor grammar of PR 3
//! (`panic:OP,hang:OP,kill:OP`) keyed by [`Op::name`]. Each fault is
//! *one-shot*: it fires on the first matching request and clears, so a
//! retrying client observes the full arc — fault, structured error (or
//! torn frame), then a correct answer.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cachegraph_obs::{Json, Registry, Report, Snapshot, TraceBuilder, TraceConfig, Tracer};

use crate::cache::ShardedLru;
use crate::engine::{EngineConfig, QueryEngine, QueryError};
use crate::protocol::{encode_frame, read_frame, write_frame, Op, Request, Response, WireError};

/// Survive poisoned locks: a panicking thread must not wedge the queue.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fault to inject on the next request of a given op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the handler (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep through the deadline before computing (exercises
    /// `DEADLINE_EXCEEDED` and queue backpressure).
    Hang,
    /// Write a torn response frame and drop the connection (exercises
    /// client-side torn-frame retry).
    Kill,
}

/// One-shot fault injections keyed by op name, sharing the
/// `panic:ID,hang:ID,kill:ID` grammar of the bench supervisor. Each
/// entry fires once, then clears.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Mutex<BTreeMap<String, Fault>>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Parse `panic:path,hang:reach,kill:match`. Op names are not
    /// validated here — a fault keyed on an op that never arrives
    /// simply never fires.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = BTreeMap::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (kind, op) = part
                .trim()
                .split_once(':')
                .ok_or_else(|| format!("fault `{part}` is not KIND:OP"))?;
            let fault = match kind {
                "panic" => Fault::Panic,
                "hang" => Fault::Hang,
                "kill" => Fault::Kill,
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            faults.insert(op.to_string(), fault);
        }
        Ok(Self { faults: Mutex::new(faults) })
    }

    /// Take (and clear) the fault armed for `op`, if any.
    pub fn take(&self, op: &str) -> Option<Fault> {
        lock(&self.faults).remove(op)
    }

    /// Number of faults still armed.
    pub fn armed(&self) -> usize {
        lock(&self.faults).len()
    }
}

/// Everything tunable about the server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// How to build the query engine.
    pub engine: EngineConfig,
    /// Worker pool size.
    pub workers: usize,
    /// Queue length at or above which new queries are shed.
    pub queue_high: usize,
    /// Queue length at or below which shedding stops (hysteresis).
    pub queue_low: usize,
    /// Deadline for requests that do not carry their own.
    pub default_deadline_ms: u64,
    /// Backoff hint attached to `BUSY` responses.
    pub retry_after_ms: u64,
    /// Socket read timeout for request frames.
    pub read_timeout_ms: u64,
    /// How long graceful shutdown may spend draining in-flight work.
    pub drain_deadline_ms: u64,
    /// Sleep injected by a `hang:` fault.
    pub hang_ms: u64,
    /// Result cache shape.
    pub cache_shards: usize,
    /// Result cache per-shard capacity.
    pub cache_per_shard: usize,
    /// Request-scoped tracing: flight-recorder depth, JSONL sampling,
    /// trace-id seed. Tracing is on by default; disabling it makes
    /// every trace call a branch on `None` (the overhead baseline).
    pub trace: TraceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            workers: 4,
            queue_high: 64,
            queue_low: 32,
            default_deadline_ms: 1_000,
            retry_after_ms: 5,
            read_timeout_ms: 2_000,
            drain_deadline_ms: 5_000,
            hang_ms: 400,
            cache_shards: 8,
            cache_per_shard: 128,
            trace: TraceConfig::default(),
        }
    }
}

/// One admitted query waiting for (or held by) a worker. The trace
/// builder rides along: its monotonic cursor was started on the
/// admission thread, so the worker's first mark measures queue wait
/// without any cross-thread clock handoff.
struct Job {
    stream: TcpStream,
    req: Request,
    enqueued: Instant,
    deadline: Instant,
    tb: TraceBuilder,
}

struct Metrics {
    ok: cachegraph_obs::Counter,
    shed: cachegraph_obs::Counter,
    panics: cachegraph_obs::Counter,
    deadline_exceeded: cachegraph_obs::Counter,
    bad_request: cachegraph_obs::Counter,
    torn_writes: cachegraph_obs::Counter,
    op_path: cachegraph_obs::Counter,
    op_reach: cachegraph_obs::Counter,
    op_sssp: cachegraph_obs::Counter,
    op_match: cachegraph_obs::Counter,
    queue_depth: cachegraph_obs::Gauge,
    queue_high_watermark: cachegraph_obs::Gauge,
    workers_busy: cachegraph_obs::Gauge,
    latency_ns: cachegraph_obs::Histogram,
}

struct Shared {
    cfg: ServerConfig,
    engine: QueryEngine,
    cache: ShardedLru<Json>,
    fault_plan: FaultPlan,
    tracer: Tracer,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutting_down: AtomicBool,
    shedding: AtomicBool,
    in_flight: AtomicUsize,
    high_watermark: AtomicUsize,
    registry: Registry,
    m: Metrics,
    port: u16,
}

impl Shared {
    fn queue_depth(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Copy the sharded cache's internal atomics into registry gauges,
    /// so metrics snapshots and the final report carry per-shard cache
    /// stats without the cache itself referencing the registry.
    fn sync_cache_gauges(&self) {
        for (i, s) in self.cache.stats().iter().enumerate() {
            self.registry.gauge(&format!("serve.cache.shard{i}.hits")).set(s.hits as i64);
            self.registry.gauge(&format!("serve.cache.shard{i}.misses")).set(s.misses as i64);
            self.registry.gauge(&format!("serve.cache.shard{i}.evictions")).set(s.evictions as i64);
            self.registry.gauge(&format!("serve.cache.shard{i}.len")).set(s.len as i64);
        }
    }

    /// Count one arriving query request against its per-op counter
    /// (sheds included: the counters audit demand, not completions).
    fn count_op(&self, op: Op) {
        match op {
            Op::Path => self.m.op_path.incr(),
            Op::Reach => self.m.op_reach.incr(),
            Op::Sssp => self.m.op_sssp.incr(),
            Op::Match => self.m.op_match.incr(),
            _ => {}
        }
    }

    /// The `stats` answer payload: a small live snapshot, answered
    /// inline on the admission thread so it works even while the queue
    /// is shedding — that is the moment it is most needed.
    fn stats_payload(&self) -> Json {
        let snapshot = self.registry.snapshot();
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let mut latency = Json::obj();
        if let Some(h) = snapshot.histograms.get("serve.latency_ns") {
            for (label, q) in [("p50_ns", 0.50), ("p90_ns", 0.90), ("p99_ns", 0.99)] {
                latency = latency.field(label, h.percentile(q).unwrap_or(0));
            }
        }
        Json::obj()
            .field("queue_depth", self.queue_depth())
            .field("queue_high_watermark", self.high_watermark.load(Ordering::Relaxed))
            .field("shedding", self.shedding.load(Ordering::Relaxed))
            .field("workers", self.cfg.workers.max(1))
            .field("workers_busy", self.in_flight.load(Ordering::Relaxed))
            .field("cache_hit_ratio", self.cache.hit_ratio())
            .field("ok", counter("serve.ok"))
            .field("shed", counter("serve.shed"))
            .field("deadline_exceeded", counter("serve.deadline_exceeded"))
            .field("panics", counter("serve.panics"))
            .field("bad_request", counter("serve.bad_request"))
            .field("torn_writes", counter("serve.torn_writes"))
            .field("op_path", counter("serve.op.path"))
            .field("op_reach", counter("serve.op.reach"))
            .field("op_sssp", counter("serve.op.sssp"))
            .field("op_match", counter("serve.op.match"))
            .field("latency", latency)
    }

    /// The `trace` answer payload: drain the flight recorder's recent
    /// ring. The error ring is untouched, so live introspection cannot
    /// rob the final report's post-mortem section.
    fn trace_payload(&self) -> Json {
        let traces: Vec<Json> =
            self.tracer.drain_recent().iter().map(cachegraph_obs::TraceRecord::to_json).collect();
        Json::obj().field("count", traces.len()).field("traces", Json::Arr(traces))
    }

    /// The `metrics` answer payload: a full schema-versioned report
    /// document (traces excluded — use `trace` / the final report).
    fn metrics_report(&self) -> Json {
        self.sync_cache_gauges();
        let mut report = Report::new("cachegraph-serve");
        report.set_metrics(&self.registry.snapshot());
        report.push_experiment(
            Json::obj()
                .field("name", "serve.state")
                .field("queue_depth", self.queue_depth())
                .field("queue_high_watermark", self.high_watermark.load(Ordering::Relaxed))
                .field("shedding", self.shedding.load(Ordering::Relaxed))
                .field("in_flight", self.in_flight.load(Ordering::Relaxed))
                .field("cache_hit_ratio", self.cache.hit_ratio())
                .field("faults_armed", self.fault_plan.armed()),
        );
        report.to_json()
    }

    fn health_payload(&self) -> Json {
        Json::obj()
            .field("status", if self.shutting_down.load(Ordering::Relaxed) { "draining" } else { "up" })
            .field("queue_depth", self.queue_depth())
            .field("shedding", self.shedding.load(Ordering::Relaxed))
            .field("n", self.engine.num_vertices())
            .field("apsp", self.engine.has_apsp())
    }

    /// Admission decision for a query op. `Ok(())` admits; `Err` is the
    /// response to send instead.
    fn admit(&self) -> Result<(), Response> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(Response::ShuttingDown);
        }
        let depth = self.queue_depth();
        if depth >= self.cfg.queue_high {
            self.shedding.store(true, Ordering::Relaxed);
        } else if depth <= self.cfg.queue_low {
            self.shedding.store(false, Ordering::Relaxed);
        }
        if self.shedding.load(Ordering::Relaxed) && depth > self.cfg.queue_low {
            self.m.shed.incr();
            return Err(Response::Busy { retry_after_ms: self.cfg.retry_after_ms });
        }
        Ok(())
    }

    /// Run one admitted query, marking trace segments as it goes:
    /// `cache` after the result-cache probe, `compute` after the engine
    /// returns (tagged with the cancellation closure's poll count).
    /// Called inside `catch_unwind`; panics (injected or real) are the
    /// caller's to absorb — the builder keeps whatever marks landed
    /// before the panic, which is exactly what the post-mortem wants.
    fn handle_query(&self, req: &Request, deadline: Instant, tb: &mut TraceBuilder) -> Response {
        // Compute-boundary deadline check: queries short enough to
        // finish under the in-kernel poll interval (or stalled by a
        // hang fault before compute began) still honour the deadline.
        if Instant::now() >= deadline {
            self.m.deadline_exceeded.incr();
            return Response::DeadlineExceeded;
        }
        let n = self.engine.num_vertices() as u32;
        let bad_vertex = match req.op {
            Op::Path | Op::Reach => req.src >= n || req.dst >= n,
            Op::Sssp => req.src >= n,
            _ => false,
        };
        if bad_vertex {
            self.m.bad_request.incr();
            return Response::BadRequest(format!(
                "vertex out of range (n = {n}, src = {}, dst = {})",
                req.src, req.dst
            ));
        }
        let key = cache_key(req.op, req.src, req.dst);
        let probe = self.cache.get(key);
        tb.mark("cache");
        tb.tag("cache", if probe.is_some() { "hit" } else { "miss" });
        tb.tag("cache_shard", self.cache.shard_of(key) as u64);
        if let Some(hit) = probe {
            self.m.ok.incr();
            return Response::Ok(hit);
        }
        // Count the solver's deadline polls: one closure call per
        // kernel-side cancellation check (Dijkstra every 64 extract-
        // mins, FW per tile kernel call, matching per augmentation
        // round — see each crate's `cancel` module).
        // An atomic, because the parallel TaskGraph drivers (`sssp`,
        // `match`) poll the same hook from every worker thread.
        let polls = AtomicU64::new(0);
        let cancel = || {
            polls.fetch_add(1, Ordering::Relaxed);
            Instant::now() >= deadline
        };
        let computed = match req.op {
            Op::Path => self.engine.path(req.src, req.dst, &cancel),
            Op::Reach => self.engine.reach(req.src, req.dst, &cancel),
            Op::Sssp => self.engine.sssp(req.src, &cancel),
            Op::Match => self.engine.matching(&cancel),
            // Inline ops never reach the queue; answer anyway so a
            // hand-crafted frame cannot crash a worker.
            Op::Metrics => return Response::Ok(self.metrics_report()),
            Op::Health => return Response::Ok(self.health_payload()),
            Op::Stats => return Response::Ok(self.stats_payload()),
            Op::Trace => return Response::Ok(self.trace_payload()),
            Op::Shutdown => return Response::Ok(Json::obj().field("draining", true)),
        };
        tb.mark("compute");
        tb.tag("cancel_polls", polls.into_inner());
        match computed {
            Ok(data) => {
                self.cache.put(key, data.clone());
                self.m.ok.incr();
                Response::Ok(data)
            }
            Err(QueryError::Cancelled) => {
                self.m.deadline_exceeded.incr();
                Response::DeadlineExceeded
            }
            Err(e @ QueryError::BadVertex { .. }) => {
                self.m.bad_request.incr();
                Response::BadRequest(e.to_string())
            }
        }
    }
}

/// Injective cache key: 2 op bits, then `src`/`dst` (both below the
/// graph size, which is far under 2^31 — validated before lookup).
fn cache_key(op: Op, src: u32, dst: u32) -> u64 {
    let tag: u64 = match op {
        Op::Path => 0,
        Op::Reach => 1,
        Op::Sssp => 2,
        _ => 3,
    };
    (tag << 62) | (u64::from(src) << 31) | u64::from(dst)
}

/// A running server: its port and the threads behind it.
pub struct ServerHandle {
    port: u16,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound port (useful with port 0 for ephemeral binds).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// True once `shutdown` was received (the server is draining or
    /// finished).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    /// Attach the JSONL sink the tracer writes sampled traces to. Call
    /// before serving traffic (traces completed earlier are not
    /// rewritten).
    pub fn attach_trace_sink(&self, sink: Box<dyn Write + Send>) {
        self.shared.tracer.attach_jsonl_sink(sink);
    }

    /// Wait for the server to finish (after a `shutdown` request
    /// drains it) and return the final metrics snapshot, with cache
    /// gauges synced.
    pub fn join(self) -> Snapshot {
        self.join_report().0
    }

    /// [`join`](Self::join), plus the final report: metrics, the
    /// `serve.state` experiment, and the flushed flight recorder (both
    /// rings — the post-mortem section). This is the v5 document the
    /// chaos suite parses back.
    pub fn join_report(mut self) -> (Snapshot, Report) {
        for h in self.acceptor.take().into_iter().chain(self.workers.drain(..)) {
            // A panicked service thread already isolated the damage;
            // the final snapshot is still valid.
            let _ = h.join();
        }
        self.shared.sync_cache_gauges();
        let snapshot = self.shared.registry.snapshot();
        let report = match Report::from_json(&self.shared.metrics_report()) {
            Ok(r) => r,
            Err(_) => Report::new("cachegraph-serve"),
        };
        let mut report = report;
        for trace in self.shared.tracer.flush() {
            report.push_trace(trace.to_json());
        }
        (snapshot, report)
    }

    /// The final report document for the current state (metrics only;
    /// [`join_report`](Self::join_report) adds the flight recorder).
    pub fn report_json(&self) -> Json {
        self.shared.metrics_report()
    }
}

/// Bind `127.0.0.1:port` (0 = ephemeral), build the engine, start the
/// acceptor and worker pool, and return the handle.
pub fn start(
    cfg: ServerConfig,
    fault_plan: FaultPlan,
    registry: Registry,
) -> std::io::Result<ServerHandle> {
    start_on(cfg, fault_plan, registry, 0)
}

/// [`start`] on an explicit port.
pub fn start_on(
    cfg: ServerConfig,
    fault_plan: FaultPlan,
    registry: Registry,
    port: u16,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let port = listener.local_addr()?.port();
    let engine = QueryEngine::build(&cfg.engine);
    let m = Metrics {
        ok: registry.counter("serve.ok"),
        shed: registry.counter("serve.shed"),
        panics: registry.counter("serve.panics"),
        deadline_exceeded: registry.counter("serve.deadline_exceeded"),
        bad_request: registry.counter("serve.bad_request"),
        torn_writes: registry.counter("serve.torn_writes"),
        op_path: registry.counter("serve.op.path"),
        op_reach: registry.counter("serve.op.reach"),
        op_sssp: registry.counter("serve.op.sssp"),
        op_match: registry.counter("serve.op.match"),
        queue_depth: registry.gauge("serve.queue_depth"),
        queue_high_watermark: registry.gauge("serve.queue_high_watermark"),
        workers_busy: registry.gauge("serve.workers_busy"),
        latency_ns: registry.histogram("serve.latency_ns"),
    };
    let cache = ShardedLru::new(cfg.cache_shards, cfg.cache_per_shard);
    let workers = cfg.workers.max(1);
    let tracer = Tracer::new(cfg.trace.clone());
    let shared = Arc::new(Shared {
        cfg,
        engine,
        cache,
        fault_plan,
        tracer,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutting_down: AtomicBool::new(false),
        shedding: AtomicBool::new(false),
        in_flight: AtomicUsize::new(0),
        high_watermark: AtomicUsize::new(0),
        registry,
        m,
        port,
    });
    let worker_handles = (0..workers)
        .map(|_| {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&s))
        })
        .collect();
    let acceptor = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &s))
    };
    Ok(ServerHandle { port, acceptor: Some(acceptor), workers: worker_handles, shared })
}

/// Accept connections until shutdown, handing each to an admission
/// thread so a slow or silent client never blocks `accept`.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutting_down.load(Ordering::Acquire) {
                break;
            }
            continue;
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            let mut stream = stream;
            let _ = write_frame(&mut stream, &Response::ShuttingDown.to_json());
            break;
        }
        let s = Arc::clone(shared);
        std::thread::spawn(move || admit_connection(stream, &s));
    }
    drain(shared);
}

/// Read one request frame and route it: inline op, shed, or enqueue.
///
/// The trace clock starts *before* the frame read, so the `admission`
/// segment covers everything the request waited on up front: socket
/// read, parse, the admission decision, and the enqueue itself.
fn admit_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let arrived = Instant::now();
    let timeout = Duration::from_millis(shared.cfg.read_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let req = match read_frame(&mut stream).and_then(|j| Request::from_json(&j)) {
        Ok(req) => req,
        Err(e @ (WireError::BadShape(_) | WireError::BadJson(_) | WireError::BadUtf8
            | WireError::FrameTooLarge { .. })) => {
            // The peer spoke, badly: tell it so, structured.
            shared.m.bad_request.incr();
            let _ = write_frame(&mut stream, &Response::BadRequest(e.to_string()).to_json());
            return;
        }
        Err(_) => return, // torn / timed out / vanished: nothing to answer
    };
    match req.op {
        Op::Health => {
            let _ = write_frame(&mut stream, &Response::Ok(shared.health_payload()).to_json());
        }
        Op::Metrics => {
            let _ = write_frame(&mut stream, &Response::Ok(shared.metrics_report()).to_json());
        }
        Op::Stats => {
            let _ = write_frame(&mut stream, &Response::Ok(shared.stats_payload()).to_json());
        }
        Op::Trace => {
            let _ = write_frame(&mut stream, &Response::Ok(shared.trace_payload()).to_json());
        }
        Op::Shutdown => {
            shared.shutting_down.store(true, Ordering::Release);
            shared.available.notify_all();
            let _ = write_frame(&mut stream, &Response::Ok(Json::obj().field("draining", true)).to_json());
            // Wake the acceptor out of its blocking accept.
            let _ = TcpStream::connect(("127.0.0.1", shared.port));
        }
        Op::Path | Op::Reach | Op::Sssp | Op::Match => {
            shared.count_op(req.op);
            let mut tb = shared.tracer.begin_at(arrived, req.op.name());
            if let Err(resp) = shared.admit() {
                // Shed and drain refusals are traced too: every BUSY /
                // SHUTTING_DOWN is a non-OK outcome, so the sampler
                // always captures it.
                tb.mark("admission");
                let _ = write_frame(&mut stream, &resp.to_json());
                tb.mark("write");
                if let Some(rec) = tb.finish(resp.status()) {
                    shared.tracer.record(rec);
                }
                return;
            }
            let now = Instant::now();
            let ms = req.deadline_ms.unwrap_or(shared.cfg.default_deadline_ms).max(1);
            tb.mark("admission");
            let job = Job {
                stream,
                req,
                enqueued: now,
                deadline: now + Duration::from_millis(ms),
                tb,
            };
            let depth = {
                let mut q = lock(&shared.queue);
                q.push_back(job);
                q.len()
            };
            shared.high_watermark.fetch_max(depth, Ordering::Relaxed);
            shared.m.queue_high_watermark.set(shared.high_watermark.load(Ordering::Relaxed) as i64);
            shared.m.queue_depth.set(depth as i64);
            shared.available.notify_one();
        }
    }
}

/// Pop jobs until shutdown-and-empty; isolate each request's panics.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        let Some(mut job) = job else {
            return;
        };
        let busy = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        shared.m.workers_busy.set(busy as i64);
        shared.m.queue_depth.set(shared.queue_depth() as i64);
        serve_job(shared, &mut job);
        shared.m.latency_ns.record(job.enqueued.elapsed().as_nanos() as u64);
        let busy = shared.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
        shared.m.workers_busy.set(busy as i64);
    }
}

/// Handle one dequeued job: deadline re-check, fault injection, the
/// query itself under `catch_unwind`, and the response write.
///
/// The first mark closes the `queue` segment (time from enqueue to the
/// worker claiming the job). The trace builder stays *outside* the
/// `catch_unwind` closure's panic path — whatever marks and tags
/// landed before a panic survive into the `INTERNAL` partial trace,
/// which is the whole point of the flight recorder.
fn serve_job(shared: &Arc<Shared>, job: &mut Job) {
    job.tb.mark("queue");
    if Instant::now() >= job.deadline {
        shared.m.deadline_exceeded.incr();
        let _ = write_frame(&mut job.stream, &Response::DeadlineExceeded.to_json());
        job.tb.mark("write");
        job.tb.tag("expired_in_queue", true);
        finish_trace(shared, job, "DEADLINE_EXCEEDED");
        return;
    }
    let fault = shared.fault_plan.take(job.req.op.name());
    if fault == Some(Fault::Kill) {
        // A prefix promising 64 payload bytes, then 2 bytes and a dead
        // socket: the client's decoder must classify this as torn.
        let _ = job.stream.write_all(&[0, 0, 0, 64, b'{', b'"']);
        let _ = job.stream.flush();
        shared.m.torn_writes.incr();
        job.tb.mark("write");
        job.tb.tag("fault", "kill");
        job.tb.tag("torn_write", true);
        finish_trace(shared, job, "INTERNAL");
        return; // dropping the stream cuts the connection
    }
    let outcome = {
        let shared = Arc::clone(shared);
        let req = job.req.clone();
        let deadline = job.deadline;
        let tb = &mut job.tb;
        catch_unwind(AssertUnwindSafe(move || {
            match fault {
                Some(Fault::Panic) => {
                    // tidy: allow(panic-policy) -- injected fault; absorbed by catch_unwind below
                    panic!("injected fault: panic on `{}`", req.op.name());
                }
                Some(Fault::Hang) => {
                    // Injected stall: long enough to blow most deadlines,
                    // short enough to keep chaos tests fast.
                    std::thread::sleep(Duration::from_millis(shared.cfg.hang_ms));
                    // Attribute the stall to compute (merged with any
                    // real compute time that follows).
                    tb.mark("compute");
                    tb.tag("fault", "hang");
                }
                _ => {}
            }
            shared.handle_query(&req, deadline, tb)
        }))
    };
    let response = match outcome {
        Ok(resp) => resp,
        Err(_) => {
            shared.m.panics.incr();
            // Close the open interval: the time up to the panic is
            // compute time the request actually spent.
            job.tb.mark("compute");
            job.tb.tag("panic", true);
            Response::Internal("handler panicked; request poisoned, server alive".to_string())
        }
    };
    let bytes = encode_frame(&response.to_json());
    job.tb.mark("serialize");
    let _ = job.stream.write_all(&bytes).and_then(|()| job.stream.flush());
    job.tb.mark("write");
    finish_trace(shared, job, response.status());
}

/// Seal the job's trace and file it with the tracer.
fn finish_trace(shared: &Arc<Shared>, job: &mut Job, outcome: &str) {
    let tb = std::mem::replace(&mut job.tb, TraceBuilder::inert());
    if let Some(rec) = tb.finish(outcome) {
        shared.tracer.record(rec);
    }
}

/// Drain after shutdown: wait (bounded by the drain deadline) for the
/// queue to empty and in-flight work to finish.
fn drain(shared: &Arc<Shared>) {
    let deadline = Instant::now() + Duration::from_millis(shared.cfg.drain_deadline_ms);
    shared.available.notify_all();
    while Instant::now() < deadline {
        if shared.queue_depth() == 0 && shared.in_flight.load(Ordering::SeqCst) == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.m.queue_depth.set(shared.queue_depth() as i64);
}

/// Round-trip helper used by tests and the CLI `query` subcommand: one
/// connection, one request, one response.
pub fn request_once(port: u16, req: &Request, timeout_ms: u64) -> Result<Response, WireError> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| WireError::Io(e.kind()))?;
    let timeout = Some(Duration::from_millis(timeout_ms.max(1)));
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let _ = stream.set_nodelay(true);
    write_frame(&mut stream, &req.to_json())?;
    let json = read_frame(&mut stream)?;
    Response::from_json(&json)
}

/// Parse a `metrics` response payload back into a [`Report`] — used by
/// tests asserting the snapshot is a valid schema-v4 document.
pub fn report_from_response(resp: &Response) -> Option<Report> {
    match resp {
        Response::Ok(data) => Report::from_json(data).ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_and_fires_once() {
        let plan = FaultPlan::parse("panic:path, hang:reach,kill:match").expect("parses");
        assert_eq!(plan.armed(), 3);
        assert_eq!(plan.take("path"), Some(Fault::Panic));
        assert_eq!(plan.take("path"), None, "one-shot");
        assert_eq!(plan.take("reach"), Some(Fault::Hang));
        assert_eq!(plan.take("match"), Some(Fault::Kill));
        assert_eq!(plan.armed(), 0);
    }

    #[test]
    fn fault_plan_rejects_junk() {
        assert!(FaultPlan::parse("explode:path").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("").expect("empty is fine").armed() == 0);
    }

    #[test]
    fn cache_key_is_injective_over_ops_and_vertices() {
        let mut seen = std::collections::BTreeSet::new();
        for op in [Op::Path, Op::Reach, Op::Sssp, Op::Match] {
            for src in [0u32, 1, 77, 1_000_000] {
                for dst in [0u32, 2, 78, 999_999] {
                    let k = cache_key(op, src, dst);
                    assert!(seen.insert(k), "collision at {op:?} {src} {dst}");
                }
            }
        }
    }
}
