//! Three-Cs miss classification: compulsory / capacity / conflict.
//!
//! The paper's layout optimizations are aimed at *specific* miss classes:
//! the Block Data Layout eliminates self-interference (conflict) misses
//! inside a tile, the 2:1-rule associativity adjustment targets
//! cross-interference (conflict) misses between the three tile operands,
//! and Eq. 13 sizes the tile against capacity misses (§3.1). This module
//! classifies each demand miss of a cache using the classic scheme:
//!
//! * **compulsory** — the line was never referenced before;
//! * **capacity** — a fully-associative LRU cache of the same total size
//!   would also have missed;
//! * **conflict** — everything else (the set-mapping is to blame).
//!
//! Implementation: a [`ClassifyingCache`] runs the real set-associative
//! cache alongside a same-capacity fully-associative LRU shadow and a
//! set of ever-seen lines.

use std::collections::HashSet;

use crate::cache::{AccessKind, SetAssocCache};
use crate::config::CacheConfig;

/// The class of a single miss (see the module docs for the scheme).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissClass {
    /// First-ever touch of the line.
    Compulsory,
    /// Missed in the fully-associative shadow too.
    Capacity,
    /// Hit in the shadow, missed in the real cache: placement's fault.
    Conflict,
}

impl MissClass {
    /// Short lowercase label (`compulsory` / `capacity` / `conflict`),
    /// matching the report field names.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Compulsory => "compulsory",
            Self::Capacity => "capacity",
            Self::Conflict => "conflict",
        }
    }
}

/// Miss counts by class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissClasses {
    /// First-ever touch of the line.
    pub compulsory: u64,
    /// Missed in the fully-associative shadow too.
    pub capacity: u64,
    /// Hit in the shadow, missed in the real cache: placement's fault.
    pub conflict: u64,
}

impl MissClasses {
    /// Total misses across the classes.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Count one miss of `class`.
    pub fn add(&mut self, class: MissClass) {
        match class {
            MissClass::Compulsory => self.compulsory += 1,
            MissClass::Capacity => self.capacity += 1,
            MissClass::Conflict => self.conflict += 1,
        }
    }

    /// The class with the most misses (ties break toward compulsory,
    /// then capacity); `None` when there were no misses at all.
    pub fn dominant(&self) -> Option<MissClass> {
        if self.total() == 0 {
            return None;
        }
        let mut best = (MissClass::Compulsory, self.compulsory);
        for (class, count) in
            [(MissClass::Capacity, self.capacity), (MissClass::Conflict, self.conflict)]
        {
            if count > best.1 {
                best = (class, count);
            }
        }
        Some(best.0)
    }
}

/// A cache plus the machinery to attribute each miss to a class.
#[derive(Clone, Debug)]
pub struct ClassifyingCache {
    real: SetAssocCache,
    /// Fully-associative shadow of equal capacity and line size.
    shadow: SetAssocCache,
    seen: HashSet<u64>,
    classes: MissClasses,
    accesses: u64,
}

impl ClassifyingCache {
    /// Build for the same geometry as `config`.
    pub fn new(config: CacheConfig) -> Self {
        let shadow_cfg = CacheConfig::new(
            "shadow-FA",
            config.size_bytes,
            config.line_bytes,
            config.size_bytes / config.line_bytes,
        );
        Self {
            real: SetAssocCache::new(config),
            shadow: SetAssocCache::new(shadow_cfg),
            seen: HashSet::new(),
            classes: MissClasses::default(),
            accesses: 0,
        }
    }

    /// Simulate one access of `size` bytes, classifying any misses.
    pub fn access(&mut self, addr: u64, size: usize, kind: AccessKind) {
        debug_assert!(size > 0);
        let line_bytes = self.real.config().line_bytes as u64;
        let first = addr / line_bytes;
        let last = (addr + size as u64 - 1) / line_bytes;
        for l in first..=last {
            self.access_line(l * line_bytes, kind);
        }
    }

    fn access_line(&mut self, line_addr: u64, kind: AccessKind) {
        self.accesses += 1;
        let real_hit = self.real.access(line_addr, kind).hit;
        let shadow_hit = self.shadow.access(line_addr, kind).hit;
        if real_hit {
            return;
        }
        let class = if self.seen.insert(line_addr) {
            MissClass::Compulsory
        } else if !shadow_hit {
            MissClass::Capacity
        } else {
            MissClass::Conflict
        };
        self.classes.add(class);
    }

    /// The classification so far.
    pub fn classes(&self) -> MissClasses {
        self.classes
    }

    /// Demand accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The underlying real cache (for its raw stats).
    pub fn real(&self) -> &SetAssocCache {
        &self.real
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 sets x 1 way x 16 B = 32 B direct-mapped cache.
    fn tiny_dm() -> ClassifyingCache {
        ClassifyingCache::new(CacheConfig::new("t", 32, 16, 1))
    }

    #[test]
    fn first_touches_are_compulsory() {
        let mut c = tiny_dm();
        c.access(0, 4, AccessKind::Read);
        c.access(16, 4, AccessKind::Read);
        let m = c.classes();
        assert_eq!(m.compulsory, 2);
        assert_eq!(m.capacity, 0);
        assert_eq!(m.conflict, 0);
    }

    #[test]
    fn conflict_misses_are_attributed_to_placement() {
        let mut c = tiny_dm();
        // Lines 0 and 32 both map to set 0 of the direct-mapped cache but
        // fit together in the 2-line fully-associative shadow.
        for _ in 0..5 {
            c.access(0, 4, AccessKind::Read);
            c.access(32, 4, AccessKind::Read);
        }
        let m = c.classes();
        assert_eq!(m.compulsory, 2);
        assert_eq!(m.capacity, 0);
        assert_eq!(m.conflict, 8, "ping-pong in one set while the FA shadow holds both");
    }

    #[test]
    fn capacity_misses_when_working_set_exceeds_cache() {
        let mut c = tiny_dm();
        // 3 lines round-robin through a 2-line cache: even fully
        // associative LRU misses every access after warmup.
        for _ in 0..4 {
            for a in [0u64, 16, 32] {
                c.access(a, 4, AccessKind::Read);
            }
        }
        let m = c.classes();
        assert_eq!(m.compulsory, 3);
        assert!(m.capacity > 0, "LRU thrash must be charged to capacity: {m:?}");
    }

    #[test]
    fn total_matches_real_cache_misses() {
        let mut c = ClassifyingCache::new(CacheConfig::new("t", 128, 16, 2));
        // A pseudo-random-ish access pattern.
        let mut a = 7u64;
        for _ in 0..500 {
            a = a.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            c.access(a % 1024, 4, AccessKind::Read);
        }
        assert_eq!(c.classes().total(), c.real().stats().misses);
    }

    #[test]
    fn dominant_class_picks_the_largest_bucket() {
        let mut m = MissClasses::default();
        assert_eq!(m.dominant(), None);
        m.add(MissClass::Compulsory);
        m.add(MissClass::Conflict);
        m.add(MissClass::Conflict);
        assert_eq!(m.dominant(), Some(MissClass::Conflict));
        assert_eq!(m.dominant().map(|c| c.label()), Some("conflict"));
        // Ties break toward the earlier class in the scheme's order.
        m.add(MissClass::Compulsory);
        assert_eq!(m.dominant(), Some(MissClass::Compulsory));
    }

    #[test]
    fn hits_are_not_classified() {
        let mut c = tiny_dm();
        c.access(0, 4, AccessKind::Read);
        c.access(0, 4, AccessKind::Read);
        c.access(4, 4, AccessKind::Read); // same line
        assert_eq!(c.classes().total(), 1);
        assert_eq!(c.accesses(), 3);
    }
}
