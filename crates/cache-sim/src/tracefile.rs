//! Address-trace recording and replay.
//!
//! SimpleScalar's `EIO` traces let an expensive workload be captured once
//! and replayed against many cache configurations; this module provides
//! the same workflow. A [`TraceRecorder`] wraps any instrumented run and
//! captures its access stream into a compact delta-encoded binary buffer;
//! [`replay`] drives any [`MemoryHierarchy`] (or a [`ReuseProfiler`])
//! from the recording without re-running the algorithm.
//!
//! Format (little-endian, after an 8-byte magic/version header): each
//! access is a 1-byte tag (`kind` + delta class) followed by the address
//! delta from the previous access (i8 / i32 / i64 by class) and a 1-byte
//! size. Graph-algorithm traces are dominated by short strides, so the
//! common case is 3 bytes per access versus 13 raw.
//!
//! Traces are plain `Vec<u8>` buffers, so they can be written to and read
//! from disk with no further framing; [`write_trace_file`] /
//! [`read_trace_file`] do exactly that, and the reader fully validates
//! the recording up front so a truncated or bit-flipped file surfaces a
//! [`TraceError`] at load time instead of half-way through a replay.

use std::path::Path;

use crate::cache::AccessKind;
use crate::hierarchy::MemoryHierarchy;
use crate::reuse::ReuseProfiler;

const MAGIC: &[u8; 6] = b"CGTRC1";

/// Tag bits: bit 0 = write, bits 1-2 = delta width (0: i8, 1: i32, 2: i64).
const WIDTH_I8: u8 = 0 << 1;
const WIDTH_I32: u8 = 1 << 1;
const WIDTH_I64: u8 = 2 << 1;

/// Records an access stream into a compact buffer.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    buf: Vec<u8>,
    prev_addr: u64,
    count: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// An empty recording.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u16.to_le_bytes()); // reserved
        Self { buf, prev_addr: 0, count: 0 }
    }

    /// Record one access.
    pub fn record(&mut self, addr: u64, size: usize, kind: AccessKind) {
        debug_assert!(size > 0 && size <= 255, "size must fit one byte");
        let delta = addr.wrapping_sub(self.prev_addr) as i64;
        self.prev_addr = addr;
        let write_bit = u8::from(kind == AccessKind::Write);
        if let Ok(d) = i8::try_from(delta) {
            self.buf.push(write_bit | WIDTH_I8);
            self.buf.extend_from_slice(&d.to_le_bytes());
        } else if let Ok(d) = i32::try_from(delta) {
            self.buf.push(write_bit | WIDTH_I32);
            self.buf.extend_from_slice(&d.to_le_bytes());
        } else {
            self.buf.push(write_bit | WIDTH_I64);
            self.buf.extend_from_slice(&delta.to_le_bytes());
        }
        // Simulator accesses are 1..=8 bytes; saturate defensively rather
        // than truncate if a caller ever passes a larger size.
        self.buf.push(u8::try_from(size).unwrap_or(u8::MAX));
        self.count += 1;
    }

    /// Number of accesses recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes used by the encoding so far.
    pub fn encoded_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Finish and return the encoded trace.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Errors from decoding a trace.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Header missing or wrong.
    BadHeader,
    /// Buffer ended mid-record.
    Truncated,
    /// Unknown tag bits.
    BadTag(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "not a cachegraph trace (bad header)"),
            TraceError::Truncated => write!(f, "trace truncated mid-record"),
            TraceError::BadTag(t) => write!(f, "unknown record tag {t:#x}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Little-endian reader over the raw trace bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` bytes, or report truncation.
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(TraceError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }
}

/// Iterate a trace, calling `f(addr, size, kind)` per access.
pub fn for_each_access(
    trace: &[u8],
    mut f: impl FnMut(u64, usize, AccessKind),
) -> Result<u64, TraceError> {
    let mut r = Reader { buf: trace, pos: 0 };
    if r.remaining() < 8 || r.take(6).ok() != Some(MAGIC.as_slice()) {
        return Err(TraceError::BadHeader);
    }
    r.take(2)?; // reserved
    let mut addr = 0u64;
    let mut count = 0u64;
    while r.remaining() > 0 {
        let tag = r.u8()?;
        let kind = if tag & 1 == 1 { AccessKind::Write } else { AccessKind::Read };
        let width = tag & 0b110;
        let delta = match width {
            WIDTH_I8 => i64::from(i8::from_le_bytes([r.u8()?])),
            WIDTH_I32 => {
                let mut b = [0u8; 4];
                b.copy_from_slice(r.take(4)?);
                i32::from_le_bytes(b) as i64
            }
            WIDTH_I64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(r.take(8)?);
                i64::from_le_bytes(b)
            }
            _ => return Err(TraceError::BadTag(tag)),
        };
        addr = addr.wrapping_add(delta as u64);
        let size = r.u8()? as usize;
        f(addr, size, kind);
        count += 1;
    }
    Ok(count)
}

/// Replay a trace against a hierarchy. Returns the access count.
pub fn replay(trace: &[u8], hier: &mut MemoryHierarchy) -> Result<u64, TraceError> {
    for_each_access(trace, |addr, size, kind| hier.access(addr, size, kind))
}

/// Replay a trace into a reuse-distance profiler (line-granular).
pub fn replay_reuse(trace: &[u8], profiler: &mut ReuseProfiler) -> Result<u64, TraceError> {
    for_each_access(trace, |addr, _, _| profiler.access(addr))
}

/// Fully decode `trace` without driving anything, returning the access
/// count. The cheapest way to surface corruption up front.
pub fn validate(trace: &[u8]) -> Result<u64, TraceError> {
    for_each_access(trace, |_, _, _| {})
}

/// Why a trace file could not be loaded.
#[derive(Debug)]
pub enum TraceFileError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The bytes are not a well-formed recording.
    Trace(TraceError),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "cannot read trace file: {e}"),
            TraceFileError::Trace(e) => write!(f, "corrupt trace file: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<TraceError> for TraceFileError {
    fn from(e: TraceError) -> Self {
        TraceFileError::Trace(e)
    }
}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Write a finished recording to `path`.
pub fn write_trace_file(path: &Path, trace: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, trace)
}

/// Read a recording from `path`, validating it end to end. Truncated or
/// bit-flipped files fail here with the decoder's [`TraceError`] rather
/// than inside a later replay.
pub fn read_trace_file(path: &Path) -> Result<Vec<u8>, TraceFileError> {
    let bytes = std::fs::read(path)?;
    validate(&bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            name: "t".into(),
            levels: vec![CacheConfig::new("L1", 1024, 32, 2)],
            tlb: None,
        })
    }

    #[test]
    fn roundtrip_preserves_accesses() {
        let mut rec = TraceRecorder::new();
        let accesses = [
            (0u64, 4usize, AccessKind::Read),
            (4, 4, AccessKind::Write),
            (1 << 20, 8, AccessKind::Read), // large forward delta
            (16, 2, AccessKind::Read),      // large backward delta
            (u64::MAX - 7, 1, AccessKind::Write),
        ];
        for &(a, s, k) in &accesses {
            rec.record(a, s, k);
        }
        let trace = rec.finish();
        let mut got = Vec::new();
        let n = for_each_access(&trace, |a, s, k| got.push((a, s, k))).expect("decode");
        assert_eq!(n, accesses.len() as u64);
        assert_eq!(got, accesses);
    }

    #[test]
    fn replay_matches_live_simulation() {
        // Drive a hierarchy live and via a recorded trace: identical stats.
        let mut x = 99u64;
        let mut live = hier();
        let mut rec = TraceRecorder::new();
        for i in 0..5000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x >> 20) % 8192;
            let kind = if i % 4 == 0 { AccessKind::Write } else { AccessKind::Read };
            live.access(addr, 4, kind);
            rec.record(addr, 4, kind);
        }
        let trace = rec.finish();
        let mut replayed = hier();
        let n = replay(&trace, &mut replayed).expect("replay");
        assert_eq!(n, 5000);
        assert_eq!(live.stats(), replayed.stats());
    }

    #[test]
    fn compact_encoding_for_sequential_strides() {
        let mut rec = TraceRecorder::new();
        for i in 0..1000u64 {
            rec.record(i * 4, 4, AccessKind::Read);
        }
        // Stride-4 deltas fit i8: 3 bytes/access plus the 8-byte header.
        assert!(rec.encoded_bytes() <= 8 + 3 * 1000);
    }

    #[test]
    fn one_trace_many_configurations() {
        let mut rec = TraceRecorder::new();
        for i in 0..256u64 {
            rec.record((i * 64) % 2048, 4, AccessKind::Read);
        }
        let trace = rec.finish();
        // Replay against a reuse profiler and two cache sizes.
        let mut p = ReuseProfiler::new(32, 128);
        replay_reuse(&trace, &mut p).expect("reuse replay");
        assert_eq!(p.accesses(), 256);
        let mut small = hier();
        replay(&trace, &mut small).expect("replay");
        assert!(small.stats().levels[0].misses > 0);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(for_each_access(b"junk", |_, _, _| {}), Err(TraceError::BadHeader));
        let mut rec = TraceRecorder::new();
        rec.record(0, 4, AccessKind::Read);
        let full = rec.finish();
        let truncated = &full[..full.len() - 1];
        assert_eq!(for_each_access(truncated, |_, _, _| {}), Err(TraceError::Truncated));
    }
}
