//! Traced buffers: real data plus simulated addresses.
//!
//! A [`TracedBuffer`] behaves like a `Vec<T>` whose every element access is
//! also replayed against a [`MemoryHierarchy`]. Instrumented algorithm
//! variants (e.g. `cachegraph_fw::instrumented`) operate on these, producing
//! both the real result (so correctness is checked on the same run that is
//! measured) and the cache statistics.

use crate::cache::AccessKind;
use crate::hierarchy::MemoryHierarchy;

/// A `Vec<T>` with a simulated base address.
#[derive(Clone, Debug)]
pub struct TracedBuffer<T> {
    base: u64,
    data: Vec<T>,
}

impl<T: Copy> TracedBuffer<T> {
    /// Wrap `data` at simulated address `base`. Prefer
    /// [`AddressSpace::alloc_traced`](crate::AddressSpace::alloc_traced) /
    /// [`AddressSpace::adopt`](crate::AddressSpace::adopt), which pick
    /// non-overlapping bases.
    pub fn new(base: u64, data: Vec<T>) -> Self {
        Self { base, data }
    }

    /// Simulated address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + (i * std::mem::size_of::<T>()) as u64
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`, recording the access.
    #[inline]
    pub fn read(&self, hier: &mut MemoryHierarchy, i: usize) -> T {
        hier.access(self.addr(i), std::mem::size_of::<T>(), AccessKind::Read);
        self.data[i]
    }

    /// Write element `i`, recording the access.
    #[inline]
    pub fn write(&mut self, hier: &mut MemoryHierarchy, i: usize, value: T) {
        hier.access(self.addr(i), std::mem::size_of::<T>(), AccessKind::Write);
        self.data[i] = value;
    }

    /// Untraced view of the data (for validation after a simulated run).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable view (for initialisation that should not count).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer, returning the underlying data.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressSpace;
    use crate::config::{CacheConfig, HierarchyConfig};

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            name: "t".into(),
            levels: vec![CacheConfig::new("L1", 1024, 32, 2)],
            tlb: None,
        })
    }

    #[test]
    fn read_write_roundtrip_and_counts() {
        let mut h = hier();
        let mut space = AddressSpace::new();
        let mut buf = space.alloc_traced::<u64>(16);
        buf.write(&mut h, 3, 42);
        assert_eq!(buf.read(&mut h, 3), 42);
        let s = h.stats();
        assert_eq!(s.levels[0].accesses, 2);
        assert_eq!(s.levels[0].misses, 1); // second access hits
    }

    #[test]
    fn element_addresses_are_contiguous() {
        let mut space = AddressSpace::new();
        let buf = space.alloc_traced::<u32>(4);
        assert_eq!(buf.addr(1) - buf.addr(0), 4);
        assert_eq!(buf.addr(3) - buf.addr(0), 12);
    }

    #[test]
    fn untraced_access_does_not_count() {
        let h = hier();
        let mut space = AddressSpace::new();
        let mut buf = space.alloc_traced::<u32>(8);
        buf.as_mut_slice()[0] = 7;
        assert_eq!(buf.as_slice()[0], 7);
        assert_eq!(h.stats().levels[0].accesses, 0);
    }

    #[test]
    fn adopt_preserves_data() {
        let mut space = AddressSpace::new();
        let buf = space.adopt(vec![1u8, 2, 3]);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
    }
}
