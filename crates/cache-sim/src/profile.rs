//! Span-scoped cache attribution: the simulator's flight recorder.
//!
//! A [`CacheProfiler`] attaches to a [`MemoryHierarchy`] (see
//! [`MemoryHierarchy::attach_profiler`]) and charges every counter the
//! hierarchy updates — per-level accesses/hits/misses/write-backs/
//! prefetches, TLB translations, memory lines, three-Cs classes — to
//! the *scope* that was current when the access was issued. Scopes are
//! `/`-separated paths mirroring the `cachegraph-obs` span naming
//! convention (`fw.tiled.bdl/tile[3]`), so a profiled run yields a
//! hierarchical cache profile: which tile, phase, or recursion level
//! the misses came from, not just the end-of-run aggregate.
//!
//! Attribution is **event-driven**: the hierarchy emits one
//! [`CacheEvent`] per counter-moving occurrence (a probe, a TLB lookup,
//! a memory-line fetch, a miss classification) at exactly the sites
//! where its own counters change. One enum dispatch per event replaces
//! the earlier design's two full `CacheStats` snapshots per access, and
//! the per-probe event carries everything the probe moved — including
//! write-backs triggered by prefetch fills, which the propagated probe
//! result alone would hide.
//!
//! Two recording modes (see [`ProfilerOptions`]):
//!
//! * **exact** (`sample_period_log2 == 0`): every event is applied to
//!   its scope's tally immediately. The per-scope *self* stats sum to
//!   the hierarchy's aggregate [`HierarchyStats`] exactly — the
//!   conservation invariant asserted by tests here and an integration
//!   test in `cachegraph-cli`.
//! * **sampled** (`sample_period_log2 == k > 0`): one access in every
//!   `2^k` is recorded; its events are pushed into a fixed-size
//!   per-profiler ring buffer (no locks — the profiler is owned by the
//!   simulating thread) and drained when the ring fills, when the scope
//!   changes, and at finish. Frozen tallies are scaled up by the period,
//!   so the profile reports estimates; [`CacheProfile::exact`] is
//!   `false` and [`CacheProfile::sample_period`] carries the period.
//!
//! Drivers set scopes through a cloneable [`ScopeHandle`] — an `Arc`
//! around an atomic scope id plus a guard stack and path interner — so
//! the handle can be used while a `TracedBuffer` mutably borrows the
//! hierarchy. [`ScopeHandle::enter`] returns an RAII [`ScopeGuard`];
//! guards may drop in any order (each removes its own stack entry), and
//! the current scope is always the youngest still-live guard. Traffic
//! issued while no scope is entered lands in the reserved
//! `"(unattributed)"` scope.
//!
//! An optional [interval sampler](MemoryHierarchy::attach_profiler_sampled)
//! additionally emits a delta-encoded miss-rate timeline: one
//! [`TimelineRecord`](cachegraph_obs::TimelineRecord) every `interval`
//! L1 accesses through the registry's JSONL sink (for watching long
//! runs live), retained as [`TimelineSample`]s in the final
//! [`CacheProfile`].
//!
//! Attribution is zero-cost when no profiler is attached: every hook in
//! the hierarchy is a branch on an `Option` that is `None` by default
//! (the same pattern as the trace recorder; proven by the
//! `obs_overhead` bench in `cachegraph-bench`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use cachegraph_obs::{Registry, TimelineRecord};

use crate::cache::CacheStats;
use crate::classify::{MissClass, MissClasses};
use crate::hierarchy::HierarchyStats;
use crate::hierarchy::LevelStats;
#[cfg(doc)]
use crate::hierarchy::MemoryHierarchy;
use crate::tlb::TlbStats;

/// Scope id 0: traffic issued while no [`ScopeGuard`] was live.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Sampled-mode ring capacity, in buffered events. Sized so a drain
/// amortizes over many sampled accesses while the buffer stays a few
/// KiB (events are two words each).
const RING_CAPACITY: usize = 1024;

/// How a profiler attaches — see
/// [`MemoryHierarchy::attach_profiler_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfilerOptions {
    /// Log2 of the systematic sampling period. `0` is exact attribution
    /// (every access recorded); `k > 0` records one access in every
    /// `2^k` and scales the frozen tallies by `2^k` (estimates, flagged
    /// by [`CacheProfile::exact`] = `false`).
    pub sample_period_log2: u32,
    /// Miss-rate timeline interval in L1 accesses; `0` disables the
    /// timeline. In sampled mode the timeline is fed scaled deltas, so
    /// the interval is still in (estimated) L1 accesses.
    pub timeline_interval: u64,
}

impl ProfilerOptions {
    /// Exact attribution, no timeline — what
    /// [`MemoryHierarchy::attach_profiler`] uses.
    pub fn exact() -> Self {
        Self::default()
    }

    /// The sampling period (`2^sample_period_log2`).
    pub fn sample_period(&self) -> u64 {
        1 << self.sample_period_log2
    }
}

/// One counter-moving occurrence inside the hierarchy, emitted to the
/// profiler at the site where the hierarchy's own counter changes.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CacheEvent {
    /// One demand probe at a cache level, carrying everything the probe
    /// moved (mirrors [`crate::cache::ProbeResult`]).
    Probe {
        /// Cache level index (0 = L1).
        level: usize,
        /// The probe hit (victim-cache hits included).
        hit: bool,
        /// The hit was served by the victim cache.
        victim_hit: bool,
        /// How many write-backs this probe generated (0–2: the
        /// propagated one plus an absorbed prefetch-fill eviction).
        writebacks: u8,
        /// The probe triggered a next-line prefetch fill.
        prefetched: bool,
    },
    /// One TLB lookup.
    Tlb {
        /// The translation was resident.
        hit: bool,
    },
    /// One line fetched from memory (a miss past the last level).
    MemoryLine,
    /// One L1 demand miss classified by the three-Cs shadow.
    Class(MissClass),
}

/// Lock helper that survives poisoning (attribution must never take a
/// panicking run down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Interns scope paths to dense ids; id 0 is [`UNATTRIBUTED`].
#[derive(Debug, Default)]
struct PathTable {
    paths: Vec<String>,
    ids: HashMap<String, usize>,
}

impl PathTable {
    fn intern(&mut self, path: &str) -> usize {
        if let Some(&id) = self.ids.get(path) {
            return id;
        }
        let id = self.paths.len();
        self.paths.push(path.to_string());
        self.ids.insert(path.to_string(), id);
        id
    }
}

/// Mutable scope state: the interner plus the stack of live guards.
#[derive(Debug, Default)]
struct ScopeState {
    table: PathTable,
    /// Live guards as `(token, scope id)`, oldest first. Guards may
    /// drop out of LIFO order (the `Option<ScopeGuard>` replacement
    /// pattern drops the sibling *after* entering its successor); each
    /// removes its own entry wherever it sits, and the current scope is
    /// always the youngest survivor.
    stack: Vec<(u64, usize)>,
    next_token: u64,
}

/// State shared between the profiler (inside the hierarchy) and the
/// driver's [`ScopeHandle`]s.
#[derive(Debug)]
struct ScopeShared {
    /// Id of the scope new traffic is charged to: the top of the guard
    /// stack, or 0 when no guard is live. Relaxed ordering is enough:
    /// scope changes and accesses are issued by the same driver thread,
    /// in program order.
    current: AtomicUsize,
    state: Mutex<ScopeState>,
}

impl ScopeShared {
    fn new() -> Self {
        let mut state = ScopeState::default();
        state.table.intern(UNATTRIBUTED);
        Self { current: AtomicUsize::new(0), state: Mutex::new(state) }
    }
}

/// A cloneable handle for setting the current attribution scope.
///
/// Obtained from [`MemoryHierarchy::attach_profiler`]. The handle is
/// independent of the hierarchy borrow, so a driver can hold it while a
/// `TracedBuffer` mutably borrows the hierarchy. Entering a scope costs
/// one interner lookup (amortized: paths repeat) plus a stack push;
/// per-access cost inside the hierarchy is a single relaxed load.
#[derive(Clone, Debug)]
pub struct ScopeHandle {
    shared: Arc<ScopeShared>,
}

impl ScopeHandle {
    /// Make `path` the current scope until the returned guard drops.
    ///
    /// Scopes nest like spans, but guards are tracked on a stack keyed
    /// by guard identity, so drop order does not matter: replacing a
    /// guard stored in an `Option` works in either order, and traffic
    /// issued between a sibling's drop and its successor's creation is
    /// charged to the parent scope (never to `"(unattributed)"`).
    pub fn enter(&self, path: &str) -> ScopeGuard {
        let mut st = lock(&self.shared.state);
        let id = st.table.intern(path);
        let token = st.next_token;
        st.next_token += 1;
        st.stack.push((token, id));
        self.shared.current.store(id, Ordering::Relaxed);
        drop(st);
        ScopeGuard { shared: Arc::clone(&self.shared), token }
    }
}

/// RAII guard from [`ScopeHandle::enter`]; on drop it removes itself
/// from the guard stack (wherever it sits) and the youngest surviving
/// guard's scope becomes current again.
#[derive(Debug)]
pub struct ScopeGuard {
    shared: Arc<ScopeShared>,
    token: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        if let Some(pos) = st.stack.iter().rposition(|&(t, _)| t == self.token) {
            st.stack.remove(pos);
        }
        let top = st.stack.last().map_or(0, |&(_, id)| id);
        self.shared.current.store(top, Ordering::Relaxed);
    }
}

/// Per-scope raw tallies, mirroring what the hierarchy itself counts.
#[derive(Clone, Debug, Default)]
struct ScopeTally {
    /// Per-level counter deltas (grown on first touch of each level).
    levels: Vec<CacheStats>,
    tlb: TlbStats,
    memory_lines: u64,
    classes: MissClasses,
}

impl ScopeTally {
    /// Scale every counter by the sampling period (sampled-mode finish).
    fn scale(&mut self, by: u64) {
        for l in &mut self.levels {
            l.accesses *= by;
            l.hits *= by;
            l.misses *= by;
            l.victim_hits *= by;
            l.writebacks *= by;
            l.prefetches *= by;
        }
        self.tlb.accesses *= by;
        self.tlb.misses *= by;
        self.memory_lines *= by;
        self.classes.compulsory *= by;
        self.classes.capacity *= by;
        self.classes.conflict *= by;
    }
}

/// The attribution engine owned by a profiling [`MemoryHierarchy`].
///
/// The hierarchy emits one [`CacheEvent`] per counter-moving occurrence
/// through [`on_event`](Self::on_event); in exact mode the event is
/// applied to the current scope's tally immediately, in sampled mode it
/// is buffered in the ring (sampled accesses only) and applied at
/// drain.
#[derive(Clone, Debug)]
pub(crate) struct CacheProfiler {
    shared: Arc<ScopeShared>,
    label: String,
    num_levels: usize,
    has_tlb: bool,
    has_classes: bool,
    /// Scope id cached at the start of the current access.
    current: usize,
    scopes: Vec<ScopeTally>,
    sampler: Option<IntervalSampler>,
    /// Systematic sampling period (power of two); 1 = exact mode.
    period: u64,
    /// Accesses until the next sampled one (sampled mode only).
    countdown: u64,
    /// Whether the in-flight access is being recorded.
    sampling: bool,
    /// Fixed-capacity event ring: `(scope id, event)` pairs, drained
    /// when full, on scope change, and at finish (sampled mode only).
    ring: Vec<(usize, CacheEvent)>,
}

impl CacheProfiler {
    pub(crate) fn new(
        label: &str,
        num_levels: usize,
        has_tlb: bool,
        has_classes: bool,
        sampler: Option<IntervalSampler>,
        sample_period_log2: u32,
    ) -> Self {
        let period = 1u64 << sample_period_log2;
        Self {
            shared: Arc::new(ScopeShared::new()),
            label: label.to_string(),
            num_levels,
            has_tlb,
            has_classes,
            current: 0,
            scopes: Vec::new(),
            sampler,
            period,
            countdown: 0,
            sampling: false,
            ring: if period > 1 { Vec::with_capacity(RING_CAPACITY) } else { Vec::new() },
        }
    }

    pub(crate) fn handle(&self) -> ScopeHandle {
        ScopeHandle { shared: Arc::clone(&self.shared) }
    }

    /// Refresh the cached scope id and, in sampled mode, decide whether
    /// this access is recorded; called once per hierarchy access (the
    /// scope cannot change mid-access).
    #[inline]
    pub(crate) fn sync_scope(&mut self) {
        let id = self.shared.current.load(Ordering::Relaxed);
        if self.period > 1 {
            if id != self.current {
                // Scope exit/entry: drain so buffered events cannot sit
                // in the ring across a long foreign phase.
                self.drain_ring();
            }
            if self.countdown == 0 {
                self.sampling = true;
                self.countdown = self.period - 1;
            } else {
                self.sampling = false;
                self.countdown -= 1;
            }
        }
        self.current = id;
    }

    /// Record one counter-moving event. Exact mode applies immediately;
    /// sampled mode buffers events of sampled accesses in the ring.
    #[inline]
    pub(crate) fn on_event(&mut self, ev: CacheEvent) {
        if self.period == 1 {
            let id = self.current;
            self.apply(id, ev);
        } else if self.sampling {
            if self.ring.len() == RING_CAPACITY {
                self.drain_ring();
            }
            self.ring.push((self.current, ev));
        }
    }

    /// Apply every buffered event to its scope's tally, keeping the
    /// ring's allocation.
    fn drain_ring(&mut self) {
        if self.ring.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.ring);
        for &(id, ev) in &events {
            self.apply(id, ev);
        }
        self.ring = events;
        self.ring.clear();
    }

    /// Apply one event to scope `id`'s raw tally, mirroring the
    /// hierarchy's own counter updates field for field.
    fn apply(&mut self, id: usize, ev: CacheEvent) {
        let scale = self.period;
        if self.scopes.len() <= id {
            self.scopes.resize_with(id + 1, ScopeTally::default);
        }
        let t = &mut self.scopes[id];
        match ev {
            CacheEvent::Probe { level, hit, victim_hit, writebacks, prefetched } => {
                if t.levels.len() <= level {
                    t.levels.resize_with(level + 1, CacheStats::default);
                }
                let l = &mut t.levels[level];
                l.accesses += 1;
                if hit {
                    l.hits += 1;
                } else {
                    l.misses += 1;
                }
                if victim_hit {
                    l.victim_hits += 1;
                }
                l.writebacks += u64::from(writebacks);
                if prefetched {
                    l.prefetches += 1;
                }
                if level == 0 {
                    if let Some(s) = &mut self.sampler {
                        // Sampled mode feeds the timeline scaled deltas,
                        // so intervals stay in (estimated) L1 accesses.
                        s.on_l1(scale, if hit { 0 } else { scale });
                    }
                }
            }
            CacheEvent::Tlb { hit } => {
                t.tlb.accesses += 1;
                if !hit {
                    t.tlb.misses += 1;
                }
            }
            CacheEvent::MemoryLine => t.memory_lines += 1,
            CacheEvent::Class(class) => t.classes.add(class),
        }
    }

    fn self_stats(&self, tally: &ScopeTally) -> HierarchyStats {
        let levels = (0..self.num_levels)
            .map(|i| {
                let s = tally.levels.get(i).copied().unwrap_or_default();
                LevelStats {
                    level: i,
                    accesses: s.accesses,
                    hits: s.hits,
                    misses: s.misses,
                    writebacks: s.writebacks,
                    prefetches: s.prefetches,
                    miss_rate: s.miss_rate(),
                }
            })
            .collect();
        HierarchyStats {
            levels,
            tlb: self.has_tlb.then_some(tally.tlb),
            memory_lines_fetched: tally.memory_lines,
            l1_classes: self.has_classes.then_some(tally.classes),
        }
    }

    /// Freeze the profile: per-scope self stats (scaled by the sampling
    /// period in sampled mode), subtree totals (path prefix
    /// aggregation), and the timeline (final partial interval flushed).
    /// `machine` is the hierarchy's configuration label.
    pub(crate) fn finish(mut self, machine: &str) -> CacheProfile {
        self.drain_ring();
        if self.period > 1 {
            for t in &mut self.scopes {
                t.scale(self.period);
            }
        }
        let (interval, timeline) = match self.sampler.take() {
            Some(mut s) => {
                s.flush();
                (s.interval, s.samples)
            }
            None => (0, Vec::new()),
        };
        let paths: Vec<String> = lock(&self.shared.state).table.paths.clone();
        // Scope-id order is first-entry order; drivers enter parents
        // before children, so this doubles as pre-order for rendering.
        let selves: Vec<(String, HierarchyStats)> = self
            .scopes
            .iter()
            .enumerate()
            .map(|(id, tally)| {
                let path = paths.get(id).cloned().unwrap_or_else(|| format!("scope[{id}]"));
                (path, self.self_stats(tally))
            })
            .collect();
        CacheProfile {
            label: self.label,
            machine: machine.to_string(),
            interval,
            sample_period: self.period,
            exact: self.period == 1,
            spans: build_spans(&selves),
            timeline,
        }
    }
}

/// Build the span list from per-scope self stats: subtree totals by
/// path-prefix aggregation, zero-traffic spans dropped unless some
/// descendant was charged (a tiled run's root scope has zero self
/// stats but its subtree total is the whole run).
fn build_spans(selves: &[(String, HierarchyStats)]) -> Vec<SpanCacheStats> {
    selves
        .iter()
        .filter_map(|(path, self_stats)| {
            let prefix = format!("{path}/");
            let mut total = self_stats.zeroed_like();
            for (q, s) in selves {
                if q == path || q.starts_with(&prefix) {
                    total.merge_from(s);
                }
            }
            if is_zero_stats(self_stats) && is_zero_stats(&total) {
                return None;
            }
            Some(SpanCacheStats {
                path: path.clone(),
                self_stats: self_stats.clone(),
                total_stats: total,
            })
        })
        .collect()
}

/// The delta-encoded miss-rate timeline sampler (see the module docs).
#[derive(Clone, Debug)]
pub(crate) struct IntervalSampler {
    interval: u64,
    label: String,
    registry: Registry,
    accesses: u64,
    misses: u64,
    emitted_accesses: u64,
    emitted_misses: u64,
    seq: u64,
    samples: Vec<TimelineSample>,
}

impl IntervalSampler {
    /// `interval` is in L1 demand accesses and must be at least 1.
    pub(crate) fn new(label: &str, interval: u64, registry: Registry) -> Self {
        assert!(interval > 0, "sampling interval must be at least 1 access");
        Self {
            interval,
            label: label.to_string(),
            registry,
            accesses: 0,
            misses: 0,
            emitted_accesses: 0,
            emitted_misses: 0,
            seq: 0,
            samples: Vec::new(),
        }
    }

    #[inline]
    fn on_l1(&mut self, d_accesses: u64, d_misses: u64) {
        self.accesses += d_accesses;
        self.misses += d_misses;
        if self.accesses - self.emitted_accesses >= self.interval {
            self.emit_sample();
        }
    }

    fn emit_sample(&mut self) {
        let record = TimelineRecord {
            label: self.label.clone(),
            seq: self.seq,
            accesses: self.accesses - self.emitted_accesses,
            l1_misses: self.misses - self.emitted_misses,
        };
        self.registry.emit(&record.to_json());
        self.samples.push(TimelineSample {
            seq: record.seq,
            accesses: record.accesses,
            l1_misses: record.l1_misses,
        });
        self.emitted_accesses = self.accesses;
        self.emitted_misses = self.misses;
        self.seq += 1;
    }

    /// Emit the final partial interval, if any accesses are pending —
    /// a trace shorter than one interval still yields one sample.
    fn flush(&mut self) {
        if self.accesses > self.emitted_accesses {
            self.emit_sample();
        }
    }
}

/// One retained timeline sample; `accesses` / `l1_misses` are deltas
/// over the interval (matching the JSONL `TimelineRecord` encoding).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineSample {
    /// Sample index, starting at 0.
    pub seq: u64,
    /// L1 demand accesses in this interval.
    pub accesses: u64,
    /// L1 demand misses in this interval.
    pub l1_misses: u64,
}

impl TimelineSample {
    /// Miss rate over this interval in `[0, 1]`; 0 when empty.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }
}

/// One scope's slice of the hierarchy counters.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanCacheStats {
    /// `/`-separated scope path, e.g. `fw.tiled.bdl/tile[3]`.
    pub path: String,
    /// Traffic charged to exactly this scope (children excluded).
    pub self_stats: HierarchyStats,
    /// Traffic of this scope plus every descendant scope (path-prefix
    /// subtree sum; `self` for leaves).
    pub total_stats: HierarchyStats,
}

/// A frozen span-scoped cache profile for one simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheProfile {
    /// Run label, matching the `cache_sims` section label (e.g.
    /// `fw.tiled.bdl`).
    pub label: String,
    /// Hierarchy configuration name the run was simulated on.
    pub machine: String,
    /// Timeline sampling interval in L1 accesses; 0 when no sampler
    /// was attached.
    pub interval: u64,
    /// Systematic sampling period the attribution ran at: 1 in exact
    /// mode, `2^k` in sampled mode (counters are scaled-up estimates).
    pub sample_period: u64,
    /// True when every counter was recorded (no sampling): the sum of
    /// per-scope self stats equals the run aggregate exactly.
    pub exact: bool,
    /// Per-scope stats in first-entry (pre-)order; scopes with no
    /// traffic are omitted.
    pub spans: Vec<SpanCacheStats>,
    /// The miss-rate timeline (empty when `interval` is 0).
    pub timeline: Vec<TimelineSample>,
}

impl CacheProfile {
    /// Sum of all per-scope *self* stats. In exact mode this equals the
    /// run's aggregate [`HierarchyStats`] field for field (miss rates
    /// recomputed over the sums); in sampled mode it is the scaled
    /// estimate (within one period per counter of the truth).
    pub fn sum_self(&self) -> HierarchyStats {
        let mut acc = match self.spans.first() {
            Some(s) => s.self_stats.zeroed_like(),
            None => HierarchyStats::default(),
        };
        for span in &self.spans {
            acc.merge_from(&span.self_stats);
        }
        acc
    }

    /// Look up a span by exact path.
    pub fn find(&self, path: &str) -> Option<&SpanCacheStats> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Merge per-thread profiles into one, the profile-level analogue
    /// of summing per-thread [`HierarchyStats`]: self stats of
    /// same-path spans are added, subtree totals are rebuilt over the
    /// union, and span order is first appearance across the parts (so
    /// shared parents keep their pre-order position). The parts are
    /// expected to share one recording mode; the merged profile is
    /// exact only if every part was, and carries the largest
    /// `sample_period`. Timelines do not interleave meaningfully across
    /// threads, so the merged timeline is kept only when exactly one
    /// part has one. Returns `None` for an empty input.
    pub fn merge(parts: Vec<CacheProfile>) -> Option<CacheProfile> {
        let mut it = parts.into_iter();
        let first = it.next()?;
        let label = first.label.clone();
        let machine = first.machine.clone();
        let mut sample_period = 1;
        let mut exact = true;
        let mut order: Vec<String> = Vec::new();
        let mut selves: HashMap<String, HierarchyStats> = HashMap::new();
        let mut timelines: Vec<(u64, Vec<TimelineSample>)> = Vec::new();
        for part in std::iter::once(first).chain(it) {
            exact &= part.exact;
            sample_period = sample_period.max(part.sample_period);
            if !part.timeline.is_empty() {
                timelines.push((part.interval, part.timeline));
            }
            for span in part.spans {
                match selves.get_mut(&span.path) {
                    Some(acc) => acc.merge_from(&span.self_stats),
                    None => {
                        order.push(span.path.clone());
                        selves.insert(span.path, span.self_stats);
                    }
                }
            }
        }
        let merged: Vec<(String, HierarchyStats)> = order
            .into_iter()
            .filter_map(|p| {
                let s = selves.remove(&p)?;
                Some((p, s))
            })
            .collect();
        let (interval, timeline) = match timelines.len() {
            1 => {
                let (iv, tl) = timelines.remove(0);
                (iv, tl)
            }
            _ => (0, Vec::new()),
        };
        Some(CacheProfile {
            label,
            machine,
            interval,
            sample_period,
            exact,
            spans: build_spans(&merged),
            timeline,
        })
    }
}

/// True when no counter in `stats` ever ticked.
fn is_zero_stats(stats: &HierarchyStats) -> bool {
    stats.levels.iter().all(|l| l.accesses == 0 && l.writebacks == 0 && l.prefetches == 0)
        && stats.tlb.is_none_or(|t| t.accesses == 0)
        && stats.memory_lines_fetched == 0
        && stats.l1_classes.is_none_or(|c| c.total() == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig, TlbConfig};
    use crate::hierarchy::MemoryHierarchy;

    fn two_level_tlb(classify: bool) -> MemoryHierarchy {
        let config = HierarchyConfig {
            name: "profile-test".into(),
            levels: vec![
                CacheConfig::new("L1", 256, 16, 2),
                CacheConfig::new("L2", 1024, 16, 4),
            ],
            tlb: Some(TlbConfig::fully_associative(8, 4096)),
        };
        if classify {
            MemoryHierarchy::new_classifying(config)
        } else {
            MemoryHierarchy::new(config)
        }
    }

    fn assert_stats_eq(a: &HierarchyStats, b: &HierarchyStats) {
        assert_eq!(a.levels.len(), b.levels.len());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.level, y.level);
            assert_eq!(x.accesses, y.accesses, "L{} accesses", x.level + 1);
            assert_eq!(x.hits, y.hits, "L{} hits", x.level + 1);
            assert_eq!(x.misses, y.misses, "L{} misses", x.level + 1);
            assert_eq!(x.writebacks, y.writebacks, "L{} writebacks", x.level + 1);
            assert_eq!(x.prefetches, y.prefetches, "L{} prefetches", x.level + 1);
            assert!((x.miss_rate - y.miss_rate).abs() < 1e-12);
        }
        assert_eq!(a.tlb, b.tlb);
        assert_eq!(a.memory_lines_fetched, b.memory_lines_fetched);
        assert_eq!(a.l1_classes, b.l1_classes);
    }

    #[test]
    fn per_scope_self_stats_sum_to_aggregate_exactly() {
        let mut h = two_level_tlb(true);
        let handle = h.attach_profiler("test.run");
        {
            let _root = handle.enter("test.run");
            for addr in 0..256u64 {
                h.read(addr, 1);
            }
            {
                let _phase = handle.enter("test.run/phase[0]");
                for addr in (0..4096u64).step_by(16) {
                    h.write(addr, 4);
                }
            }
            {
                let _phase = handle.enter("test.run/phase[1]");
                for addr in (0..512u64).rev() {
                    h.read(addr, 2);
                }
            }
        }
        let aggregate = h.stats();
        let profile = h.take_profile().expect("profiler attached");
        assert!(profile.exact);
        assert_eq!(profile.sample_period, 1);
        assert_stats_eq(&profile.sum_self(), &aggregate);
        let paths: Vec<&str> = profile.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["test.run", "test.run/phase[0]", "test.run/phase[1]"]);
        // Subtree totals: the root's total is the whole run.
        let root = profile.find("test.run").expect("root span");
        assert_stats_eq(&root.total_stats, &aggregate);
        // Leaf totals equal their self stats.
        let leaf = profile.find("test.run/phase[1]").expect("leaf span");
        assert_stats_eq(&leaf.total_stats, &leaf.self_stats);
        // The run had real traffic in every section.
        assert!(aggregate.levels[0].misses > 0);
        assert!(aggregate.tlb.expect("tlb").misses > 0);
        assert!(aggregate.l1_classes.expect("classes").total() > 0);
    }

    #[test]
    fn unattributed_traffic_lands_in_reserved_scope() {
        let mut h = two_level_tlb(false);
        h.attach_profiler("test.run");
        h.read(0, 4); // no scope entered
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.spans.len(), 1);
        assert_eq!(profile.spans[0].path, UNATTRIBUTED);
        assert_stats_eq(&profile.sum_self(), &profile.spans[0].self_stats);
    }

    #[test]
    fn guards_restore_previous_scope() {
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler("t");
        let outer = handle.enter("t");
        {
            let _inner = handle.enter("t/inner");
            h.read(0, 4);
        }
        h.read(4096, 4); // back in the outer scope
        drop(outer);
        h.read(8192, 4); // unattributed again
        let profile = h.take_profile().expect("profiler attached");
        let paths: Vec<&str> = profile.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, [UNATTRIBUTED, "t", "t/inner"]);
        assert_eq!(profile.find("t/inner").expect("inner").self_stats.levels[0].accesses, 1);
        assert_eq!(profile.find("t").expect("outer").self_stats.levels[0].accesses, 1);
        // The outer span's subtree total covers the inner one.
        assert_eq!(profile.find("t").expect("outer").total_stats.levels[0].accesses, 2);
    }

    #[test]
    fn option_guard_replacement_pattern_keeps_chain_consistent() {
        // The pattern instrumented drivers use: one Option<ScopeGuard>
        // replaced per tile, cleared before reassignment.
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler("t");
        let _root = handle.enter("t");
        let mut tile: Option<ScopeGuard> = None;
        for i in 0..3 {
            drop(tile.take()); // restore the root scope before re-entering
            tile = Some(handle.enter(&format!("t/tile[{i}]")));
            h.read(i * 4096, 4);
        }
        drop(tile);
        h.read(1 << 20, 4); // must land back on the root scope
        drop(_root);
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.find("t").expect("root").self_stats.levels[0].accesses, 1);
        for i in 0..3 {
            let path = format!("t/tile[{i}]");
            assert_eq!(
                profile.find(&path).expect("tile").self_stats.levels[0].accesses,
                1,
                "{path}"
            );
        }
        assert_eq!(profile.find("t").expect("root").total_stats.levels[0].accesses, 4);
    }

    #[test]
    fn out_of_order_guard_replacement_charges_parent_not_unattributed() {
        // Regression (the `(unattributed)` catch-all bug): replacing an
        // Option<ScopeGuard> by assigning the successor FIRST and
        // dropping the sibling after used to restore the sibling's
        // stale "previous" scope — worst case scope id 0. With the
        // guard stack, drop order is irrelevant and nothing lands in
        // the reserved scope during a fully-scoped run.
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler("t");
        let root = handle.enter("t");
        let mut tile: Option<ScopeGuard> = None;
        for i in 0..3u64 {
            // Wrong-order replacement: enter the successor, then drop
            // the sibling (Option assignment drops the old value last).
            tile = Some(handle.enter(&format!("t/tile[{i}]")));
            h.read(i * 4096, 4);
        }
        drop(tile);
        h.read(1 << 20, 4); // back on the root scope
        drop(root);
        let profile = h.take_profile().expect("profiler attached");
        assert!(
            profile.find(UNATTRIBUTED).is_none(),
            "fully-scoped run must have zero unattributed traffic"
        );
        for i in 0..3 {
            let path = format!("t/tile[{i}]");
            assert_eq!(
                profile.find(&path).expect("tile").self_stats.levels[0].accesses,
                1,
                "{path}"
            );
        }
        assert_eq!(profile.find("t").expect("root").self_stats.levels[0].accesses, 1);
        assert_eq!(profile.find("t").expect("root").total_stats.levels[0].accesses, 4);
        assert_stats_eq(&profile.sum_self(), &h.stats());
    }

    #[test]
    fn sampler_emits_full_intervals_and_flushes_partial_tail() {
        let mut h = two_level_tlb(false);
        let reg = Registry::disabled();
        h.attach_profiler_sampled("t", 4, &reg);
        for addr in 0..10u64 {
            h.read(addr * 16, 1); // 10 L1 accesses, one line each
        }
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.interval, 4);
        let seqs: Vec<u64> = profile.timeline.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        let accesses: Vec<u64> = profile.timeline.iter().map(|s| s.accesses).collect();
        assert_eq!(accesses, [4, 4, 2], "two full intervals plus the flushed tail");
        let total_misses: u64 = profile.timeline.iter().map(|s| s.l1_misses).sum();
        assert_eq!(total_misses, h.stats().levels[0].misses);
    }

    #[test]
    fn sampler_interval_of_one_samples_every_access() {
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("t", 1, &Registry::disabled());
        for addr in 0..5u64 {
            h.read(addr, 1);
        }
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.timeline.len(), 5);
        assert!(profile.timeline.iter().all(|s| s.accesses == 1));
        assert!(profile.timeline.iter().all(|s| s.l1_misses <= 1));
    }

    #[test]
    fn sampler_trace_shorter_than_interval_yields_one_sample() {
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("t", 1_000, &Registry::disabled());
        h.read(0, 4);
        h.read(16, 4);
        h.read(32, 4);
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.timeline.len(), 1);
        assert_eq!(profile.timeline[0].accesses, 3);
        assert_eq!(profile.timeline[0].l1_misses, 3); // all cold
    }

    #[test]
    fn sampler_with_no_traffic_emits_nothing() {
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("t", 8, &Registry::disabled());
        let profile = h.take_profile().expect("profiler attached");
        assert!(profile.timeline.is_empty());
        assert!(profile.spans.is_empty());
    }

    #[test]
    fn sampler_streams_timeline_records_through_jsonl_sink() {
        use std::sync::{Arc as StdArc, Mutex as StdMutex};

        #[derive(Clone, Default)]
        struct Shared(StdArc<StdMutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let reg = Registry::new();
        let sink = Shared::default();
        reg.attach_jsonl_sink(Box::new(sink.clone()));
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("live.run", 2, &reg);
        for addr in 0..6u64 {
            h.read(addr * 16, 1);
        }
        let profile = h.take_profile().expect("profiler attached");
        let text = String::from_utf8(sink.0.lock().expect("sink lock").clone()).expect("utf8");
        let records: Vec<TimelineRecord> = text
            .lines()
            .filter_map(|l| cachegraph_obs::parse_json(l).ok())
            .filter_map(|j| TimelineRecord::from_json(&j))
            .collect();
        assert_eq!(records.len(), profile.timeline.len());
        for (r, s) in records.iter().zip(&profile.timeline) {
            assert_eq!(r.label, "live.run");
            assert_eq!((r.seq, r.accesses, r.l1_misses), (s.seq, s.accesses, s.l1_misses));
        }
    }

    #[test]
    fn take_profile_without_attach_is_none() {
        let mut h = two_level_tlb(false);
        assert!(h.take_profile().is_none());
    }

    // ---- sampled (ring-buffered) mode ---------------------------------

    #[test]
    fn sampled_mode_scales_counters_within_one_period_of_truth() {
        let opts = ProfilerOptions { sample_period_log2: 3, timeline_interval: 0 };
        let period = opts.sample_period();
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler_with("t", opts, &Registry::disabled());
        let n = 1000u64;
        {
            let _root = handle.enter("t");
            for i in 0..n {
                h.read(i * 4, 4); // aligned u32 reads: one L1 probe each
            }
        }
        let profile = h.take_profile().expect("profiler attached");
        assert!(!profile.exact);
        assert_eq!(profile.sample_period, period);
        let est = profile.sum_self();
        // Systematic 1-in-P sampling of N probes records ceil(N/P), so
        // the scaled estimate overshoots by less than one period.
        let true_accesses = h.stats().levels[0].accesses;
        assert_eq!(true_accesses, n);
        let scaled = est.levels[0].accesses;
        assert!(scaled >= true_accesses && scaled - true_accesses < period,
            "scaled {scaled} vs true {true_accesses} (period {period})");
        // Every scaled counter is a multiple of the period.
        for l in &est.levels {
            for v in [l.accesses, l.hits, l.misses, l.writebacks, l.prefetches] {
                assert_eq!(v % period, 0, "L{} counter {v} not a multiple of {period}", l.level);
            }
        }
        assert_eq!(est.memory_lines_fetched % period, 0);
    }

    #[test]
    fn sampled_mode_attributes_to_the_right_scopes() {
        // Two phases with disjoint traffic; the sampled profile must
        // charge each phase's estimate to its own span.
        let opts = ProfilerOptions { sample_period_log2: 2, timeline_interval: 0 };
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler_with("t", opts, &Registry::disabled());
        {
            let _root = handle.enter("t");
            {
                let _a = handle.enter("t/a");
                for i in 0..64u64 {
                    h.read(i * 4, 4);
                }
            }
            {
                let _b = handle.enter("t/b");
                for i in 0..128u64 {
                    h.read(1 << 20 | (i * 4), 4);
                }
            }
        }
        let profile = h.take_profile().expect("profiler attached");
        let a = profile.find("t/a").expect("phase a").self_stats.levels[0].accesses;
        let b = profile.find("t/b").expect("phase b").self_stats.levels[0].accesses;
        assert_eq!(a, 64, "64 accesses at period 4 = 16 sampled, scaled back to 64");
        assert_eq!(b, 128);
        assert!(profile.find(UNATTRIBUTED).is_none());
    }

    #[test]
    fn sampled_timeline_reports_scaled_deltas() {
        let opts = ProfilerOptions { sample_period_log2: 2, timeline_interval: 32 };
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler_with("t", opts, &Registry::disabled());
        {
            let _root = handle.enter("t");
            for i in 0..128u64 {
                h.read(i * 16, 4); // every read a fresh line: all misses
            }
        }
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.interval, 32);
        let t_acc: u64 = profile.timeline.iter().map(|s| s.accesses).sum();
        // 128 probes at period 4 = 32 sampled, scaled to 128.
        assert_eq!(t_acc, 128);
        assert!(profile.timeline.len() >= 2, "scaled deltas fill multiple intervals");
    }

    #[test]
    fn exact_options_equal_plain_attach() {
        let mut ha = two_level_tlb(true);
        let a_handle = ha.attach_profiler("t");
        let mut hb = two_level_tlb(true);
        let b_handle =
            hb.attach_profiler_with("t", ProfilerOptions::exact(), &Registry::disabled());
        {
            let _ga = a_handle.enter("t");
            let _gb = b_handle.enter("t");
            for i in 0..200u64 {
                ha.read(i * 8, 4);
                hb.read(i * 8, 4);
            }
        }
        let pa = ha.take_profile().expect("profiler");
        let pb = hb.take_profile().expect("profiler");
        assert_eq!(pa, pb);
    }

    // ---- per-thread merge ---------------------------------------------

    /// Tiny deterministic LCG so the merge sweep needs no RNG dep.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// Drive `h` through a seeded access pattern under nested scopes,
    /// returning nothing; identical calls produce identical traces.
    fn seeded_scoped_trace(h: &mut MemoryHierarchy, handle: &ScopeHandle, seed: u64, len: u64) {
        let mut rng = Lcg(seed);
        let _root = handle.enter("m");
        for chunk in 0..4u64 {
            let _phase = handle.enter(&format!("m/phase[{chunk}]"));
            for _ in 0..len / 4 {
                let addr = (rng.next() % 8192) * 4;
                if rng.next().is_multiple_of(3) {
                    h.write(addr, 4);
                } else {
                    h.read(addr, 4);
                }
            }
        }
    }

    #[test]
    fn merged_per_thread_profiles_equal_single_thread_run() {
        // Property (threads 1/2/4, seeded sweep): running each thread's
        // share of the work on its own hierarchy+profiler and merging
        // gives exactly the single-run profile when the shares tile the
        // trace — here each thread re-runs the same deterministic trace
        // on a private hierarchy, so t merged parts must equal t times
        // one part, and sum_self must equal the merged aggregate.
        for seed in [1u64, 7, 42] {
            // Reference: one hierarchy, one profiler, whole trace.
            let mut h1 = two_level_tlb(true);
            let handle1 = h1.attach_profiler("m");
            seeded_scoped_trace(&mut h1, &handle1, seed, 4096);
            let single_stats = h1.stats();
            let single = h1.take_profile().expect("profiler");
            assert_stats_eq(&single.sum_self(), &single_stats);

            for threads in [1usize, 2, 4] {
                let mut parts = Vec::new();
                let mut aggregate: Option<HierarchyStats> = None;
                for _ in 0..threads {
                    let mut h = two_level_tlb(true);
                    let handle = h.attach_profiler("m");
                    seeded_scoped_trace(&mut h, &handle, seed, 4096);
                    let stats = h.stats();
                    match &mut aggregate {
                        Some(a) => a.merge_from(&stats),
                        None => aggregate = Some(stats),
                    }
                    parts.push(h.take_profile().expect("profiler"));
                }
                let merged = CacheProfile::merge(parts).expect("non-empty parts");
                let aggregate = aggregate.expect("at least one part");
                // Conservation across the merge, exactly (exact mode).
                assert!(merged.exact);
                assert_stats_eq(&merged.sum_self(), &aggregate);
                // The merged profile is the single-thread profile with
                // every counter multiplied by the thread count.
                assert_eq!(merged.spans.len(), single.spans.len(), "threads={threads}");
                for (m, s) in merged.spans.iter().zip(&single.spans) {
                    assert_eq!(m.path, s.path);
                    for (ml, sl) in m.self_stats.levels.iter().zip(&s.self_stats.levels) {
                        assert_eq!(ml.accesses, sl.accesses * threads as u64, "{}", m.path);
                        assert_eq!(ml.misses, sl.misses * threads as u64, "{}", m.path);
                    }
                }
            }
        }
    }

    #[test]
    fn merged_sampled_profiles_stay_within_scaling_bound() {
        // Sampled parts merge like exact ones, but each part's counters
        // are within one period of its truth, so the merged estimate is
        // within threads * period of the merged aggregate.
        let opts = ProfilerOptions { sample_period_log2: 4, timeline_interval: 0 };
        let period = opts.sample_period();
        for threads in [2usize, 4] {
            let mut parts = Vec::new();
            let mut true_l1 = 0u64;
            for t in 0..threads {
                let mut h = two_level_tlb(false);
                let handle = h.attach_profiler_with("m", opts, &Registry::disabled());
                {
                    let _root = handle.enter("m");
                    for i in 0..(500 + 37 * t as u64) {
                        h.read(i * 4, 4);
                    }
                }
                true_l1 += h.stats().levels[0].accesses;
                parts.push(h.take_profile().expect("profiler"));
            }
            let merged = CacheProfile::merge(parts).expect("non-empty parts");
            assert!(!merged.exact);
            assert_eq!(merged.sample_period, period);
            let est = merged.sum_self().levels[0].accesses;
            let bound = period * threads as u64;
            assert!(
                est.abs_diff(true_l1) < bound,
                "estimate {est} vs truth {true_l1}, bound {bound}"
            );
        }
    }

    #[test]
    fn merge_of_single_profile_is_identity_modulo_totals() {
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler("t");
        {
            let _root = handle.enter("t");
            for i in 0..32u64 {
                h.read(i * 16, 4);
            }
        }
        let profile = h.take_profile().expect("profiler");
        let merged = CacheProfile::merge(vec![profile.clone()]).expect("one part");
        assert_eq!(merged, profile);
    }

    #[test]
    fn merge_of_empty_parts_is_none() {
        assert!(CacheProfile::merge(Vec::new()).is_none());
    }
}
