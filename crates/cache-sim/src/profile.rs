//! Span-scoped cache attribution: the simulator's flight recorder.
//!
//! A [`CacheProfiler`] attaches to a [`MemoryHierarchy`] (see
//! [`MemoryHierarchy::attach_profiler`]) and charges every counter the
//! hierarchy updates — per-level accesses/hits/misses/write-backs/
//! prefetches, TLB translations, memory lines, three-Cs classes — to
//! the *scope* that was current when the access was issued. Scopes are
//! `/`-separated paths mirroring the `cachegraph-obs` span naming
//! convention (`fw.tiled.bdl/tile[3]`), so a profiled run yields a
//! hierarchical cache profile: which tile, phase, or recursion level
//! the misses came from, not just the end-of-run aggregate.
//!
//! Drivers set scopes through a cloneable [`ScopeHandle`] — an `Arc`
//! around an atomic scope id plus a path interner — so the handle can
//! be used while a `TracedBuffer` mutably borrows the hierarchy.
//! [`ScopeHandle::enter`] returns an RAII [`ScopeGuard`] restoring the
//! previous scope on drop; scopes nest like spans do. Traffic issued
//! while no scope is entered lands in the reserved
//! `"(unattributed)"` scope, so the per-scope *self* stats always sum
//! to the hierarchy's aggregate [`HierarchyStats`] exactly — that
//! invariant is what makes the profile trustworthy, and it is asserted
//! by tests here and an integration test in `cachegraph-cli`.
//!
//! An optional [interval sampler](MemoryHierarchy::attach_profiler_sampled)
//! additionally emits a delta-encoded miss-rate timeline: one
//! [`TimelineRecord`](cachegraph_obs::TimelineRecord) every `interval`
//! L1 accesses through the registry's JSONL sink (for watching long
//! runs live), retained as [`TimelineSample`]s in the final
//! [`CacheProfile`].
//!
//! Attribution is zero-cost when no profiler is attached: every hook in
//! the hierarchy is a branch on an `Option` that is `None` by default
//! (the same pattern as the trace recorder; proven by the
//! `obs_overhead` bench in `cachegraph-bench`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use cachegraph_obs::{Registry, TimelineRecord};

use crate::cache::CacheStats;
use crate::classify::{MissClass, MissClasses};
use crate::hierarchy::{HierarchyStats, LevelStats};
#[cfg(doc)]
use crate::hierarchy::MemoryHierarchy;
use crate::tlb::TlbStats;

/// Scope id 0: traffic issued while no [`ScopeGuard`] was live.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Lock helper that survives poisoning (attribution must never take a
/// panicking run down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Interns scope paths to dense ids; id 0 is [`UNATTRIBUTED`].
#[derive(Debug, Default)]
struct PathTable {
    paths: Vec<String>,
    ids: HashMap<String, usize>,
}

impl PathTable {
    fn intern(&mut self, path: &str) -> usize {
        if let Some(&id) = self.ids.get(path) {
            return id;
        }
        let id = self.paths.len();
        self.paths.push(path.to_string());
        self.ids.insert(path.to_string(), id);
        id
    }
}

/// State shared between the profiler (inside the hierarchy) and the
/// driver's [`ScopeHandle`]s.
#[derive(Debug)]
struct ScopeShared {
    /// Id of the scope new traffic is charged to. Relaxed ordering is
    /// enough: scope changes and accesses are issued by the same
    /// driver thread, in program order.
    current: AtomicUsize,
    table: Mutex<PathTable>,
}

/// A cloneable handle for setting the current attribution scope.
///
/// Obtained from [`MemoryHierarchy::attach_profiler`]. The handle is
/// independent of the hierarchy borrow, so a driver can hold it while a
/// `TracedBuffer` mutably borrows the hierarchy. Entering a scope costs
/// one interner lookup (amortized: paths repeat) plus one atomic swap;
/// per-access cost inside the hierarchy is a single relaxed load.
#[derive(Clone, Debug)]
pub struct ScopeHandle {
    shared: Arc<ScopeShared>,
}

impl ScopeHandle {
    /// Make `path` the current scope until the returned guard drops.
    ///
    /// Scopes nest: the guard restores the scope that was current when
    /// it was created. When replacing a guard stored in an `Option`,
    /// drop the old one first (`drop(guard.take());` then reassign) so
    /// the new guard's restore target is the parent scope, not the
    /// sibling being replaced.
    pub fn enter(&self, path: &str) -> ScopeGuard {
        let id = lock(&self.shared.table).intern(path);
        let prev = self.shared.current.swap(id, Ordering::Relaxed);
        ScopeGuard { shared: Arc::clone(&self.shared), prev }
    }
}

/// RAII guard from [`ScopeHandle::enter`]; restores the previous scope
/// on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    shared: Arc<ScopeShared>,
    prev: usize,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        self.shared.current.store(self.prev, Ordering::Relaxed);
    }
}

/// Per-scope raw tallies, mirroring what the hierarchy itself counts.
#[derive(Clone, Debug, Default)]
struct ScopeTally {
    /// Per-level counter deltas (grown on first touch of each level).
    levels: Vec<CacheStats>,
    tlb: TlbStats,
    memory_lines: u64,
    classes: MissClasses,
}

impl ScopeTally {
    fn is_zero(&self) -> bool {
        self.levels.iter().all(|l| l.accesses == 0 && l.prefetches == 0 && l.writebacks == 0)
            && self.tlb.accesses == 0
            && self.memory_lines == 0
            && self.classes.total() == 0
    }
}

/// The attribution engine owned by a profiling [`MemoryHierarchy`].
///
/// Hooks are called from the hierarchy at exactly the sites where its
/// own counters change, passing before/after [`CacheStats`] snapshots —
/// delta attribution by construction matches the aggregate counters
/// field for field (including write-backs triggered by prefetch fills,
/// which are invisible in the probe result).
#[derive(Clone, Debug)]
pub(crate) struct CacheProfiler {
    shared: Arc<ScopeShared>,
    label: String,
    num_levels: usize,
    has_tlb: bool,
    has_classes: bool,
    /// Scope id cached at the start of the current access.
    current: usize,
    scopes: Vec<ScopeTally>,
    sampler: Option<IntervalSampler>,
}

impl CacheProfiler {
    pub(crate) fn new(
        label: &str,
        num_levels: usize,
        has_tlb: bool,
        has_classes: bool,
        sampler: Option<IntervalSampler>,
    ) -> Self {
        let mut table = PathTable::default();
        table.intern(UNATTRIBUTED);
        Self {
            shared: Arc::new(ScopeShared {
                current: AtomicUsize::new(0),
                table: Mutex::new(table),
            }),
            label: label.to_string(),
            num_levels,
            has_tlb,
            has_classes,
            current: 0,
            scopes: Vec::new(),
            sampler,
        }
    }

    pub(crate) fn handle(&self) -> ScopeHandle {
        ScopeHandle { shared: Arc::clone(&self.shared) }
    }

    /// Refresh the cached scope id; called once per hierarchy access
    /// (the scope cannot change mid-access).
    #[inline]
    pub(crate) fn sync_scope(&mut self) {
        self.current = self.shared.current.load(Ordering::Relaxed);
    }

    fn tally(&mut self) -> &mut ScopeTally {
        let id = self.current;
        if self.scopes.len() <= id {
            self.scopes.resize_with(id + 1, ScopeTally::default);
        }
        &mut self.scopes[id]
    }

    pub(crate) fn on_tlb(&mut self, hit: bool) {
        let t = self.tally();
        t.tlb.accesses += 1;
        if !hit {
            t.tlb.misses += 1;
        }
    }

    pub(crate) fn on_level(&mut self, level: usize, before: CacheStats, after: CacheStats) {
        {
            let t = self.tally();
            if t.levels.len() <= level {
                t.levels.resize_with(level + 1, CacheStats::default);
            }
            let l = &mut t.levels[level];
            l.accesses += after.accesses - before.accesses;
            l.hits += after.hits - before.hits;
            l.misses += after.misses - before.misses;
            l.victim_hits += after.victim_hits - before.victim_hits;
            l.writebacks += after.writebacks - before.writebacks;
            l.prefetches += after.prefetches - before.prefetches;
        }
        if level == 0 {
            if let Some(s) = &mut self.sampler {
                s.on_l1(after.accesses - before.accesses, after.misses - before.misses);
            }
        }
    }

    pub(crate) fn on_memory_line(&mut self) {
        self.tally().memory_lines += 1;
    }

    pub(crate) fn on_class(&mut self, class: MissClass) {
        self.tally().classes.add(class);
    }

    fn self_stats(&self, tally: &ScopeTally) -> HierarchyStats {
        let levels = (0..self.num_levels)
            .map(|i| {
                let s = tally.levels.get(i).copied().unwrap_or_default();
                LevelStats {
                    level: i,
                    accesses: s.accesses,
                    hits: s.hits,
                    misses: s.misses,
                    writebacks: s.writebacks,
                    prefetches: s.prefetches,
                    miss_rate: s.miss_rate(),
                }
            })
            .collect();
        HierarchyStats {
            levels,
            tlb: self.has_tlb.then_some(tally.tlb),
            memory_lines_fetched: tally.memory_lines,
            l1_classes: self.has_classes.then_some(tally.classes),
        }
    }

    /// Freeze the profile: per-scope self stats, subtree totals (path
    /// prefix aggregation), and the timeline (final partial interval
    /// flushed). `machine` is the hierarchy's configuration label.
    pub(crate) fn finish(mut self, machine: &str) -> CacheProfile {
        let (interval, timeline) = match self.sampler.take() {
            Some(mut s) => {
                s.flush();
                (s.interval, s.samples)
            }
            None => (0, Vec::new()),
        };
        let paths: Vec<String> = lock(&self.shared.table).paths.clone();
        // Scope-id order is first-entry order; drivers enter parents
        // before children, so this doubles as pre-order for rendering.
        let mut selves: Vec<(String, HierarchyStats)> = Vec::new();
        for (id, tally) in self.scopes.iter().enumerate() {
            let path = paths.get(id).cloned().unwrap_or_else(|| format!("scope[{id}]"));
            selves.push((path, self.self_stats(tally)));
        }
        // Pure-container scopes (zero self traffic) survive as long as
        // some descendant was charged — a tiled run's root scope has
        // zero self stats but its subtree total is the whole run.
        let spans = selves
            .iter()
            .zip(&self.scopes)
            .filter_map(|((path, self_stats), tally)| {
                let prefix = format!("{path}/");
                let mut total = empty_like(self_stats);
                for (q, s) in &selves {
                    if q == path || q.starts_with(&prefix) {
                        merge_stats(&mut total, s);
                    }
                }
                if tally.is_zero() && is_zero_stats(&total) {
                    return None;
                }
                Some(SpanCacheStats {
                    path: path.clone(),
                    self_stats: self_stats.clone(),
                    total_stats: total,
                })
            })
            .collect();
        CacheProfile {
            label: self.label,
            machine: machine.to_string(),
            interval,
            spans,
            timeline,
        }
    }
}

/// The delta-encoded miss-rate timeline sampler (see the module docs).
#[derive(Clone, Debug)]
pub(crate) struct IntervalSampler {
    interval: u64,
    label: String,
    registry: Registry,
    accesses: u64,
    misses: u64,
    emitted_accesses: u64,
    emitted_misses: u64,
    seq: u64,
    samples: Vec<TimelineSample>,
}

impl IntervalSampler {
    /// `interval` is in L1 demand accesses and must be at least 1.
    pub(crate) fn new(label: &str, interval: u64, registry: Registry) -> Self {
        assert!(interval > 0, "sampling interval must be at least 1 access");
        Self {
            interval,
            label: label.to_string(),
            registry,
            accesses: 0,
            misses: 0,
            emitted_accesses: 0,
            emitted_misses: 0,
            seq: 0,
            samples: Vec::new(),
        }
    }

    #[inline]
    fn on_l1(&mut self, d_accesses: u64, d_misses: u64) {
        self.accesses += d_accesses;
        self.misses += d_misses;
        if self.accesses - self.emitted_accesses >= self.interval {
            self.emit_sample();
        }
    }

    fn emit_sample(&mut self) {
        let record = TimelineRecord {
            label: self.label.clone(),
            seq: self.seq,
            accesses: self.accesses - self.emitted_accesses,
            l1_misses: self.misses - self.emitted_misses,
        };
        self.registry.emit(&record.to_json());
        self.samples.push(TimelineSample {
            seq: record.seq,
            accesses: record.accesses,
            l1_misses: record.l1_misses,
        });
        self.emitted_accesses = self.accesses;
        self.emitted_misses = self.misses;
        self.seq += 1;
    }

    /// Emit the final partial interval, if any accesses are pending —
    /// a trace shorter than one interval still yields one sample.
    fn flush(&mut self) {
        if self.accesses > self.emitted_accesses {
            self.emit_sample();
        }
    }
}

/// One retained timeline sample; `accesses` / `l1_misses` are deltas
/// over the interval (matching the JSONL `TimelineRecord` encoding).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineSample {
    /// Sample index, starting at 0.
    pub seq: u64,
    /// L1 demand accesses in this interval.
    pub accesses: u64,
    /// L1 demand misses in this interval.
    pub l1_misses: u64,
}

impl TimelineSample {
    /// Miss rate over this interval in `[0, 1]`; 0 when empty.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }
}

/// One scope's slice of the hierarchy counters.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanCacheStats {
    /// `/`-separated scope path, e.g. `fw.tiled.bdl/tile[3]`.
    pub path: String,
    /// Traffic charged to exactly this scope (children excluded).
    pub self_stats: HierarchyStats,
    /// Traffic of this scope plus every descendant scope (path-prefix
    /// subtree sum; `self` for leaves).
    pub total_stats: HierarchyStats,
}

/// A frozen span-scoped cache profile for one simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheProfile {
    /// Run label, matching the `cache_sims` section label (e.g.
    /// `fw.tiled.bdl`).
    pub label: String,
    /// Hierarchy configuration name the run was simulated on.
    pub machine: String,
    /// Timeline sampling interval in L1 accesses; 0 when no sampler
    /// was attached.
    pub interval: u64,
    /// Per-scope stats in first-entry (pre-)order; scopes with no
    /// traffic are omitted.
    pub spans: Vec<SpanCacheStats>,
    /// The miss-rate timeline (empty when `interval` is 0).
    pub timeline: Vec<TimelineSample>,
}

impl CacheProfile {
    /// Sum of all per-scope *self* stats. By construction this equals
    /// the run's aggregate [`HierarchyStats`] field for field (miss
    /// rates recomputed over the sums).
    pub fn sum_self(&self) -> HierarchyStats {
        let mut acc = match self.spans.first() {
            Some(s) => empty_like(&s.self_stats),
            None => HierarchyStats::default(),
        };
        for span in &self.spans {
            merge_stats(&mut acc, &span.self_stats);
        }
        acc
    }

    /// Look up a span by exact path.
    pub fn find(&self, path: &str) -> Option<&SpanCacheStats> {
        self.spans.iter().find(|s| s.path == path)
    }
}

/// True when no counter in `stats` ever ticked.
fn is_zero_stats(stats: &HierarchyStats) -> bool {
    stats.levels.iter().all(|l| l.accesses == 0 && l.writebacks == 0 && l.prefetches == 0)
        && stats.tlb.is_none_or(|t| t.accesses == 0)
        && stats.memory_lines_fetched == 0
}

/// A zero-valued stats skeleton with the same shape (level count,
/// TLB/classes presence) as `like`.
fn empty_like(like: &HierarchyStats) -> HierarchyStats {
    HierarchyStats {
        levels: like
            .levels
            .iter()
            .map(|l| LevelStats { level: l.level, ..LevelStats::default() })
            .collect(),
        tlb: like.tlb.map(|_| TlbStats::default()),
        memory_lines_fetched: 0,
        l1_classes: like.l1_classes.map(|_| MissClasses::default()),
    }
}

/// Field-wise accumulate `from` into `acc`, recomputing miss rates.
fn merge_stats(acc: &mut HierarchyStats, from: &HierarchyStats) {
    if acc.levels.len() < from.levels.len() {
        acc.levels.extend(from.levels[acc.levels.len()..].iter().map(|l| LevelStats {
            level: l.level,
            ..LevelStats::default()
        }));
    }
    for (a, f) in acc.levels.iter_mut().zip(&from.levels) {
        a.accesses += f.accesses;
        a.hits += f.hits;
        a.misses += f.misses;
        a.writebacks += f.writebacks;
        a.prefetches += f.prefetches;
        a.miss_rate = if a.accesses == 0 { 0.0 } else { a.misses as f64 / a.accesses as f64 };
    }
    if let Some(f) = &from.tlb {
        let t = acc.tlb.get_or_insert_with(TlbStats::default);
        t.accesses += f.accesses;
        t.misses += f.misses;
    }
    acc.memory_lines_fetched += from.memory_lines_fetched;
    if let Some(f) = &from.l1_classes {
        let c = acc.l1_classes.get_or_insert_with(MissClasses::default);
        c.compulsory += f.compulsory;
        c.capacity += f.capacity;
        c.conflict += f.conflict;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig, TlbConfig};
    use crate::hierarchy::MemoryHierarchy;

    fn two_level_tlb(classify: bool) -> MemoryHierarchy {
        let config = HierarchyConfig {
            name: "profile-test".into(),
            levels: vec![
                CacheConfig::new("L1", 256, 16, 2),
                CacheConfig::new("L2", 1024, 16, 4),
            ],
            tlb: Some(TlbConfig::fully_associative(8, 4096)),
        };
        if classify {
            MemoryHierarchy::new_classifying(config)
        } else {
            MemoryHierarchy::new(config)
        }
    }

    fn assert_stats_eq(a: &HierarchyStats, b: &HierarchyStats) {
        assert_eq!(a.levels.len(), b.levels.len());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.level, y.level);
            assert_eq!(x.accesses, y.accesses, "L{} accesses", x.level + 1);
            assert_eq!(x.hits, y.hits, "L{} hits", x.level + 1);
            assert_eq!(x.misses, y.misses, "L{} misses", x.level + 1);
            assert_eq!(x.writebacks, y.writebacks, "L{} writebacks", x.level + 1);
            assert_eq!(x.prefetches, y.prefetches, "L{} prefetches", x.level + 1);
            assert!((x.miss_rate - y.miss_rate).abs() < 1e-12);
        }
        assert_eq!(a.tlb, b.tlb);
        assert_eq!(a.memory_lines_fetched, b.memory_lines_fetched);
        assert_eq!(a.l1_classes, b.l1_classes);
    }

    #[test]
    fn per_scope_self_stats_sum_to_aggregate_exactly() {
        let mut h = two_level_tlb(true);
        let handle = h.attach_profiler("test.run");
        {
            let _root = handle.enter("test.run");
            for addr in 0..256u64 {
                h.read(addr, 1);
            }
            {
                let _phase = handle.enter("test.run/phase[0]");
                for addr in (0..4096u64).step_by(16) {
                    h.write(addr, 4);
                }
            }
            {
                let _phase = handle.enter("test.run/phase[1]");
                for addr in (0..512u64).rev() {
                    h.read(addr, 2);
                }
            }
        }
        let aggregate = h.stats();
        let profile = h.take_profile().expect("profiler attached");
        assert_stats_eq(&profile.sum_self(), &aggregate);
        let paths: Vec<&str> = profile.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["test.run", "test.run/phase[0]", "test.run/phase[1]"]);
        // Subtree totals: the root's total is the whole run.
        let root = profile.find("test.run").expect("root span");
        assert_stats_eq(&root.total_stats, &aggregate);
        // Leaf totals equal their self stats.
        let leaf = profile.find("test.run/phase[1]").expect("leaf span");
        assert_stats_eq(&leaf.total_stats, &leaf.self_stats);
        // The run had real traffic in every section.
        assert!(aggregate.levels[0].misses > 0);
        assert!(aggregate.tlb.expect("tlb").misses > 0);
        assert!(aggregate.l1_classes.expect("classes").total() > 0);
    }

    #[test]
    fn unattributed_traffic_lands_in_reserved_scope() {
        let mut h = two_level_tlb(false);
        h.attach_profiler("test.run");
        h.read(0, 4); // no scope entered
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.spans.len(), 1);
        assert_eq!(profile.spans[0].path, UNATTRIBUTED);
        assert_stats_eq(&profile.sum_self(), &profile.spans[0].self_stats);
    }

    #[test]
    fn guards_restore_previous_scope() {
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler("t");
        let outer = handle.enter("t");
        {
            let _inner = handle.enter("t/inner");
            h.read(0, 4);
        }
        h.read(4096, 4); // back in the outer scope
        drop(outer);
        h.read(8192, 4); // unattributed again
        let profile = h.take_profile().expect("profiler attached");
        let paths: Vec<&str> = profile.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, [UNATTRIBUTED, "t", "t/inner"]);
        assert_eq!(profile.find("t/inner").expect("inner").self_stats.levels[0].accesses, 1);
        assert_eq!(profile.find("t").expect("outer").self_stats.levels[0].accesses, 1);
        // The outer span's subtree total covers the inner one.
        assert_eq!(profile.find("t").expect("outer").total_stats.levels[0].accesses, 2);
    }

    #[test]
    fn option_guard_replacement_pattern_keeps_chain_consistent() {
        // The pattern instrumented drivers use: one Option<ScopeGuard>
        // replaced per tile, cleared before reassignment.
        let mut h = two_level_tlb(false);
        let handle = h.attach_profiler("t");
        let _root = handle.enter("t");
        let mut tile: Option<ScopeGuard> = None;
        for i in 0..3 {
            drop(tile.take()); // restore the root scope before re-entering
            tile = Some(handle.enter(&format!("t/tile[{i}]")));
            h.read(i * 4096, 4);
        }
        drop(tile);
        h.read(1 << 20, 4); // must land back on the root scope
        drop(_root);
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.find("t").expect("root").self_stats.levels[0].accesses, 1);
        for i in 0..3 {
            let path = format!("t/tile[{i}]");
            assert_eq!(
                profile.find(&path).expect("tile").self_stats.levels[0].accesses,
                1,
                "{path}"
            );
        }
        assert_eq!(profile.find("t").expect("root").total_stats.levels[0].accesses, 4);
    }

    #[test]
    fn sampler_emits_full_intervals_and_flushes_partial_tail() {
        let mut h = two_level_tlb(false);
        let reg = Registry::disabled();
        h.attach_profiler_sampled("t", 4, &reg);
        for addr in 0..10u64 {
            h.read(addr * 16, 1); // 10 L1 accesses, one line each
        }
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.interval, 4);
        let seqs: Vec<u64> = profile.timeline.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        let accesses: Vec<u64> = profile.timeline.iter().map(|s| s.accesses).collect();
        assert_eq!(accesses, [4, 4, 2], "two full intervals plus the flushed tail");
        let total_misses: u64 = profile.timeline.iter().map(|s| s.l1_misses).sum();
        assert_eq!(total_misses, h.stats().levels[0].misses);
    }

    #[test]
    fn sampler_interval_of_one_samples_every_access() {
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("t", 1, &Registry::disabled());
        for addr in 0..5u64 {
            h.read(addr, 1);
        }
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.timeline.len(), 5);
        assert!(profile.timeline.iter().all(|s| s.accesses == 1));
        assert!(profile.timeline.iter().all(|s| s.l1_misses <= 1));
    }

    #[test]
    fn sampler_trace_shorter_than_interval_yields_one_sample() {
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("t", 1_000, &Registry::disabled());
        h.read(0, 4);
        h.read(16, 4);
        h.read(32, 4);
        let profile = h.take_profile().expect("profiler attached");
        assert_eq!(profile.timeline.len(), 1);
        assert_eq!(profile.timeline[0].accesses, 3);
        assert_eq!(profile.timeline[0].l1_misses, 3); // all cold
    }

    #[test]
    fn sampler_with_no_traffic_emits_nothing() {
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("t", 8, &Registry::disabled());
        let profile = h.take_profile().expect("profiler attached");
        assert!(profile.timeline.is_empty());
        assert!(profile.spans.is_empty());
    }

    #[test]
    fn sampler_streams_timeline_records_through_jsonl_sink() {
        use std::sync::{Arc as StdArc, Mutex as StdMutex};

        #[derive(Clone, Default)]
        struct Shared(StdArc<StdMutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let reg = Registry::new();
        let sink = Shared::default();
        reg.attach_jsonl_sink(Box::new(sink.clone()));
        let mut h = two_level_tlb(false);
        h.attach_profiler_sampled("live.run", 2, &reg);
        for addr in 0..6u64 {
            h.read(addr * 16, 1);
        }
        let profile = h.take_profile().expect("profiler attached");
        let text = String::from_utf8(sink.0.lock().expect("sink lock").clone()).expect("utf8");
        let records: Vec<TimelineRecord> = text
            .lines()
            .filter_map(|l| cachegraph_obs::parse_json(l).ok())
            .filter_map(|j| TimelineRecord::from_json(&j))
            .collect();
        assert_eq!(records.len(), profile.timeline.len());
        for (r, s) in records.iter().zip(&profile.timeline) {
            assert_eq!(r.label, "live.run");
            assert_eq!((r.seq, r.accesses, r.l1_misses), (s.seq, s.accesses, s.l1_misses));
        }
    }

    #[test]
    fn take_profile_without_attach_is_none() {
        let mut h = two_level_tlb(false);
        assert!(h.take_profile().is_none());
    }
}
