//! A single set-associative cache level with true-LRU replacement.

use crate::config::CacheConfig;

/// Whether an access reads or writes the touched line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (prefetches are not counted as accesses).
    pub accesses: u64,
    /// Demand hits, including hits served by the victim cache.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Misses that were satisfied by swapping a line back from the victim
    /// cache (a subset of `hits`: a victim hit is counted as a hit because
    /// it does not travel to the next level).
    pub victim_hits: u64,
    /// Dirty lines written back to the next level on eviction.
    pub writebacks: u64,
    /// Lines brought in by the next-line prefetcher.
    pub prefetches: u64,
}

impl CacheStats {
    /// Demand miss rate in `[0, 1]`; `0` when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One cache way: a tag plus its state.
#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch; smallest = LRU victim.
    stamp: u64,
}

const INVALID: Way = Way { tag: 0, valid: false, dirty: false, stamp: 0 };

/// The outcome of a single cache probe, reported to the caller so the
/// hierarchy can propagate misses and write-backs outward — and, since
/// the event-driven attribution rework, rich enough that every counter
/// this probe moved can be reconstructed from it alone (no before/after
/// stats snapshots needed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ProbeResult {
    /// True if the line was present (including in the victim cache).
    pub hit: bool,
    /// True if the hit was served by swapping the line back from the
    /// victim cache (implies `hit`).
    pub victim_hit: bool,
    /// Address of a dirty line evicted by this fill, if any. The hierarchy
    /// forwards it to the next level as a write access.
    pub writeback: Option<u64>,
    /// Line address the prefetcher wants from the next level, if any.
    pub prefetch: Option<u64>,
    /// The prefetch fill evicted a dirty line. That write-back is counted
    /// in [`CacheStats::writebacks`] but absorbed here (never propagated
    /// to the next level) — prefetches are opportunistic and must not
    /// generate demand traffic beyond the prefetch read itself.
    pub silent_writeback: bool,
}

impl ProbeResult {
    /// How many times this probe incremented [`CacheStats::writebacks`]
    /// (the propagated write-back plus the absorbed prefetch-fill one).
    #[inline]
    pub fn writeback_count(&self) -> u8 {
        u8::from(self.writeback.is_some()) + u8::from(self.silent_writeback)
    }
}

/// A set-associative, true-LRU cache with optional victim cache and
/// next-line prefetcher. Operates purely on addresses; no data is stored.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `num_sets * associativity` ways, set-major.
    ways: Vec<Way>,
    /// Fully-associative victim buffer (line addresses), LRU order:
    /// index 0 is the most recently inserted.
    victim: Vec<(u64, bool)>,
    stats: CacheStats,
    clock: u64,
    line_shift: u32,
    set_mask: u64,
}

impl SetAssocCache {
    /// Build an empty (all-invalid) cache for `config`.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let sets = config.num_sets();
        let ways = vec![INVALID; sets * config.associativity];
        let line_shift = config.line_bytes.trailing_zeros();
        let set_mask = (sets - 1) as u64;
        Self {
            config,
            ways,
            victim: Vec::new(),
            stats: CacheStats::default(),
            clock: 0,
            line_shift,
            set_mask,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidate all lines and reset counters.
    pub fn flush(&mut self) {
        self.ways.fill(INVALID);
        self.victim.clear();
        self.stats = CacheStats::default();
        self.clock = 0;
    }

    /// Line address (address with the offset bits cleared).
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Probe the cache with a demand access. Returns hit/miss plus any
    /// write-back or prefetch request the caller must forward outward.
    pub(crate) fn access(&mut self, addr: u64, kind: AccessKind) -> ProbeResult {
        self.stats.accesses += 1;
        self.clock += 1;
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        let assoc = self.config.associativity;
        let base = set * assoc;

        // Hit path.
        for w in &mut self.ways[base..base + assoc] {
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                if kind == AccessKind::Write {
                    w.dirty = true;
                }
                self.stats.hits += 1;
                return ProbeResult { hit: true, ..ProbeResult::default() };
            }
        }

        // Victim-cache path: swap the line back in if present there.
        if self.config.victim_entries > 0 {
            if let Some(pos) = self.victim.iter().position(|&(a, _)| self.tag(a) == tag) {
                let (_, was_dirty) = self.victim.remove(pos);
                self.stats.hits += 1;
                self.stats.victim_hits += 1;
                let wb = self.fill(addr, kind == AccessKind::Write || was_dirty);
                return ProbeResult {
                    hit: true,
                    victim_hit: true,
                    writeback: wb,
                    ..ProbeResult::default()
                };
            }
        }

        // Miss: fill, possibly evicting.
        self.stats.misses += 1;
        let wb = self.fill(addr, kind == AccessKind::Write);
        let prefetch = if self.config.next_line_prefetch {
            let next = self.line_addr(addr) + self.config.line_bytes as u64;
            if !self.contains_line(next) { Some(next) } else { None }
        } else {
            None
        };
        let mut silent_writeback = false;
        if let Some(p) = prefetch {
            silent_writeback = self.insert_prefetch(p);
        }
        ProbeResult { hit: false, victim_hit: false, writeback: wb, prefetch, silent_writeback }
    }

    /// Public single-cache probe: simulate one access, returning whether
    /// it hit. (The richer [`ProbeResult`] plumbing — write-backs,
    /// prefetch requests — is internal to [`MemoryHierarchy`]
    /// (crate::MemoryHierarchy), which owns inter-level traffic.)
    pub fn probe(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.access(addr, kind).hit
    }

    /// True if the line containing `addr` is resident (victim cache included).
    pub fn contains_line(&self, addr: u64) -> bool {
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        let assoc = self.config.associativity;
        let resident = self.ways[set * assoc..(set + 1) * assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag);
        resident || self.victim.iter().any(|&(a, _)| self.tag(a) == tag)
    }

    /// Bring the line for `addr` into its set, evicting the LRU way.
    /// Returns the address of an evicted dirty line, if any.
    fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let tag = self.tag(addr);
        let set = self.set_index(addr);
        let assoc = self.config.associativity;
        let base = set * assoc;

        let victim_way = {
            let mut idx = 0;
            let mut best = u64::MAX;
            for (i, w) in self.ways[base..base + assoc].iter().enumerate() {
                if !w.valid {
                    idx = i;
                    break;
                }
                if w.stamp < best {
                    best = w.stamp;
                    idx = i;
                }
            }
            base + idx
        };

        let evicted = self.ways[victim_way];
        self.ways[victim_way] =
            Way { tag, valid: true, dirty, stamp: self.clock };

        if !evicted.valid {
            return None;
        }
        let evicted_addr = evicted.tag << self.line_shift;
        if self.config.victim_entries > 0 {
            // Displaced lines park in the victim cache; a dirty line pushed
            // out of the victim cache becomes the write-back.
            self.victim.insert(0, (evicted_addr, evicted.dirty));
            if self.victim.len() > self.config.victim_entries {
                if let Some((old_addr, old_dirty)) = self.victim.pop() {
                    if old_dirty {
                        self.stats.writebacks += 1;
                        return Some(old_addr);
                    }
                }
            }
            None
        } else if evicted.dirty {
            self.stats.writebacks += 1;
            Some(evicted_addr)
        } else {
            None
        }
    }

    /// Insert a prefetched line (clean, not counted as a demand access).
    /// Returns true when the fill evicted a dirty line — that write-back
    /// is already counted in `stats.writebacks` but is absorbed, never
    /// propagated (see [`ProbeResult::silent_writeback`]).
    fn insert_prefetch(&mut self, addr: u64) -> bool {
        self.stats.prefetches += 1;
        self.fill(addr, false).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 16B lines = 128 B.
        SetAssocCache::new(CacheConfig::new("t", 128, 16, 2))
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = tiny();
        for addr in 0..256u64 {
            c.access(addr, AccessKind::Read);
        }
        assert_eq!(c.stats().accesses, 256);
        assert_eq!(c.stats().misses, 16); // 256 B / 16 B lines
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        for _ in 0..10 {
            let r = c.access(4, AccessKind::Read);
            assert!(r.hit);
        }
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 of a 2-way cache: stride = sets*line = 64.
        c.access(0, AccessKind::Read);
        c.access(64, AccessKind::Read);
        c.access(0, AccessKind::Read); // touch 0 so 64 is LRU
        c.access(128, AccessKind::Read); // evicts 64
        assert!(c.contains_line(0));
        assert!(!c.contains_line(64));
        assert!(c.contains_line(128));
    }

    #[test]
    fn assoc_plus_one_thrash() {
        let mut c = tiny();
        // 3 conflicting lines round-robin in a 2-way set always miss.
        for _ in 0..10 {
            for a in [0u64, 64, 128] {
                c.access(a, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 30);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.access(64, AccessKind::Read);
        let r = c.access(128, AccessKind::Read); // evicts line 0 (dirty, LRU)
        assert_eq!(r.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(64, AccessKind::Read);
        let r = c.access(128, AccessKind::Read);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn victim_cache_rescues_conflicts() {
        let cfg = CacheConfig::new("t", 128, 16, 2).with_victim(4);
        let mut c = SetAssocCache::new(cfg);
        // The 3-way round-robin conflict now hits in the victim cache
        // after the first round.
        for _ in 0..10 {
            for a in [0u64, 64, 128] {
                c.access(a, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().misses, 3);
        assert!(c.stats().victim_hits > 0);
    }

    #[test]
    fn prefetch_brings_next_line() {
        let cfg = CacheConfig::new("t", 128, 16, 2).with_prefetch();
        let mut c = SetAssocCache::new(cfg);
        let r = c.access(0, AccessKind::Read);
        assert_eq!(r.prefetch, Some(16));
        assert!(c.contains_line(16));
        let r2 = c.access(16, AccessKind::Read);
        assert!(r2.hit);
        assert_eq!(c.stats().prefetches, 1);
    }

    #[test]
    fn flush_clears_contents_and_stats() {
        let mut c = tiny();
        c.access(0, AccessKind::Write);
        c.flush();
        assert!(!c.contains_line(0));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write); // hit, now dirty
        c.access(64, AccessKind::Read);
        let r = c.access(128, AccessKind::Read); // evicts 0
        assert_eq!(r.writeback, Some(0));
    }
}
