//! A set-associative TLB model.
//!
//! The paper notes (§1) that TLB miss penalties "also play an important role
//! in the effectiveness of cache friendly optimizations", and the Block Data
//! Layout analysis (§3.1.2.2) requires the block-size search space to account
//! for the TLB. The TLB here is a tag-only LRU cache keyed by page number.

use crate::cache::{AccessKind, SetAssocCache};
use crate::config::{CacheConfig, TlbConfig};

/// Hit/miss counters for the TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Page-table walks (misses).
    pub misses: u64,
}

impl TlbStats {
    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A TLB is structurally a cache whose "line" is a page, so it reuses
/// [`SetAssocCache`] with the page size as the line size.
#[derive(Clone, Debug)]
pub struct Tlb {
    inner: SetAssocCache,
    page_bytes: usize,
}

impl Tlb {
    /// Build an empty TLB.
    pub fn new(config: &TlbConfig) -> Self {
        assert!(config.page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(config.entries >= config.associativity && config.entries.is_multiple_of(config.associativity));
        let cache_cfg = CacheConfig::new(
            "TLB",
            config.entries * config.page_bytes,
            config.page_bytes,
            config.associativity,
        );
        Self { inner: SetAssocCache::new(cache_cfg), page_bytes: config.page_bytes }
    }

    /// Translate the page containing `addr`; records and returns
    /// whether the translation hit (so callers — the hierarchy's
    /// attribution profiler — can charge the miss to a scope).
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr, AccessKind::Read).hit
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TlbStats {
        let s = self.inner.stats();
        TlbStats { accesses: s.accesses, misses: s.misses }
    }

    /// Page size this TLB translates.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Invalidate all entries and reset counters.
    pub fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_miss_per_page() {
        let mut tlb = Tlb::new(&TlbConfig::fully_associative(64, 4096));
        for addr in (0..16 * 4096u64).step_by(64) {
            tlb.access(addr);
        }
        assert_eq!(tlb.stats().misses, 16);
    }

    #[test]
    fn capacity_thrash() {
        let mut tlb = Tlb::new(&TlbConfig::fully_associative(4, 4096));
        // 5 pages round-robin through a 4-entry fully associative TLB:
        // every access misses after warmup under LRU.
        for _ in 0..10 {
            for p in 0..5u64 {
                tlb.access(p * 4096);
            }
        }
        assert_eq!(tlb.stats().misses, 50);
    }

    #[test]
    fn within_page_hits() {
        let mut tlb = Tlb::new(&TlbConfig::fully_associative(64, 4096));
        assert!(!tlb.access(0), "cold translation misses");
        assert!(tlb.access(4095), "same page hits");
        assert_eq!(tlb.stats().misses, 1);
        assert_eq!(tlb.stats().accesses, 2);
    }
}
