//! A virtual address-space allocator for simulated buffers.
//!
//! Each simulated data structure gets a distinct address range so that
//! conflict misses *between* structures (e.g. the three FW tile arguments)
//! are modeled, exactly the effect the paper's layout optimizations target.

use crate::trace::TracedBuffer;

/// Default allocation alignment: one 4 KiB page, matching what a 2002-era
/// `malloc` would give large arrays (and making TLB behaviour clean).
pub const DEFAULT_ALIGN: u64 = 4096;

/// Hands out non-overlapping virtual address ranges.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
    align: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Start allocating at a non-zero base (so address 0 never appears)
    /// with page alignment.
    pub fn new() -> Self {
        Self { next: DEFAULT_ALIGN, align: DEFAULT_ALIGN }
    }

    /// Use a custom alignment (must be a power of two).
    pub fn with_alignment(align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Self { next: align, align }
    }

    /// Reserve `bytes` bytes; returns the base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let end = base + bytes;
        self.next = end.div_ceil(self.align) * self.align;
        base
    }

    /// Allocate a zero-initialised traced buffer of `len` elements.
    pub fn alloc_traced<T: Copy + Default>(&mut self, len: usize) -> TracedBuffer<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let base = self.alloc(bytes.max(1));
        TracedBuffer::new(base, vec![T::default(); len])
    }

    /// Allocate a traced buffer taking ownership of existing data.
    pub fn adopt<T: Copy>(&mut self, data: Vec<T>) -> TracedBuffer<T> {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let base = self.alloc(bytes.max(1));
        TracedBuffer::new(base, data)
    }

    /// Address the next allocation would start at.
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut s = AddressSpace::new();
        let a = s.alloc(100);
        let b = s.alloc(100);
        assert!(b >= a + 100);
    }

    #[test]
    fn allocations_are_aligned() {
        let mut s = AddressSpace::new();
        let _ = s.alloc(1);
        let b = s.alloc(8);
        assert_eq!(b % DEFAULT_ALIGN, 0);
    }

    #[test]
    fn custom_alignment() {
        let mut s = AddressSpace::with_alignment(64);
        let a = s.alloc(10);
        let b = s.alloc(10);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert_eq!(b - a, 64);
    }

    #[test]
    fn base_is_nonzero() {
        let mut s = AddressSpace::new();
        assert_ne!(s.alloc(4), 0);
    }
}
