//! Reuse-distance (LRU stack-distance) profiling.
//!
//! The stack distance of an access is the number of *distinct* lines
//! touched since the previous access to the same line. A fully-associative
//! LRU cache of capacity `C` misses exactly the accesses with stack
//! distance `>= C` (plus every first touch), so one profiling pass yields
//! the miss count for *every* capacity at once — the standard tool for
//! questions like "how big a cache would the baseline need to behave like
//! the tiled version?" (the paper's Eq. 13 is a closed-form answer to the
//! inverse question for one algorithm).
//!
//! Implementation: Bennett-Kruskal. Each line is marked at the time of
//! its most recent access; a Fenwick tree over time counts marked
//! positions between two accesses in `O(log M)`.

use std::collections::HashMap;

/// Fenwick (binary-indexed) tree over time indices, growing by doubling.
/// Growth rebuilds the tree from the raw mark bitmap — a Fenwick update
/// must touch ancestor nodes beyond the old length, so appending zeros
/// alone would silently lose counts.
#[derive(Clone, Debug)]
struct Fenwick {
    /// Raw marks, one per time position.
    bits: Vec<bool>,
    /// 1-based Fenwick array over `bits`.
    tree: Vec<u32>,
}

impl Fenwick {
    fn new() -> Self {
        Self { bits: Vec::new(), tree: vec![0; 1025] }
    }

    /// Ensure position `i` (0-based) is addressable.
    fn grow_to(&mut self, i: usize) {
        if i < self.bits.len() {
            return;
        }
        self.bits.resize((i + 1).max(self.bits.len() * 2), false);
        // Rebuild: O(n log n) on each doubling, amortised O(log n)/op.
        self.tree = vec![0; self.bits.len() + 1];
        for (pos, &set) in self.bits.clone().iter().enumerate() {
            if set {
                self.raw_add(pos, 1);
            }
        }
    }

    fn raw_add(&mut self, pos: usize, delta: i32) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            // Counts never underflow: a line is only decremented on the
            // prefixes it was previously incremented on.
            self.tree[i] = self.tree[i].wrapping_add_signed(delta);
            i += i & i.wrapping_neg();
        }
    }

    fn set(&mut self, pos: usize) {
        self.grow_to(pos);
        debug_assert!(!self.bits[pos]);
        self.bits[pos] = true;
        self.raw_add(pos, 1);
    }

    fn clear(&mut self, pos: usize) {
        debug_assert!(self.bits[pos]);
        self.bits[pos] = false;
        self.raw_add(pos, -1);
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, pos: usize) -> u64 {
        let mut i = (pos + 1).min(self.tree.len() - 1);
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Accumulates a reuse-distance histogram over a line-address stream.
#[derive(Clone, Debug)]
pub struct ReuseProfiler {
    line_bytes: u64,
    /// line -> time of its most recent access.
    last_access: HashMap<u64, usize>,
    marks: Fenwick,
    clock: usize,
    /// `histogram[d]` = accesses with stack distance exactly `d`
    /// (saturated into the last bucket).
    histogram: Vec<u64>,
    /// First touches (infinite distance).
    compulsory: u64,
    accesses: u64,
}

impl ReuseProfiler {
    /// Profile a stream of byte addresses at the given line granularity.
    /// Distances above `max_tracked` land in the final histogram bucket.
    pub fn new(line_bytes: u64, max_tracked: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        Self {
            line_bytes,
            last_access: HashMap::new(),
            marks: Fenwick::new(),
            clock: 0,
            histogram: vec![0; max_tracked + 1],
            compulsory: 0,
            accesses: 0,
        }
    }

    /// Record one access.
    pub fn access(&mut self, addr: u64) {
        let line = addr / self.line_bytes;
        let t = self.clock;
        self.clock += 1;
        self.accesses += 1;
        match self.last_access.insert(line, t) {
            None => {
                self.compulsory += 1;
            }
            Some(prev) => {
                // Distinct lines touched strictly between prev and t.
                let between = self.marks.prefix(t) - self.marks.prefix(prev);
                let d = (between as usize).min(self.histogram.len() - 1);
                self.histogram[d] += 1;
                self.marks.clear(prev);
            }
        }
        self.marks.set(t);
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch (compulsory) count.
    pub fn compulsory(&self) -> u64 {
        self.compulsory
    }

    /// The reuse-distance histogram (index = distinct lines between
    /// reuses; last bucket aggregates everything at or beyond the cap).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Predicted misses for a fully-associative LRU cache of
    /// `capacity_lines` lines: compulsory plus every reuse at distance
    /// `>= capacity_lines`. Exact for capacities below the tracking cap.
    pub fn misses_for_capacity(&self, capacity_lines: usize) -> u64 {
        let from = capacity_lines.min(self.histogram.len() - 1);
        self.compulsory + self.histogram[from..].iter().sum::<u64>()
    }

    /// The smallest capacity (in lines) whose predicted miss count is at
    /// most `target`, if any capacity under the tracking cap achieves it.
    pub fn capacity_for_misses(&self, target: u64) -> Option<usize> {
        (0..self.histogram.len()).find(|&c| self.misses_for_capacity(c) <= target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_is_all_compulsory() {
        let mut p = ReuseProfiler::new(64, 128);
        for i in 0..100u64 {
            p.access(i * 64);
        }
        assert_eq!(p.compulsory(), 100);
        assert_eq!(p.misses_for_capacity(1), 100);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut p = ReuseProfiler::new(64, 16);
        p.access(0);
        p.access(0);
        p.access(8); // same line
        assert_eq!(p.compulsory(), 1);
        assert_eq!(p.histogram()[0], 2);
        // Even a 1-line cache captures distance-0 reuses.
        assert_eq!(p.misses_for_capacity(1), 1);
    }

    #[test]
    fn round_robin_distances() {
        // Cycle over k lines: every reuse has distance k - 1.
        let k = 5u64;
        let mut p = ReuseProfiler::new(64, 16);
        for round in 0..4u64 {
            for l in 0..k {
                p.access(l * 64);
                let _ = round;
            }
        }
        assert_eq!(p.compulsory(), k);
        assert_eq!(p.histogram()[(k - 1) as usize], 3 * k);
        // Cache of k lines: only compulsory; cache of k-1: everything misses.
        assert_eq!(p.misses_for_capacity(k as usize), k);
        assert_eq!(p.misses_for_capacity((k - 1) as usize), 4 * k);
    }

    #[test]
    fn matches_fully_associative_simulation() {
        use crate::cache::{AccessKind, SetAssocCache};
        use crate::config::CacheConfig;
        // Pseudo-random trace; compare predicted vs simulated FA-LRU
        // misses for several capacities.
        let mut trace = Vec::new();
        let mut x = 12345u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            trace.push((x >> 16) % (256 * 64));
        }
        let mut p = ReuseProfiler::new(64, 512);
        for &a in &trace {
            p.access(a);
        }
        for lines in [4usize, 16, 64, 128] {
            let mut cache = SetAssocCache::new(CacheConfig::new("fa", lines * 64, 64, lines));
            for &a in &trace {
                cache.access(a, AccessKind::Read);
            }
            assert_eq!(
                p.misses_for_capacity(lines),
                cache.stats().misses,
                "capacity {lines} lines"
            );
        }
    }

    #[test]
    fn capacity_for_misses_inverts() {
        let mut p = ReuseProfiler::new(64, 64);
        for _ in 0..10 {
            for l in 0..8u64 {
                p.access(l * 64);
            }
        }
        // 8 lines suffice for compulsory-only behaviour.
        assert_eq!(p.capacity_for_misses(8), Some(8));
        assert_eq!(p.capacity_for_misses(0), None);
    }

    #[test]
    fn working_set_question_for_blocked_vs_linear() {
        // Blocked traversal of an 8x8-line matrix in 4x4 tiles reuses
        // within a 16-line working set; linear row scans of the same
        // matrix column-by-column need all 64.
        let lines_per_row = 8u64;
        let mut blocked = ReuseProfiler::new(64, 256);
        for bi in 0..2u64 {
            for bj in 0..2u64 {
                for _rep in 0..4 {
                    for i in 0..4u64 {
                        for j in 0..4u64 {
                            blocked.access(((bi * 4 + i) * lines_per_row + bj * 4 + j) * 64);
                        }
                    }
                }
            }
        }
        let mut linear = ReuseProfiler::new(64, 256);
        for _rep in 0..4 {
            for i in 0..8u64 {
                for j in 0..8u64 {
                    linear.access((i * lines_per_row + j) * 64);
                }
            }
        }
        // At a 16-line cache the blocked order is compulsory-only; the
        // linear order still misses everything.
        assert_eq!(blocked.misses_for_capacity(16), 64);
        assert!(linear.misses_for_capacity(16) > 64 * 3);
    }
}
