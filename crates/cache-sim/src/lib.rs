//! A multi-level data-cache and TLB simulator.
//!
//! This crate stands in for the SimpleScalar simulator used in
//! *Optimizing Graph Algorithms for Improved Cache Performance*
//! (Park, Penner & Prasanna). The paper uses SimpleScalar only to count
//! data-cache misses per level; this crate implements exactly that piece:
//! a configurable hierarchy of set-associative caches with LRU replacement,
//! write-back / write-allocate policy, an optional victim cache, an optional
//! next-line prefetcher, and a TLB model.
//!
//! Algorithms are instrumented by routing every array access through a
//! [`TracedBuffer`], which maps the element index to a virtual address and
//! feeds it to the [`MemoryHierarchy`]. Virtual addresses are handed out by
//! an [`AddressSpace`], so distinct buffers occupy distinct, realistically
//! aligned regions and conflict misses between structures are modeled.
//!
//! # Example
//!
//! ```
//! use cachegraph_sim::{AddressSpace, MemoryHierarchy, profiles};
//!
//! let mut hier = MemoryHierarchy::new(profiles::simplescalar());
//! let mut space = AddressSpace::new();
//! let buf = space.alloc_traced::<u32>(1024);
//! let mut sum = 0u64;
//! for i in 0..1024 {
//!     sum += buf.read(&mut hier, i) as u64; // every read is simulated
//! }
//! let l1 = &hier.stats().levels[0];
//! // A sequential u32 scan misses once per 32-byte line: 1024 / 8 = 128.
//! assert_eq!(l1.misses, 128);
//! assert_eq!(sum, 0);
//! ```

mod address;
mod cache;
pub mod classify;
mod config;
mod hierarchy;
pub mod profile;
pub mod profiles;
pub mod report;
pub mod reuse;
mod tlb;
mod trace;
pub mod tracefile;

pub use address::AddressSpace;
pub use cache::{AccessKind, CacheStats, SetAssocCache};
pub use classify::{ClassifyingCache, MissClass, MissClasses};
pub use config::{CacheConfig, HierarchyConfig, TlbConfig, WritePolicy};
pub use hierarchy::{HierarchyStats, LevelStats, MemoryHierarchy};
pub use profile::{
    CacheProfile, ProfilerOptions, ScopeGuard, ScopeHandle, SpanCacheStats, TimelineSample,
};
pub use reuse::ReuseProfiler;
pub use tlb::{Tlb, TlbStats};
pub use trace::TracedBuffer;
pub use tracefile::{read_trace_file, replay, write_trace_file, TraceError, TraceFileError, TraceRecorder};
