//! JSON serialization of simulation statistics for run reports.
//!
//! Converts [`HierarchyStats`] (levels, TLB, three-Cs classification,
//! memory traffic) to and from the `cache_sims` section of a
//! `cachegraph-obs` report document. The JSON layout is part of the
//! versioned report schema (see EXPERIMENTS.md); [`stats_from_json`]
//! is the inverse of [`stats_to_json`], which the schema round-trip
//! test in `tests/report_roundtrip.rs` guards field-for-field.

use cachegraph_obs::Json;

use crate::classify::MissClasses;
use crate::hierarchy::{HierarchyStats, LevelStats};
use crate::tlb::TlbStats;

/// Serialize `stats` as one `cache_sims` section, tagged with a run
/// `label` (e.g. `fw.tiled`) and the `machine` profile name.
pub fn stats_to_json(label: &str, machine: &str, stats: &HierarchyStats) -> Json {
    let levels = Json::Arr(stats.levels.iter().map(level_to_json).collect());
    let tlb = stats.tlb.as_ref().map_or(Json::Null, |t| {
        Json::obj().field("accesses", t.accesses).field("misses", t.misses)
    });
    let l1_classes = stats.l1_classes.as_ref().map_or(Json::Null, |c| {
        Json::obj()
            .field("compulsory", c.compulsory)
            .field("capacity", c.capacity)
            .field("conflict", c.conflict)
    });
    Json::obj()
        .field("label", label)
        .field("machine", machine)
        .field("levels", levels)
        .field("tlb", tlb)
        .field("l1_classes", l1_classes)
        .field("memory_lines_fetched", stats.memory_lines_fetched)
}

fn level_to_json(level: &LevelStats) -> Json {
    Json::obj()
        .field("level", level.level as u64 + 1)
        .field("accesses", level.accesses)
        .field("hits", level.hits)
        .field("misses", level.misses)
        .field("writebacks", level.writebacks)
        .field("prefetches", level.prefetches)
        .field("miss_rate", level.miss_rate)
}

/// Parse a `cache_sims` section back into `(label, machine, stats)`.
/// Returns `None` when any required field is missing or ill-typed.
pub fn stats_from_json(json: &Json) -> Option<(String, String, HierarchyStats)> {
    let label = json.get("label")?.as_str()?.to_string();
    let machine = json.get("machine")?.as_str()?.to_string();
    let levels = json
        .get("levels")?
        .as_arr()?
        .iter()
        .map(level_from_json)
        .collect::<Option<Vec<_>>>()?;
    let tlb = match json.get("tlb") {
        None | Some(Json::Null) => None,
        Some(t) => Some(TlbStats {
            accesses: t.get("accesses")?.as_u64()?,
            misses: t.get("misses")?.as_u64()?,
        }),
    };
    let l1_classes = match json.get("l1_classes") {
        None | Some(Json::Null) => None,
        Some(c) => Some(MissClasses {
            compulsory: c.get("compulsory")?.as_u64()?,
            capacity: c.get("capacity")?.as_u64()?,
            conflict: c.get("conflict")?.as_u64()?,
        }),
    };
    let memory_lines_fetched = json.get("memory_lines_fetched")?.as_u64()?;
    Some((label, machine, HierarchyStats { levels, tlb, memory_lines_fetched, l1_classes }))
}

fn level_from_json(json: &Json) -> Option<LevelStats> {
    let level_1based = json.get("level")?.as_u64()?;
    Some(LevelStats {
        level: usize::try_from(level_1based.checked_sub(1)?).ok()?,
        accesses: json.get("accesses")?.as_u64()?,
        hits: json.get("hits")?.as_u64()?,
        misses: json.get("misses")?.as_u64()?,
        writebacks: json.get("writebacks")?.as_u64()?,
        prefetches: json.get("prefetches")?.as_u64()?,
        miss_rate: json.get("miss_rate")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> HierarchyStats {
        HierarchyStats {
            levels: vec![
                LevelStats {
                    level: 0,
                    accesses: 10_000,
                    hits: 9_000,
                    misses: 1_000,
                    writebacks: 120,
                    prefetches: 0,
                    miss_rate: 0.1,
                },
                LevelStats {
                    level: 1,
                    accesses: 1_000,
                    hits: 900,
                    misses: 100,
                    writebacks: 10,
                    prefetches: 0,
                    miss_rate: 0.1,
                },
            ],
            tlb: Some(TlbStats { accesses: 10_000, misses: 42 }),
            memory_lines_fetched: 100,
            l1_classes: Some(MissClasses { compulsory: 600, capacity: 300, conflict: 100 }),
        }
    }

    #[test]
    fn stats_round_trip_field_for_field() {
        let stats = sample_stats();
        let json = stats_to_json("fw.tiled", "simplescalar", &stats);
        let text = json.render();
        let reparsed = cachegraph_obs::parse_json(&text).expect("valid JSON");
        let (label, machine, back) = stats_from_json(&reparsed).expect("parses back");
        assert_eq!(label, "fw.tiled");
        assert_eq!(machine, "simplescalar");
        assert_eq!(back, stats);
    }

    #[test]
    fn absent_tlb_and_classes_round_trip_as_null() {
        let stats = HierarchyStats {
            tlb: None,
            l1_classes: None,
            ..sample_stats()
        };
        let json = stats_to_json("dijkstra.list", "alpha", &stats);
        assert_eq!(json.get("tlb"), Some(&Json::Null));
        assert_eq!(json.get("l1_classes"), Some(&Json::Null));
        let (_, _, back) = stats_from_json(&json).expect("parses back");
        assert_eq!(back, stats);
    }

    #[test]
    fn levels_are_one_based_in_json() {
        let json = stats_to_json("x", "m", &sample_stats());
        let levels = json.get("levels").and_then(Json::as_arr).expect("levels");
        assert_eq!(levels[0].get("level").and_then(Json::as_u64), Some(1));
        assert_eq!(levels[1].get("level").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn malformed_sections_are_rejected() {
        assert!(stats_from_json(&Json::obj().field("label", "x")).is_none());
        let missing_misses = Json::obj()
            .field("label", "x")
            .field("machine", "m")
            .field("levels", Json::Arr(vec![Json::obj().field("level", 1_u64)]))
            .field("memory_lines_fetched", 0_u64);
        assert!(stats_from_json(&missing_misses).is_none());
    }
}
