//! JSON serialization of simulation statistics for run reports.
//!
//! Converts [`HierarchyStats`] (levels, TLB, three-Cs classification,
//! memory traffic) to and from the `cache_sims` section of a
//! `cachegraph-obs` report document, and [`CacheProfile`]s (span-scoped
//! attribution plus miss-rate timelines) to and from the `profiles`
//! section introduced with schema v3. The JSON layout is part of the
//! versioned report schema (see EXPERIMENTS.md); [`stats_from_json`]
//! and [`profile_from_json`] are the inverses of [`stats_to_json`] and
//! [`profile_to_json`], which the schema round-trip test in
//! `tests/report_roundtrip.rs` guards field-for-field.

use cachegraph_obs::Json;

use crate::classify::MissClasses;
use crate::hierarchy::{HierarchyStats, LevelStats};
use crate::profile::{CacheProfile, SpanCacheStats, TimelineSample};
use crate::tlb::TlbStats;

/// Serialize `stats` as one `cache_sims` section, tagged with a run
/// `label` (e.g. `fw.tiled`) and the `machine` profile name.
pub fn stats_to_json(label: &str, machine: &str, stats: &HierarchyStats) -> Json {
    merge_fields(
        Json::obj().field("label", label).field("machine", machine),
        stats_body(stats),
    )
}

/// The label-free body shared by `cache_sims` sections and per-span
/// profile stats: `levels` / `tlb` / `l1_classes` /
/// `memory_lines_fetched`.
fn stats_body(stats: &HierarchyStats) -> Json {
    let levels = Json::Arr(stats.levels.iter().map(level_to_json).collect());
    let tlb = stats.tlb.as_ref().map_or(Json::Null, |t| {
        Json::obj().field("accesses", t.accesses).field("misses", t.misses)
    });
    let l1_classes = stats.l1_classes.as_ref().map_or(Json::Null, |c| {
        Json::obj()
            .field("compulsory", c.compulsory)
            .field("capacity", c.capacity)
            .field("conflict", c.conflict)
    });
    Json::obj()
        .field("levels", levels)
        .field("tlb", tlb)
        .field("l1_classes", l1_classes)
        .field("memory_lines_fetched", stats.memory_lines_fetched)
}

/// Append `extra`'s fields onto `base` (both must be objects).
fn merge_fields(base: Json, extra: Json) -> Json {
    let mut out = base;
    if let (Json::Obj(fields), Json::Obj(extra_fields)) = (&mut out, extra) {
        fields.extend(extra_fields);
    }
    out
}

fn level_to_json(level: &LevelStats) -> Json {
    Json::obj()
        .field("level", level.level as u64 + 1)
        .field("accesses", level.accesses)
        .field("hits", level.hits)
        .field("misses", level.misses)
        .field("writebacks", level.writebacks)
        .field("prefetches", level.prefetches)
        .field("miss_rate", level.miss_rate)
}

/// Parse a `cache_sims` section back into `(label, machine, stats)`.
/// Returns `None` when any required field is missing or ill-typed.
pub fn stats_from_json(json: &Json) -> Option<(String, String, HierarchyStats)> {
    let label = json.get("label")?.as_str()?.to_string();
    let machine = json.get("machine")?.as_str()?.to_string();
    Some((label, machine, stats_body_from_json(json)?))
}

fn stats_body_from_json(json: &Json) -> Option<HierarchyStats> {
    let levels = json
        .get("levels")?
        .as_arr()?
        .iter()
        .map(level_from_json)
        .collect::<Option<Vec<_>>>()?;
    let tlb = match json.get("tlb") {
        None | Some(Json::Null) => None,
        Some(t) => Some(TlbStats {
            accesses: t.get("accesses")?.as_u64()?,
            misses: t.get("misses")?.as_u64()?,
        }),
    };
    let l1_classes = match json.get("l1_classes") {
        None | Some(Json::Null) => None,
        Some(c) => Some(MissClasses {
            compulsory: c.get("compulsory")?.as_u64()?,
            capacity: c.get("capacity")?.as_u64()?,
            conflict: c.get("conflict")?.as_u64()?,
        }),
    };
    let memory_lines_fetched = json.get("memory_lines_fetched")?.as_u64()?;
    Some(HierarchyStats { levels, tlb, memory_lines_fetched, l1_classes })
}

fn level_from_json(json: &Json) -> Option<LevelStats> {
    let level_1based = json.get("level")?.as_u64()?;
    Some(LevelStats {
        level: usize::try_from(level_1based.checked_sub(1)?).ok()?,
        accesses: json.get("accesses")?.as_u64()?,
        hits: json.get("hits")?.as_u64()?,
        misses: json.get("misses")?.as_u64()?,
        writebacks: json.get("writebacks")?.as_u64()?,
        prefetches: json.get("prefetches")?.as_u64()?,
        miss_rate: json.get("miss_rate")?.as_f64()?,
    })
}

/// Serialize a [`CacheProfile`] as one `profiles` section (schema v4):
/// `label` / `machine` / `interval`, the sampling mode
/// (`sample_period` / `exact`, new in v4), a `spans` array of
/// `{path, self, total}` objects (each stats body shaped like a
/// `cache_sims` section, minus the label), and a `timeline` array of
/// delta-encoded `{seq, accesses, l1_misses}` samples.
pub fn profile_to_json(profile: &CacheProfile) -> Json {
    let spans = Json::Arr(
        profile
            .spans
            .iter()
            .map(|s| {
                Json::obj()
                    .field("path", s.path.as_str())
                    .field("self", stats_body(&s.self_stats))
                    .field("total", stats_body(&s.total_stats))
            })
            .collect(),
    );
    let timeline = Json::Arr(
        profile
            .timeline
            .iter()
            .map(|t| {
                Json::obj()
                    .field("seq", t.seq)
                    .field("accesses", t.accesses)
                    .field("l1_misses", t.l1_misses)
            })
            .collect(),
    );
    Json::obj()
        .field("label", profile.label.as_str())
        .field("machine", profile.machine.as_str())
        .field("interval", profile.interval)
        .field("sample_period", profile.sample_period)
        .field("exact", profile.exact)
        .field("spans", spans)
        .field("timeline", timeline)
}

/// Parse a `profiles` section back into a [`CacheProfile`]. Returns
/// `None` when any required field is missing or ill-typed. The v4
/// sampling fields default to `sample_period = 1` / `exact = true`
/// when absent, so v3 profiles (always exact) still load.
pub fn profile_from_json(json: &Json) -> Option<CacheProfile> {
    let label = json.get("label")?.as_str()?.to_string();
    let machine = json.get("machine")?.as_str()?.to_string();
    let interval = json.get("interval")?.as_u64()?;
    let sample_period = match json.get("sample_period") {
        None => 1,
        Some(v) => v.as_u64()?,
    };
    let exact = match json.get("exact") {
        None => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return None,
    };
    let spans = json
        .get("spans")?
        .as_arr()?
        .iter()
        .map(|s| {
            Some(SpanCacheStats {
                path: s.get("path")?.as_str()?.to_string(),
                self_stats: stats_body_from_json(s.get("self")?)?,
                total_stats: stats_body_from_json(s.get("total")?)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let timeline = json
        .get("timeline")?
        .as_arr()?
        .iter()
        .map(|t| {
            Some(TimelineSample {
                seq: t.get("seq")?.as_u64()?,
                accesses: t.get("accesses")?.as_u64()?,
                l1_misses: t.get("l1_misses")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(CacheProfile { label, machine, interval, sample_period, exact, spans, timeline })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> HierarchyStats {
        HierarchyStats {
            levels: vec![
                LevelStats {
                    level: 0,
                    accesses: 10_000,
                    hits: 9_000,
                    misses: 1_000,
                    writebacks: 120,
                    prefetches: 0,
                    miss_rate: 0.1,
                },
                LevelStats {
                    level: 1,
                    accesses: 1_000,
                    hits: 900,
                    misses: 100,
                    writebacks: 10,
                    prefetches: 0,
                    miss_rate: 0.1,
                },
            ],
            tlb: Some(TlbStats { accesses: 10_000, misses: 42 }),
            memory_lines_fetched: 100,
            l1_classes: Some(MissClasses { compulsory: 600, capacity: 300, conflict: 100 }),
        }
    }

    fn sample_profile() -> CacheProfile {
        let leaf = HierarchyStats {
            levels: vec![LevelStats {
                level: 0,
                accesses: 4_000,
                hits: 3_600,
                misses: 400,
                writebacks: 50,
                prefetches: 0,
                miss_rate: 0.1,
            }],
            tlb: None,
            memory_lines_fetched: 40,
            l1_classes: None,
        };
        CacheProfile {
            label: "fw.tiled.bdl".to_string(),
            machine: "simplescalar".to_string(),
            interval: 4_096,
            sample_period: 64,
            exact: false,
            spans: vec![
                SpanCacheStats {
                    path: "fw.tiled.bdl".to_string(),
                    self_stats: sample_stats(),
                    total_stats: sample_stats(),
                },
                SpanCacheStats {
                    path: "fw.tiled.bdl/tile[0]".to_string(),
                    self_stats: leaf.clone(),
                    total_stats: leaf,
                },
            ],
            timeline: vec![
                TimelineSample { seq: 0, accesses: 4_096, l1_misses: 512 },
                TimelineSample { seq: 1, accesses: 1_904, l1_misses: 93 },
            ],
        }
    }

    #[test]
    fn stats_round_trip_field_for_field() {
        let stats = sample_stats();
        let json = stats_to_json("fw.tiled", "simplescalar", &stats);
        let text = json.render();
        let reparsed = cachegraph_obs::parse_json(&text).expect("valid JSON");
        let (label, machine, back) = stats_from_json(&reparsed).expect("parses back");
        assert_eq!(label, "fw.tiled");
        assert_eq!(machine, "simplescalar");
        assert_eq!(back, stats);
    }

    #[test]
    fn absent_tlb_and_classes_round_trip_as_null() {
        let stats = HierarchyStats {
            tlb: None,
            l1_classes: None,
            ..sample_stats()
        };
        let json = stats_to_json("dijkstra.list", "alpha", &stats);
        assert_eq!(json.get("tlb"), Some(&Json::Null));
        assert_eq!(json.get("l1_classes"), Some(&Json::Null));
        let (_, _, back) = stats_from_json(&json).expect("parses back");
        assert_eq!(back, stats);
    }

    #[test]
    fn levels_are_one_based_in_json() {
        let json = stats_to_json("x", "m", &sample_stats());
        let levels = json.get("levels").and_then(Json::as_arr).expect("levels");
        assert_eq!(levels[0].get("level").and_then(Json::as_u64), Some(1));
        assert_eq!(levels[1].get("level").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn malformed_sections_are_rejected() {
        assert!(stats_from_json(&Json::obj().field("label", "x")).is_none());
        let missing_misses = Json::obj()
            .field("label", "x")
            .field("machine", "m")
            .field("levels", Json::Arr(vec![Json::obj().field("level", 1_u64)]))
            .field("memory_lines_fetched", 0_u64);
        assert!(stats_from_json(&missing_misses).is_none());
    }

    #[test]
    fn profile_round_trips_field_for_field() {
        let profile = sample_profile();
        let json = profile_to_json(&profile);
        let text = json.render();
        let reparsed = cachegraph_obs::parse_json(&text).expect("valid JSON");
        assert_eq!(profile_from_json(&reparsed), Some(profile));
    }

    #[test]
    fn profile_span_bodies_share_the_cache_sims_layout() {
        let json = profile_to_json(&sample_profile());
        let span = json.get("spans").and_then(Json::as_arr).expect("spans")[0].clone();
        let body = span.get("self").expect("self stats");
        // Same field names as a cache_sims section, so the compare
        // engine's level walker works on both.
        let levels = body.get("levels").and_then(Json::as_arr).expect("levels");
        assert_eq!(levels[0].get("level").and_then(Json::as_u64), Some(1));
        assert!(body.get("memory_lines_fetched").is_some());
        assert!(body.get("tlb").is_some());
    }

    #[test]
    fn v3_profiles_without_sampling_fields_load_as_exact() {
        // A v3 profile (written before the sampling fields existed)
        // must parse with the exact-mode defaults: period 1, exact.
        let mut profile = sample_profile();
        profile.sample_period = 1;
        profile.exact = true;
        let v4 = profile_to_json(&profile);
        let v3 = match v4 {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "sample_period" && k != "exact")
                    .collect(),
            ),
            other => other,
        };
        assert!(v3.get("sample_period").is_none());
        assert_eq!(profile_from_json(&v3), Some(profile));
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        assert!(profile_from_json(&Json::obj().field("label", "x")).is_none());
        let bad_span = Json::obj()
            .field("label", "x")
            .field("machine", "m")
            .field("interval", 0_u64)
            .field("spans", Json::Arr(vec![Json::obj().field("path", "p")]))
            .field("timeline", Json::Arr(Vec::new()));
        assert!(profile_from_json(&bad_span).is_none());
    }
}
