//! The multi-level hierarchy: chains cache levels, propagating misses,
//! write-backs, and prefetch requests outward.

use std::collections::HashSet;

use cachegraph_obs::Registry;

use crate::cache::{AccessKind, SetAssocCache};
use crate::classify::{MissClass, MissClasses};
use crate::config::{CacheConfig, HierarchyConfig};
use crate::profile::{
    CacheEvent, CacheProfile, CacheProfiler, IntervalSampler, ProfilerOptions, ScopeHandle,
};
use crate::tlb::{Tlb, TlbStats};
use crate::tracefile::TraceRecorder;

/// Per-level snapshot of hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Level label index (0 = L1).
    pub level: usize,
    /// Demand accesses at this level.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Write-backs issued from this level.
    pub writebacks: u64,
    /// Lines prefetched into this level.
    pub prefetches: u64,
    /// Miss rate in `[0, 1]`.
    pub miss_rate: f64,
}

/// Snapshot of the whole hierarchy's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HierarchyStats {
    /// One entry per cache level, L1 first.
    pub levels: Vec<LevelStats>,
    /// TLB counters, if a TLB is configured.
    pub tlb: Option<TlbStats>,
    /// Lines fetched from memory (misses at the outermost level), a proxy
    /// for the paper's "processor-memory traffic" (§3, in units of lines).
    pub memory_lines_fetched: u64,
    /// Three-Cs classification of L1 demand misses, when the hierarchy
    /// was built with [`MemoryHierarchy::new_classifying`].
    pub l1_classes: Option<MissClasses>,
}

impl HierarchyStats {
    /// Add `other`'s counters into `self` field by field, recomputing
    /// miss rates over the sums. Levels/TLB/classes present in either
    /// operand are present in the result — the reduction used to merge
    /// per-thread stats at join.
    pub fn merge_from(&mut self, other: &HierarchyStats) {
        if self.levels.len() < other.levels.len() {
            self.levels.extend(other.levels[self.levels.len()..].iter().map(|l| LevelStats {
                level: l.level,
                ..LevelStats::default()
            }));
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.accesses += b.accesses;
            a.hits += b.hits;
            a.misses += b.misses;
            a.writebacks += b.writebacks;
            a.prefetches += b.prefetches;
            a.miss_rate =
                if a.accesses == 0 { 0.0 } else { a.misses as f64 / a.accesses as f64 };
        }
        match (&mut self.tlb, &other.tlb) {
            (Some(a), Some(b)) => {
                a.accesses += b.accesses;
                a.misses += b.misses;
            }
            (None, Some(b)) => self.tlb = Some(*b),
            _ => {}
        }
        self.memory_lines_fetched += other.memory_lines_fetched;
        match (&mut self.l1_classes, &other.l1_classes) {
            (Some(a), Some(b)) => {
                a.compulsory += b.compulsory;
                a.capacity += b.capacity;
                a.conflict += b.conflict;
            }
            (None, Some(b)) => self.l1_classes = Some(*b),
            _ => {}
        }
    }

    /// A zeroed copy with the same shape (level count, TLB/classes
    /// presence) — the identity element for [`merge_from`](Self::merge_from).
    pub fn zeroed_like(&self) -> HierarchyStats {
        HierarchyStats {
            levels: self
                .levels
                .iter()
                .map(|l| LevelStats { level: l.level, ..LevelStats::default() })
                .collect(),
            tlb: self.tlb.map(|_| TlbStats::default()),
            memory_lines_fetched: 0,
            l1_classes: self.l1_classes.map(|_| MissClasses::default()),
        }
    }
}

/// A chain of set-associative caches plus an optional TLB.
///
/// Every [`access`](MemoryHierarchy::access) is split into the lines it
/// touches; each line probes L1, and on a miss the request descends to the
/// next level. Write-backs from level *i* are writes at level *i+1*;
/// prefetch fills at level *i* are reads at level *i+1* when absent there.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    levels: Vec<SetAssocCache>,
    tlb: Option<Tlb>,
    name: String,
    memory_lines_fetched: u64,
    classifier: Option<L1Classifier>,
    recorder: Option<TraceRecorder>,
    profiler: Option<CacheProfiler>,
}

/// Shadow state for classifying L1 misses into the three Cs.
#[derive(Clone, Debug)]
struct L1Classifier {
    /// Fully-associative LRU cache of L1's capacity.
    shadow: SetAssocCache,
    seen: HashSet<u64>,
    classes: MissClasses,
}

impl MemoryHierarchy {
    /// Build an empty hierarchy for `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        config.validate();
        let levels = config.levels.iter().cloned().map(SetAssocCache::new).collect();
        let tlb = config.tlb.as_ref().map(Tlb::new);
        Self {
            levels,
            tlb,
            name: config.name,
            memory_lines_fetched: 0,
            classifier: None,
            recorder: None,
            profiler: None,
        }
    }

    /// Start capturing the demand-access stream into a compact trace
    /// (see [`crate::tracefile`]). Replaces any recording in progress.
    pub fn attach_recorder(&mut self) {
        self.recorder = Some(TraceRecorder::new());
    }

    /// Stop recording and return the captured trace, if any.
    pub fn take_trace(&mut self) -> Option<Vec<u8>> {
        self.recorder.take().map(TraceRecorder::finish)
    }

    /// Attach a span-scoped attribution profiler (see [`crate::profile`]).
    ///
    /// Every counter updated from here on is charged to the scope the
    /// returned [`ScopeHandle`] has entered (or `"(unattributed)"`).
    /// Replaces any profiler already attached. `label` names the run in
    /// the resulting [`CacheProfile`] (and should match the run's
    /// `cache_sims` report label).
    pub fn attach_profiler(&mut self, label: &str) -> ScopeHandle {
        let profiler = CacheProfiler::new(
            label,
            self.levels.len(),
            self.tlb.is_some(),
            self.classifier.is_some(),
            None,
            0,
        );
        let handle = profiler.handle();
        self.profiler = Some(profiler);
        handle
    }

    /// Like [`attach_profiler`](Self::attach_profiler), additionally
    /// sampling a miss-rate timeline: every `interval` L1 accesses one
    /// delta-encoded `TimelineRecord` is emitted through `registry`'s
    /// JSONL sink (if attached) and retained in the profile.
    pub fn attach_profiler_sampled(
        &mut self,
        label: &str,
        interval: u64,
        registry: &Registry,
    ) -> ScopeHandle {
        self.attach_profiler_with(
            label,
            ProfilerOptions { sample_period_log2: 0, timeline_interval: interval },
            registry,
        )
    }

    /// Attach a profiler with explicit [`ProfilerOptions`]: a nonzero
    /// `sample_period_log2` selects sampled (ring-buffered) attribution
    /// with counters scaled up by `2^k`, and a nonzero
    /// `timeline_interval` enables the miss-rate timeline through
    /// `registry`'s JSONL sink.
    pub fn attach_profiler_with(
        &mut self,
        label: &str,
        options: ProfilerOptions,
        registry: &Registry,
    ) -> ScopeHandle {
        let sampler = (options.timeline_interval > 0)
            .then(|| IntervalSampler::new(label, options.timeline_interval, registry.clone()));
        let profiler = CacheProfiler::new(
            label,
            self.levels.len(),
            self.tlb.is_some(),
            self.classifier.is_some(),
            sampler,
            options.sample_period_log2,
        );
        let handle = profiler.handle();
        self.profiler = Some(profiler);
        handle
    }

    /// Detach the profiler and freeze its profile, if one was attached.
    pub fn take_profile(&mut self) -> Option<CacheProfile> {
        let machine = self.name.clone();
        self.profiler.take().map(|p| p.finish(&machine))
    }

    /// Like [`new`](Self::new), additionally classifying every L1 demand
    /// miss as compulsory / capacity / conflict (see
    /// [`crate::classify`]). Costs an extra shadow-cache probe per access.
    pub fn new_classifying(config: HierarchyConfig) -> Self {
        let l1 = &config.levels[0];
        let shadow_cfg = CacheConfig::new(
            "shadow-FA",
            l1.size_bytes,
            l1.line_bytes,
            l1.size_bytes / l1.line_bytes,
        );
        let mut h = Self::new(config);
        h.classifier = Some(L1Classifier {
            shadow: SetAssocCache::new(shadow_cfg),
            seen: HashSet::new(),
            classes: MissClasses::default(),
        });
        h
    }

    /// Label of the configuration (e.g. `"SimpleScalar default"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Simulate one access of `size` bytes at `addr`. Accesses spanning a
    /// line boundary touch each line once (matching how hardware splits
    /// unaligned or multi-word accesses).
    pub fn access(&mut self, addr: u64, size: usize, kind: AccessKind) {
        debug_assert!(size > 0, "zero-sized access");
        if let Some(rec) = &mut self.recorder {
            rec.record(addr, size, kind);
        }
        if let Some(p) = &mut self.profiler {
            // The scope cannot change mid-access; one relaxed load here
            // covers every hook below.
            p.sync_scope();
        }
        if let Some(tlb) = &mut self.tlb {
            let hit = tlb.access(addr);
            if let Some(p) = &mut self.profiler {
                p.on_event(CacheEvent::Tlb { hit });
            }
            let page = tlb.page_bytes() as u64;
            let last = addr + size as u64 - 1;
            if last / page != addr / page {
                let hit = tlb.access(last);
                if let Some(p) = &mut self.profiler {
                    p.on_event(CacheEvent::Tlb { hit });
                }
            }
        }
        let line = self.levels[0].config().line_bytes as u64;
        let first_line = addr / line;
        let last_line = (addr + size as u64 - 1) / line;
        for l in first_line..=last_line {
            self.access_line(0, l * line, kind);
        }
    }

    /// Convenience wrappers.
    pub fn read(&mut self, addr: u64, size: usize) {
        self.access(addr, size, AccessKind::Read);
    }

    /// See [`access`](Self::access).
    pub fn write(&mut self, addr: u64, size: usize) {
        self.access(addr, size, AccessKind::Write);
    }

    /// Recursive descent: probe `level`; on miss (or for propagated traffic)
    /// continue outward. Past the last level is memory.
    fn access_line(&mut self, level: usize, addr: u64, kind: AccessKind) {
        if level >= self.levels.len() {
            self.memory_lines_fetched += 1;
            if let Some(p) = &mut self.profiler {
                p.on_event(CacheEvent::MemoryLine);
            }
            return;
        }
        let write_through =
            self.levels[level].config().write_policy == crate::config::WritePolicy::WriteThrough;
        let result = self.levels[level].access(addr, kind);
        if let Some(p) = &mut self.profiler {
            // One event per probe, carrying everything the probe moved —
            // `writeback_count` includes the absorbed write-back a
            // prefetch fill can trigger, which `result.writeback` alone
            // does not report.
            p.on_event(CacheEvent::Probe {
                level,
                hit: result.hit,
                victim_hit: result.victim_hit,
                writebacks: result.writeback_count(),
                prefetched: result.prefetch.is_some(),
            });
        }
        if level == 0 {
            if let Some(cl) = &mut self.classifier {
                let shadow_hit = cl.shadow.access(addr, kind).hit;
                if !result.hit {
                    let class = if cl.seen.insert(addr) {
                        MissClass::Compulsory
                    } else if !shadow_hit {
                        MissClass::Capacity
                    } else {
                        MissClass::Conflict
                    };
                    cl.classes.add(class);
                    if let Some(p) = &mut self.profiler {
                        p.on_event(CacheEvent::Class(class));
                    }
                }
            }
        }
        if let Some(wb) = result.writeback {
            self.access_line(level + 1, wb, AccessKind::Write);
        }
        if !result.hit {
            // The fill comes from the next level.
            self.access_line(level + 1, addr, AccessKind::Read);
        }
        if let Some(pf) = result.prefetch {
            self.access_line(level + 1, pf, AccessKind::Read);
        }
        if write_through && kind == AccessKind::Write {
            self.access_line(level + 1, addr, AccessKind::Write);
        }
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> HierarchyStats {
        let levels = self
            .levels
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let s = c.stats();
                LevelStats {
                    level: i,
                    accesses: s.accesses,
                    hits: s.hits,
                    misses: s.misses,
                    writebacks: s.writebacks,
                    prefetches: s.prefetches,
                    miss_rate: s.miss_rate(),
                }
            })
            .collect();
        HierarchyStats {
            levels,
            tlb: self.tlb.as_ref().map(|t| t.stats()),
            memory_lines_fetched: self.memory_lines_fetched,
            l1_classes: self.classifier.as_ref().map(|c| c.classes),
        }
    }

    /// Reset counters, keeping cache contents (useful to exclude warmup).
    pub fn reset_stats(&mut self) {
        for l in &mut self.levels {
            l.reset_stats();
        }
        self.memory_lines_fetched = 0;
        // TLB contents kept; its counters are embedded in its cache, so
        // flushing stats requires flushing contents. Accept that the TLB
        // keeps counting across resets — tests that need clean TLB numbers
        // build a fresh hierarchy.
    }

    /// Invalidate everything and zero all counters.
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
        if let Some(t) = &mut self.tlb {
            t.flush();
        }
        self.memory_lines_fetched = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig, TlbConfig};

    fn two_level() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            name: "test".into(),
            levels: vec![
                CacheConfig::new("L1", 256, 16, 2),
                CacheConfig::new("L2", 1024, 16, 4),
            ],
            tlb: None,
        })
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = two_level();
        for addr in 0..512u64 {
            h.read(addr, 1);
        }
        let s = h.stats();
        assert_eq!(s.levels[0].accesses, 512);
        assert_eq!(s.levels[0].misses, 32); // 512 B / 16 B
        assert_eq!(s.levels[1].accesses, 32);
        assert_eq!(s.levels[1].misses, 32); // cold
        assert_eq!(s.memory_lines_fetched, 32);
    }

    #[test]
    fn working_set_in_l2_but_not_l1() {
        let mut h = two_level();
        // 512 B working set: fits in L2 (1024 B), not in L1 (256 B).
        for _ in 0..4 {
            for addr in (0..512u64).step_by(16) {
                h.read(addr, 1);
            }
        }
        let s = h.stats();
        assert_eq!(s.levels[0].misses, 4 * 32); // L1 thrashes every pass
        assert_eq!(s.levels[1].misses, 32); // L2 compulsory only
        assert_eq!(s.memory_lines_fetched, 32);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = two_level();
        h.read(14, 4); // crosses the 16-byte boundary
        let s = h.stats();
        assert_eq!(s.levels[0].accesses, 2);
        assert_eq!(s.levels[0].misses, 2);
    }

    #[test]
    fn writeback_propagates_to_l2_as_write() {
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            name: "t".into(),
            levels: vec![
                CacheConfig::new("L1", 32, 16, 2), // one set, two ways
                CacheConfig::new("L2", 1024, 16, 4),
            ],
            tlb: None,
        });
        h.write(0, 4);
        h.read(16, 4);
        h.read(32, 4); // evicts dirty line 0 -> L2 write
        let s = h.stats();
        // L2 sees: 3 demand fills + 1 writeback = 4 accesses.
        assert_eq!(s.levels[1].accesses, 4);
    }

    #[test]
    fn tlb_counts_pages() {
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            name: "t".into(),
            levels: vec![CacheConfig::new("L1", 256, 16, 2)],
            tlb: Some(TlbConfig::fully_associative(8, 4096)),
        });
        for p in 0..4u64 {
            h.read(p * 4096, 4);
        }
        let s = h.stats();
        assert_eq!(s.tlb.expect("tlb configured").misses, 4);
    }

    #[test]
    fn write_through_forwards_every_store() {
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            name: "t".into(),
            levels: vec![
                CacheConfig::new("L1", 256, 16, 2)
                    .with_write_policy(crate::config::WritePolicy::WriteThrough),
                CacheConfig::new("L2", 1024, 16, 4),
            ],
            tlb: None,
        });
        h.write(0, 4);
        h.write(0, 4); // L1 hit, but write-through still reaches L2
        let s = h.stats();
        assert_eq!(s.levels[0].accesses, 2);
        // L2 sees the demand fill plus two write-through stores.
        assert_eq!(s.levels[1].accesses, 3);
    }

    #[test]
    fn prefetch_requests_propagate_to_next_level() {
        let mut h = MemoryHierarchy::new(HierarchyConfig {
            name: "t".into(),
            levels: vec![
                CacheConfig::new("L1", 256, 16, 2).with_prefetch(),
                CacheConfig::new("L2", 1024, 16, 4),
            ],
            tlb: None,
        });
        h.read(0, 4); // miss line 0, prefetch line 16
        let s = h.stats();
        assert_eq!(s.levels[0].prefetches, 1);
        // L2 serves both the demand fill and the prefetch fill.
        assert_eq!(s.levels[1].accesses, 2);
        // The prefetched line now hits without further L2 traffic.
        h.read(16, 4);
        let s = h.stats();
        assert_eq!(s.levels[0].misses, 1);
    }

    #[test]
    fn sequential_scan_with_prefetch_halves_nothing_but_hides_misses() {
        // With next-line prefetch a sequential scan's demand misses drop
        // to ~1 per two lines... actually to ~1 total after the first,
        // since each miss prefetches the next line.
        let mut with = MemoryHierarchy::new(HierarchyConfig {
            name: "p".into(),
            levels: vec![CacheConfig::new("L1", 256, 16, 2).with_prefetch()],
            tlb: None,
        });
        let mut without = MemoryHierarchy::new(HierarchyConfig {
            name: "np".into(),
            levels: vec![CacheConfig::new("L1", 256, 16, 2)],
            tlb: None,
        });
        for addr in (0..1024u64).step_by(4) {
            with.read(addr, 4);
            without.read(addr, 4);
        }
        let (w, wo) = (with.stats().levels[0].misses, without.stats().levels[0].misses);
        assert!(w < wo, "prefetching must reduce demand misses: {w} vs {wo}");
    }

    #[test]
    fn classification_totals_match_l1_misses() {
        let mut h = MemoryHierarchy::new_classifying(HierarchyConfig {
            name: "t".into(),
            levels: vec![CacheConfig::new("L1", 64, 16, 1), CacheConfig::new("L2", 1024, 16, 4)],
            tlb: None,
        });
        // Conflict pattern: lines 0 and 64 collide in the 4-set DM cache?
        // (64 B, 16 B lines, direct mapped -> 4 sets; stride 64 collides.)
        for _ in 0..6 {
            h.read(0, 4);
            h.read(64, 4);
        }
        let s = h.stats();
        let cl = s.l1_classes.expect("classifying hierarchy");
        assert_eq!(cl.total(), s.levels[0].misses);
        assert_eq!(cl.compulsory, 2);
        assert_eq!(cl.conflict, 10, "ping-pong while both fit the FA shadow");
        assert_eq!(cl.capacity, 0);
    }

    #[test]
    fn plain_hierarchy_has_no_classification() {
        let h = two_level();
        assert!(h.stats().l1_classes.is_none());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = two_level();
        h.read(0, 4);
        h.reset_stats();
        h.read(0, 4); // still resident
        let s = h.stats();
        assert_eq!(s.levels[0].accesses, 1);
        assert_eq!(s.levels[0].misses, 0);
    }
}
