//! Cache-hierarchy profiles for the machines in the paper's §4.
//!
//! Wall-clock numbers obviously cannot be reproduced without the original
//! hardware; these profiles let the *cache-behaviour* experiments be re-run
//! under each machine's hierarchy geometry, which is what drives the
//! cross-architecture variation the paper reports.

use crate::config::{CacheConfig, HierarchyConfig, TlbConfig};

/// SimpleScalar configuration used for all simulation tables (§4):
/// 16 KB 4-way L1 data cache, 256 KB 8-way L2, 32 B lines.
pub fn simplescalar() -> HierarchyConfig {
    HierarchyConfig {
        name: "SimpleScalar default".into(),
        levels: vec![
            CacheConfig::new("DL1", 16 * 1024, 32, 4),
            CacheConfig::new("UL2", 256 * 1024, 32, 8),
        ],
        tlb: None,
    }
}

/// Like [`simplescalar`] but with a next-line prefetcher on both levels,
/// modeling the "aggressive prefetching" of §3.2 that adjacency arrays
/// exploit and pointer-chasing defeats.
pub fn simplescalar_prefetch() -> HierarchyConfig {
    let mut cfg = simplescalar();
    for level in &mut cfg.levels {
        level.next_line_prefetch = true;
    }
    cfg.name = "SimpleScalar + next-line prefetch".into();
    cfg
}

/// Pentium III Xeon, 700 MHz: 32 KB 4-way L1 (32 B lines),
/// 1 MB 8-way on-chip L2 (32 B lines).
pub fn pentium_iii() -> HierarchyConfig {
    HierarchyConfig {
        name: "Pentium III Xeon".into(),
        levels: vec![
            CacheConfig::new("L1d", 32 * 1024, 32, 4),
            CacheConfig::new("L2", 1024 * 1024, 32, 8),
        ],
        tlb: Some(TlbConfig::fully_associative(64, 4096)),
    }
}

/// UltraSPARC III (SUN Blade 1000), 750 MHz: 64 KB 4-way L1 (32 B lines),
/// 8 MB direct-mapped L2 (64 B lines).
pub fn ultrasparc_iii() -> HierarchyConfig {
    HierarchyConfig {
        name: "UltraSPARC III".into(),
        levels: vec![
            CacheConfig::new("L1d", 64 * 1024, 32, 4),
            CacheConfig::new("L2", 8 * 1024 * 1024, 64, 1),
        ],
        tlb: Some(TlbConfig::fully_associative(64, 8192)),
    }
}

/// Alpha 21264, 500 MHz: 64 KB 2-way L1 (64 B lines) with an 8-entry
/// fully-associative victim cache, 4 MB direct-mapped L2 (64 B lines).
pub fn alpha_21264() -> HierarchyConfig {
    HierarchyConfig {
        name: "Alpha 21264".into(),
        levels: vec![
            CacheConfig::new("L1d", 64 * 1024, 64, 2).with_victim(8),
            CacheConfig::new("L2", 4 * 1024 * 1024, 64, 1),
        ],
        tlb: Some(TlbConfig::fully_associative(128, 8192)),
    }
}

/// MIPS R12000, 300 MHz: 32 KB 2-way L1 (32 B lines),
/// 8 MB direct-mapped L2 (64 B lines).
pub fn mips_r12000() -> HierarchyConfig {
    HierarchyConfig {
        name: "MIPS R12000".into(),
        levels: vec![
            CacheConfig::new("L1d", 32 * 1024, 32, 2),
            CacheConfig::new("L2", 8 * 1024 * 1024, 64, 1),
        ],
        tlb: Some(TlbConfig::fully_associative(64, 4096)),
    }
}

/// All four experimental machines, for cross-architecture sweeps.
pub fn all_machines() -> Vec<HierarchyConfig> {
    vec![pentium_iii(), ultrasparc_iii(), alpha_21264(), mips_r12000()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for cfg in [
            simplescalar(),
            simplescalar_prefetch(),
            pentium_iii(),
            ultrasparc_iii(),
            alpha_21264(),
            mips_r12000(),
        ] {
            cfg.validate();
        }
    }

    #[test]
    fn simplescalar_geometry_matches_paper() {
        let cfg = simplescalar();
        assert_eq!(cfg.levels[0].size_bytes, 16 * 1024);
        assert_eq!(cfg.levels[0].associativity, 4);
        assert_eq!(cfg.levels[1].size_bytes, 256 * 1024);
        assert_eq!(cfg.levels[1].associativity, 8);
    }

    #[test]
    fn alpha_has_victim_cache() {
        assert_eq!(alpha_21264().levels[0].victim_entries, 8);
    }

    #[test]
    fn sparc_and_mips_l2_direct_mapped() {
        assert_eq!(ultrasparc_iii().levels[1].associativity, 1);
        assert_eq!(mips_r12000().levels[1].associativity, 1);
    }
}
