//! Configuration types for caches, TLBs, and whole hierarchies.

/// Write policy of a cache level.
///
/// The paper's machines (and SimpleScalar's default `dl1`/`ul2`) are
/// write-back, write-allocate; that is the default here. Write-through is
/// provided so the simulator can model simpler hierarchies in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Dirty lines are written to the next level only on eviction.
    #[default]
    WriteBack,
    /// Every write is propagated to the next level immediately.
    WriteThrough,
}

/// Geometry and policy of a single cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable label, e.g. `"L1d"`.
    pub name: String,
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: usize,
    /// Line (block) size in bytes. Must be a power of two.
    pub line_bytes: usize,
    /// Number of ways. `1` means direct mapped; `size_bytes / line_bytes`
    /// means fully associative.
    pub associativity: usize,
    /// Write policy for this level.
    pub write_policy: WritePolicy,
    /// Number of entries in an optional fully-associative victim cache
    /// attached to this level (the Alpha 21264 has an 8-entry one on L1).
    /// `0` disables it.
    pub victim_entries: usize,
    /// Enable a tagged next-line prefetcher: on a demand miss for line `l`,
    /// line `l + 1` is brought in as well (if absent). Models the hardware
    /// stream prefetching the paper relies on for adjacency arrays.
    pub next_line_prefetch: bool,
}

impl CacheConfig {
    /// A write-back cache with no victim cache and no prefetcher.
    pub fn new(name: &str, size_bytes: usize, line_bytes: usize, associativity: usize) -> Self {
        let cfg = Self {
            name: name.to_string(),
            size_bytes,
            line_bytes,
            associativity,
            write_policy: WritePolicy::WriteBack,
            victim_entries: 0,
            next_line_prefetch: false,
        };
        cfg.validate();
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    /// Panics if the geometry is not realizable.
    pub fn validate(&self) {
        assert!(self.size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.associativity >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes >= self.line_bytes * self.associativity,
            "cache must hold at least one set"
        );
        assert_eq!(
            self.size_bytes % (self.line_bytes * self.associativity),
            0,
            "size must be divisible by line_bytes * associativity"
        );
        assert!(self.num_sets().is_power_of_two(), "number of sets must be a power of two");
    }

    /// Builder-style: attach a victim cache with `entries` lines.
    pub fn with_victim(mut self, entries: usize) -> Self {
        self.victim_entries = entries;
        self
    }

    /// Builder-style: enable next-line prefetch.
    pub fn with_prefetch(mut self) -> Self {
        self.next_line_prefetch = true;
        self
    }

    /// Builder-style: set the write policy.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }
}

/// Geometry of a TLB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries. Must be a power of two per way.
    pub entries: usize,
    /// Page size in bytes. Must be a power of two.
    pub page_bytes: usize,
    /// Associativity; `entries` for fully associative.
    pub associativity: usize,
}

impl TlbConfig {
    /// A fully-associative TLB, the common case for the paper's machines.
    pub fn fully_associative(entries: usize, page_bytes: usize) -> Self {
        Self { entries, page_bytes, associativity: entries }
    }
}

/// A complete memory hierarchy: ordered cache levels (L1 first) plus an
/// optional TLB.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Human-readable label, e.g. `"SimpleScalar default"`.
    pub name: String,
    /// Cache levels ordered from closest to the processor outward.
    pub levels: Vec<CacheConfig>,
    /// Optional TLB, probed once per access.
    pub tlb: Option<TlbConfig>,
}

impl HierarchyConfig {
    /// Validate every level. Panics on an unrealizable configuration.
    pub fn validate(&self) {
        assert!(!self.levels.is_empty(), "hierarchy needs at least one level");
        for level in &self.levels {
            level.validate();
        }
        for pair in self.levels.windows(2) {
            assert!(
                pair[0].line_bytes <= pair[1].line_bytes,
                "outer levels must have line size >= inner levels"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_sets_direct_mapped() {
        let c = CacheConfig::new("L1", 16 * 1024, 32, 1);
        assert_eq!(c.num_sets(), 512);
    }

    #[test]
    fn num_sets_fully_associative() {
        let c = CacheConfig::new("L1", 4096, 64, 64);
        assert_eq!(c.num_sets(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_size() {
        CacheConfig::new("L1", 3000, 32, 2);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn rejects_assoc_larger_than_capacity() {
        CacheConfig::new("L1", 64, 64, 2);
    }

    #[test]
    fn builder_flags() {
        let c = CacheConfig::new("L1", 1024, 32, 2).with_victim(8).with_prefetch();
        assert_eq!(c.victim_entries, 8);
        assert!(c.next_line_prefetch);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn rejects_shrinking_line_size() {
        let h = HierarchyConfig {
            name: "bad".into(),
            levels: vec![CacheConfig::new("L1", 1024, 64, 2), CacheConfig::new("L2", 4096, 32, 2)],
            tlb: None,
        };
        h.validate();
    }
}
